//! The metrics registry: named atomic counters, gauges, and fixed
//! log2-bucket latency histograms.
//!
//! Recording through a handle ([`Counter::inc`], [`Gauge::set`],
//! [`Histogram::record_nanos`]) is lock-free — plain relaxed atomics.
//! Only *registration* (get-or-create by name + labels) takes a mutex,
//! so hot paths register once and keep the handle (a cheap `Arc` clone),
//! typically in a `OnceLock` static or a struct field.

use crate::clock::{Clock, MonotonicClock};
use crate::span::ScopeTimer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` counts samples with a value
/// of at most 2^i nanoseconds; the last bucket is unbounded (+Inf).
/// 2^38 ns ≈ 275 s, far beyond any per-request stage.
pub const BUCKETS: usize = 40;

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Metric name (Prometheus conventions: `snake_case`, unit suffix).
    pub name: String,
    /// Label pairs, sorted by key for a stable identity and rendering.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders `{k="v",…}` (empty string when there are no labels).
    pub fn render_labels(&self) -> String {
        self.render_labels_with_extra(&[])
    }

    /// Renders labels with extra pairs appended (used for `le`).
    pub fn render_labels_with_extra(&self, extra: &[(&str, &str)]) -> String {
        if self.labels.is_empty() && extra.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&v.replace('\\', "\\\\").replace('"', "\\\""));
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go up and down).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Shared histogram state. All fields are atomics: `record` never locks.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    // Exemplars: the last trace id (128-bit, split across two cells)
    // that landed in each bucket. Best-effort — a concurrent pair of
    // writers can interleave hi/lo, which at worst yields a stale or
    // mixed id; exemplars are debugging breadcrumbs, not ground truth.
    exemplar_hi: [AtomicU64; BUCKETS],
    exemplar_lo: [AtomicU64; BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            exemplar_hi: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_lo: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket a sample of `nanos` falls into.
    pub fn bucket_index(nanos: u64) -> usize {
        if nanos <= 1 {
            0
        } else {
            let i = 64 - (nanos - 1).leading_zeros() as usize;
            i.min(BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of bucket `i` in nanoseconds, or `None`
    /// for the unbounded last bucket.
    pub fn bucket_bound_nanos(i: usize) -> Option<u64> {
        if i + 1 < BUCKETS {
            Some(1u64 << i)
        } else {
            None
        }
    }

    fn record_nanos(&self, nanos: u64, trace_id: u128) {
        let i = Self::bucket_index(nanos);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        if trace_id != 0 {
            self.exemplar_hi[i].store((trace_id >> 64) as u64, Ordering::Relaxed);
            self.exemplar_lo[i].store(trace_id as u64, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            exemplars: (0..BUCKETS)
                .map(|i| {
                    let hi = self.exemplar_hi[i].load(Ordering::Relaxed) as u128;
                    let lo = self.exemplar_lo[i].load(Ordering::Relaxed) as u128;
                    (hi << 64) | lo
                })
                .collect(),
        }
    }
}

/// A latency histogram handle; carries the registry clock so scope
/// timers can be started directly from it.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.core.count)
            .finish()
    }
}

impl Histogram {
    /// Records one sample, lock-free. When the recording thread is
    /// inside a sampled trace span ([`crate::trace`]), the sample's
    /// bucket remembers that trace id as its exemplar.
    pub fn record_nanos(&self, nanos: u64) {
        self.core
            .record_nanos(nanos, crate::trace::current_trace_id());
    }

    /// Records one sample with an explicit exemplar trace id (0 for
    /// none), for callers that carry a context across threads.
    pub fn record_nanos_with_exemplar(&self, nanos: u64, trace_id: u128) {
        self.core.record_nanos(nanos, trace_id);
    }

    /// Records a [`Duration`] sample.
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos() as u64);
    }

    /// Starts a [`ScopeTimer`] that records into this histogram on drop.
    pub fn timer(&self) -> ScopeTimer {
        ScopeTimer::enter(self)
    }

    /// Times a closure.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _timer = self.timer();
        f()
    }

    /// The clock's current reading (used by [`ScopeTimer`]).
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

#[derive(Debug)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

/// A registry of metrics, keyed by name + labels.
pub struct MetricsRegistry {
    clock: Arc<dyn Clock>,
    slots: Mutex<BTreeMap<MetricId, Slot>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MetricsRegistry({} metrics)",
            crate::sync::lock_class("MetricsRegistry.slots", &self.slots).len()
        )
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A registry timing scopes with a fresh [`MonotonicClock`].
    pub fn new() -> Self {
        MetricsRegistry::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry timing scopes with the given clock — tests pass a
    /// [`crate::clock::ManualClock`] handle for deterministic durations.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        MetricsRegistry {
            clock,
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// The clock timers started from this registry's histograms use.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Gets or creates a counter.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::new(name, labels);
        let mut slots = crate::sync::lock_class("MetricsRegistry.slots", &self.slots);
        let slot = slots
            .entry(id)
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(cell) => Counter { cell: cell.clone() },
            _ => panic!("metric '{name}' is already registered as a different kind"),
        }
    }

    /// Gets or creates a gauge.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::new(name, labels);
        let mut slots = crate::sync::lock_class("MetricsRegistry.slots", &self.slots);
        let slot = slots
            .entry(id)
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicI64::new(0))));
        match slot {
            Slot::Gauge(cell) => Gauge { cell: cell.clone() },
            _ => panic!("metric '{name}' is already registered as a different kind"),
        }
    }

    /// Gets or creates a latency histogram.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = MetricId::new(name, labels);
        let mut slots = crate::sync::lock_class("MetricsRegistry.slots", &self.slots);
        let slot = slots
            .entry(id)
            .or_insert_with(|| Slot::Histogram(Arc::new(HistogramCore::new())));
        match slot {
            Slot::Histogram(core) => Histogram {
                core: core.clone(),
                clock: self.clock.clone(),
            },
            _ => panic!("metric '{name}' is already registered as a different kind"),
        }
    }

    /// Get-or-create a histogram and immediately start a timer on it —
    /// the `ScopeTimer::enter` convenience. Takes the registration
    /// lock; prefer holding a [`Histogram`] handle on hot paths.
    pub fn timer(&self, name: &str, labels: &[(&str, &str)]) -> ScopeTimer {
        self.histogram(name, labels).timer()
    }

    /// A point-in-time copy of every metric. Values are read with
    /// relaxed loads — the snapshot is consistent per metric, not
    /// across metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = crate::sync::lock_class("MetricsRegistry.slots", &self.slots);
        let mut snap = MetricsSnapshot::default();
        for (id, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => snap.counters.push((id.clone(), c.load(Ordering::Relaxed))),
                Slot::Gauge(g) => snap.gauges.push((id.clone(), g.load(Ordering::Relaxed))),
                Slot::Histogram(h) => snap.histograms.push((id.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    /// Non-cumulative bucket counts (`BUCKETS` entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_nanos: u64,
    /// Per-bucket exemplar trace ids (0 = no exemplar). May be empty
    /// for snapshots built by hand; index-aligned with `buckets`.
    pub exemplars: Vec<u128>,
}

impl HistogramSnapshot {
    /// The quantile `q` in `[0, 1]`, reported as the upper bound of the
    /// bucket containing it (0 when empty). The unbounded last bucket
    /// reports its lower bound.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return HistogramCore::bucket_bound_nanos(i).unwrap_or(1u64 << (BUCKETS - 2));
            }
        }
        1u64 << (BUCKETS - 2)
    }

    /// Median upper bound in nanoseconds.
    pub fn p50_nanos(&self) -> u64 {
        self.quantile_nanos(0.50)
    }

    /// 99th-percentile upper bound in nanoseconds.
    pub fn p99_nanos(&self) -> u64 {
        self.quantile_nanos(0.99)
    }

    /// 99.9th-percentile upper bound in nanoseconds — the SLO tail the
    /// loadgen summary reports alongside p50/p99.
    pub fn p999_nanos(&self) -> u64 {
        self.quantile_nanos(0.999)
    }

    /// The exemplar trace id of bucket `i` (0 when none was recorded).
    pub fn exemplar(&self, i: usize) -> u128 {
        self.exemplars.get(i).copied().unwrap_or(0)
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum_nanos / self.count
        }
    }

    /// Renders the snapshot's summary statistics as a JSON object
    /// (`{"count":…,"p50_nanos":…,"p99_nanos":…,"p999_nanos":…,`
    /// `"mean_nanos":…}`), the shared latency schema of benchmark
    /// reports (`BENCH_*.json`).
    pub fn to_json_object(&self) -> String {
        format!(
            "{{\"count\":{},\"p50_nanos\":{},\"p99_nanos\":{},\"p999_nanos\":{},\"mean_nanos\":{}}}",
            self.count,
            self.p50_nanos(),
            self.p99_nanos(),
            self.p999_nanos(),
            self.mean_nanos()
        )
    }
}

/// A point-in-time copy of a whole registry (or several merged).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauge values.
    pub gauges: Vec<(MetricId, i64)>,
    /// Histogram states.
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Appends another snapshot (for rendering several registries as
    /// one exposition).
    pub fn merge(mut self, other: MetricsSnapshot) -> MetricsSnapshot {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self
    }

    /// The value of one counter, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = MetricId::new(name, labels);
        self.counters
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, v)| *v)
    }

    /// One histogram, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let id = MetricId::new(name, labels);
        self.histograms
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, h)| h)
    }

    /// Sums counters named `name` grouped by the value of label `key`
    /// (e.g. hits by `repr` across several caches).
    pub fn sum_counters_by_label(&self, name: &str, key: &str) -> Vec<(String, u64)> {
        let mut by: BTreeMap<String, u64> = BTreeMap::new();
        for (id, v) in &self.counters {
            if id.name == name {
                if let Some(label) = id.label(key) {
                    *by.entry(label.to_string()).or_insert(0) += v;
                }
            }
        }
        by.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = MetricsRegistry::new();
        let c = r.counter("requests_total", &[("op", "get")]);
        c.inc();
        c.add(2);
        assert_eq!(c.value(), 3);
        // Same id → same cell.
        assert_eq!(r.counter("requests_total", &[("op", "get")]).value(), 3);
        // Label order does not matter.
        let c2 = r.counter("x", &[("a", "1"), ("b", "2")]);
        c2.inc();
        assert_eq!(r.counter("x", &[("b", "2"), ("a", "1")]).value(), 1);

        let g = r.gauge("entries", &[]);
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(HistogramCore::bucket_index(0), 0);
        assert_eq!(HistogramCore::bucket_index(1), 0);
        assert_eq!(HistogramCore::bucket_index(2), 1);
        assert_eq!(HistogramCore::bucket_index(3), 2);
        assert_eq!(HistogramCore::bucket_index(1024), 10);
        assert_eq!(HistogramCore::bucket_index(1025), 11);
        assert_eq!(HistogramCore::bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(HistogramCore::bucket_bound_nanos(10), Some(1024));
        assert_eq!(HistogramCore::bucket_bound_nanos(BUCKETS - 1), None);
    }

    #[test]
    fn histogram_quantiles_from_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("stage_seconds", &[("stage", "parse")]);
        for _ in 0..99 {
            h.record_nanos(1000); // bucket bound 1024
        }
        h.record_nanos(1_000_000); // one slow outlier
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50_nanos(), 1024);
        assert_eq!(snap.p99_nanos(), 1024);
        assert_eq!(snap.p999_nanos(), 1 << 20);
        assert_eq!(snap.quantile_nanos(1.0), 1 << 20);
        assert!(snap.mean_nanos() > 1000 && snap.mean_nanos() < 1_000_000);
    }

    #[test]
    fn exemplars_remember_the_last_trace_id_per_bucket() {
        let r = MetricsRegistry::new();
        let h = r.histogram("stage_seconds", &[]);
        h.record_nanos_with_exemplar(1000, 0xabcd);
        h.record_nanos_with_exemplar(1000, 0xef01);
        h.record_nanos_with_exemplar(1_000_000, 7);
        h.record_nanos(500_000); // no trace context: keeps prior exemplar
        let snap = h.snapshot();
        let fast = HistogramCore::bucket_index(1000);
        let slow = HistogramCore::bucket_index(1_000_000);
        assert_eq!(snap.exemplar(fast), 0xef01, "last writer wins");
        assert_eq!(snap.exemplar(slow), 7);
        assert_eq!(snap.exemplar(0), 0, "untouched bucket has none");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = HistogramSnapshot::default();
        assert_eq!(snap.p50_nanos(), 0);
        assert_eq!(snap.mean_nanos(), 0);
        assert_eq!(
            snap.to_json_object(),
            "{\"count\":0,\"p50_nanos\":0,\"p99_nanos\":0,\"p999_nanos\":0,\"mean_nanos\":0}"
        );
    }

    #[test]
    fn timers_use_the_registry_clock() {
        let clock = ManualClock::new();
        let handle = clock.handle();
        let r = MetricsRegistry::with_clock(std::sync::Arc::new(clock));
        let h = r.histogram("op_seconds", &[]);
        {
            let _timer = h.timer();
            handle.advance_nanos(5000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum_nanos, 5000);
    }

    #[test]
    fn snapshot_covers_all_kinds_and_merges() {
        let r = MetricsRegistry::new();
        r.counter("c", &[]).inc();
        r.gauge("g", &[]).set(5);
        r.histogram("h", &[]).record_nanos(10);
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("c", &[]), Some(1));
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histogram("h", &[]).unwrap().count, 1);

        let r2 = MetricsRegistry::new();
        r2.counter("c2", &[]).add(7);
        let merged = snap.merge(r2.snapshot());
        assert_eq!(merged.counter_value("c2", &[]), Some(7));
        assert_eq!(merged.counters.len(), 2);
    }

    #[test]
    fn grouping_by_label_sums_across_ids() {
        let r = MetricsRegistry::new();
        r.counter("hits", &[("cache", "a"), ("repr", "xml-text")])
            .add(2);
        r.counter("hits", &[("cache", "b"), ("repr", "xml-text")])
            .add(3);
        r.counter("hits", &[("cache", "a"), ("repr", "sax-events")])
            .add(1);
        let by_repr = r.snapshot().sum_counters_by_label("hits", "repr");
        assert_eq!(
            by_repr,
            vec![("sax-events".to_string(), 1), ("xml-text".to_string(), 5)]
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("dual", &[]);
        r.histogram("dual", &[]);
    }

    #[test]
    fn recording_is_concurrent_safe() {
        let r = std::sync::Arc::new(MetricsRegistry::new());
        let c = r.counter("n", &[]);
        let h = r.histogram("t", &[]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record_nanos(i);
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
        assert_eq!(h.snapshot().count, 8000);
    }
}

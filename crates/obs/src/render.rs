//! Exposition formats: Prometheus-style text and hand-rolled JSON.
//!
//! No `serde`, no `prometheus` crate — the build environment is
//! offline, so both renderers are written against [`MetricsSnapshot`]
//! directly.

use crate::metrics::{HistogramCore, HistogramSnapshot, MetricId, MetricsSnapshot};
use crate::trace::format_trace_id;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_seconds(nanos: u64) -> String {
    // Prometheus convention: durations in seconds. Render with enough
    // precision that nanosecond samples survive.
    format!("{:.9}", nanos as f64 / 1e9)
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters become `name{labels} value`, gauges likewise, histograms
/// become the conventional `_bucket{le="…"}` (cumulative, in seconds),
/// `_sum` and `_count` series. Buckets that remember an exemplar trace
/// id append it OpenMetrics-style: `… 5 # {trace_id="<32 hex>"}`.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut emit_type = String::new();
    let push_type = |out: &mut String, seen: &mut String, name: &str, kind: &str| {
        let tag = format!("\u{0}{name}\u{0}");
        if !seen.contains(&tag) {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            seen.push_str(&tag);
        }
    };

    for (id, value) in &snap.counters {
        push_type(&mut out, &mut emit_type, &id.name, "counter");
        out.push_str(&id.name);
        out.push_str(&id.render_labels());
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (id, value) in &snap.gauges {
        push_type(&mut out, &mut emit_type, &id.name, "gauge");
        out.push_str(&id.name);
        out.push_str(&id.render_labels());
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (id, h) in &snap.histograms {
        push_type(&mut out, &mut emit_type, &id.name, "histogram");
        let mut cumulative = 0u64;
        for (i, count) in h.buckets.iter().enumerate() {
            cumulative += count;
            // Skip interior empty buckets to keep the output readable,
            // but always emit +Inf.
            let bound = HistogramCore::bucket_bound_nanos(i);
            if *count == 0 && bound.is_some() {
                continue;
            }
            let le = match bound {
                Some(nanos) => fmt_seconds(nanos),
                None => "+Inf".to_string(),
            };
            out.push_str(&id.name);
            out.push_str("_bucket");
            out.push_str(&id.render_labels_with_extra(&[("le", &le)]));
            out.push(' ');
            out.push_str(&cumulative.to_string());
            let exemplar = h.exemplar(i);
            if exemplar != 0 {
                out.push_str(" # {trace_id=\"");
                out.push_str(&format_trace_id(exemplar));
                out.push_str("\"}");
            }
            out.push('\n');
        }
        out.push_str(&id.name);
        out.push_str("_sum");
        out.push_str(&id.render_labels());
        out.push(' ');
        out.push_str(&fmt_seconds(h.sum_nanos));
        out.push('\n');
        out.push_str(&id.name);
        out.push_str("_count");
        out.push_str(&id.render_labels());
        out.push(' ');
        out.push_str(&h.count.to_string());
        out.push('\n');
    }
    out
}

fn json_id(id: &MetricId) -> String {
    let labels: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!(
        "\"name\":\"{}\",\"labels\":{{{}}}",
        json_escape(&id.name),
        labels.join(",")
    )
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let exemplars: Vec<String> = h
        .exemplars
        .iter()
        .enumerate()
        .filter(|(_, id)| **id != 0)
        .map(|(i, id)| {
            format!(
                "{{\"bucket\":{i},\"trace_id\":\"{}\"}}",
                format_trace_id(*id)
            )
        })
        .collect();
    format!(
        "\"count\":{},\"sum_nanos\":{},\"mean_nanos\":{},\"p50_nanos\":{},\"p99_nanos\":{},\"p999_nanos\":{},\"exemplars\":[{}]",
        h.count,
        h.sum_nanos,
        h.mean_nanos(),
        h.p50_nanos(),
        h.p99_nanos(),
        h.p999_nanos(),
        exemplars.join(",")
    )
}

/// Renders a snapshot as JSON:
/// `{"counters":[{"name":…,"labels":{…},"value":…}],`
/// `"gauges":[…],"histograms":[{…,"count":…,"sum_nanos":…,`
/// `"mean_nanos":…,"p50_nanos":…,"p99_nanos":…,"p999_nanos":…,`
/// `"exemplars":[{"bucket":…,"trace_id":"…"}]}]}`.
pub fn to_json(snap: &MetricsSnapshot) -> String {
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|(id, v)| format!("{{{},\"value\":{v}}}", json_id(id)))
        .collect();
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .map(|(id, v)| format!("{{{},\"value\":{v}}}", json_id(id)))
        .collect();
    let histograms: Vec<String> = snap
        .histograms
        .iter()
        .map(|(id, h)| format!("{{{},{}}}", json_id(id), json_histogram(h)))
        .collect();
    format!(
        "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter("wsrc_cache_hits_total", &[("repr", "xml-text")])
            .add(5);
        r.gauge("wsrc_cache_entries", &[]).set(3);
        let h = r.histogram("wsrc_stage_seconds", &[("stage", "parse")]);
        h.record_nanos(1000);
        h.record_nanos(2000);
        r.snapshot()
    }

    #[test]
    fn prometheus_counters_and_gauges() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE wsrc_cache_hits_total counter"));
        assert!(text.contains("wsrc_cache_hits_total{repr=\"xml-text\"} 5"));
        assert!(text.contains("# TYPE wsrc_cache_entries gauge"));
        assert!(text.contains("wsrc_cache_entries 3\n"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_in_seconds() {
        let text = to_prometheus(&sample_snapshot());
        // 1000ns → bucket bound 1024ns = 0.000001024s; 2000ns → 2048ns.
        assert!(
            text.contains("wsrc_stage_seconds_bucket{stage=\"parse\",le=\"0.000001024\"} 1"),
            "missing first bucket in:\n{text}"
        );
        assert!(text.contains("wsrc_stage_seconds_bucket{stage=\"parse\",le=\"0.000002048\"} 2"));
        assert!(text.contains("wsrc_stage_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 2"));
        assert!(text.contains("wsrc_stage_seconds_sum{stage=\"parse\"} 0.000003000"));
        assert!(text.contains("wsrc_stage_seconds_count{stage=\"parse\"} 2"));
    }

    #[test]
    fn prometheus_type_line_once_per_name() {
        let r = MetricsRegistry::new();
        r.counter("hits", &[("repr", "a")]).inc();
        r.counter("hits", &[("repr", "b")]).inc();
        let text = to_prometheus(&r.snapshot());
        assert_eq!(text.matches("# TYPE hits counter").count(), 1);
    }

    #[test]
    fn json_round_trips_structure() {
        let json = to_json(&sample_snapshot());
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains(
            "{\"name\":\"wsrc_cache_hits_total\",\"labels\":{\"repr\":\"xml-text\"},\"value\":5}"
        ));
        assert!(json.contains("\"p50_nanos\":1024"));
        assert!(json.contains("\"p99_nanos\":2048"));
        assert!(json.contains("\"count\":2,\"sum_nanos\":3000"));
        // Minimal well-formedness: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_snapshot_renders_empty_documents() {
        let snap = MetricsSnapshot::default();
        assert_eq!(to_prometheus(&snap), "");
        assert_eq!(
            to_json(&snap),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[]}"
        );
    }

    #[test]
    fn exemplars_render_in_both_expositions() {
        let r = MetricsRegistry::new();
        let h = r.histogram("wsrc_stage_seconds", &[("stage", "build")]);
        h.record_nanos_with_exemplar(1000, 0xdead_beef);
        let snap = r.snapshot();
        let text = to_prometheus(&snap);
        assert!(
            text.contains(
                "wsrc_stage_seconds_bucket{stage=\"build\",le=\"0.000001024\"} 1 \
                 # {trace_id=\"000000000000000000000000deadbeef\"}"
            ),
            "missing Prometheus exemplar in:\n{text}"
        );
        let json = to_json(&snap);
        assert!(json.contains("\"p999_nanos\":1024"));
        assert!(json.contains(
            "\"exemplars\":[{\"bucket\":10,\"trace_id\":\"000000000000000000000000deadbeef\"}]"
        ));
    }

    #[test]
    fn histograms_without_exemplars_render_plain_buckets() {
        let text = to_prometheus(&sample_snapshot());
        assert!(
            !text.contains(" # {trace_id="),
            "no stray exemplars:\n{text}"
        );
        let json = to_json(&sample_snapshot());
        assert!(json.contains("\"exemplars\":[]"));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let r = MetricsRegistry::new();
        r.counter("c", &[("path", "a\"b")]).inc();
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("c{path=\"a\\\"b\"} 1"));
    }
}

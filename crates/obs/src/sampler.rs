//! Tail-based trace retention: the store decides which traces to keep
//! *after* they finish, when their duration and outcome are known.
//!
//! Head sampling (flip a coin at the root) would throw away exactly the
//! traces the paper's analysis needs — the slow tail. This store keeps:
//!
//! - every **error** trace,
//! - the **slowest N per route** (so the first request on a route is
//!   always retained, which keeps single-request smokes deterministic),
//! - and a probabilistic **one-in-k** of the rest, id-hashed so the
//!   decision is stable for a given trace id.
//!
//! Retained traces land in a fixed-capacity ring of recent traces plus
//! a per-route slowest table; everything else is counted and dropped.
//! All accessors take the single inner mutex exactly once (rule R5).

use crate::render::json_escape;
use crate::sync;
use crate::trace::{format_span_id, format_trace_id, SpanRecord};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Retention knobs for a [`TraceStore`].
#[derive(Debug, Clone)]
pub struct TraceStoreConfig {
    /// Capacity of the recent-traces ring.
    pub recent_capacity: usize,
    /// Slowest traces kept per route.
    pub slowest_per_route: usize,
    /// Keep one in this many non-error, non-slowest traces (1 keeps
    /// all, 0 keeps none).
    pub sample_one_in: u64,
    /// Maximum traces with spans awaiting finalization; batches for new
    /// traces beyond this are dropped (and counted).
    pub max_pending: usize,
    /// Maximum spans buffered per pending trace.
    pub max_spans_per_trace: usize,
}

impl Default for TraceStoreConfig {
    fn default() -> Self {
        TraceStoreConfig {
            recent_capacity: 64,
            slowest_per_route: 8,
            sample_one_in: 16,
            max_pending: 256,
            max_spans_per_trace: 128,
        }
    }
}

/// One retained trace with its finished spans.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The trace id (hex form is the exemplar/wire spelling).
    pub trace_id: u128,
    /// The route of the root (or local root) that finalized the trace.
    pub route: String,
    /// Root wall time in nanoseconds.
    pub duration_nanos: u64,
    /// Whether any span errored.
    pub error: bool,
    /// All spans, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl StoredTrace {
    /// Renders the trace as a JSON object whose `spans` array nests
    /// children under their parents.
    pub fn to_json(&self) -> String {
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        let ids: HashSet<u64> = self.spans.iter().map(|s| s.span_id).collect();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for span in &self.spans {
            match span.parent_span_id {
                // A parent outside this trace's span set (e.g. in
                // another process) makes the span a local root.
                Some(parent) if ids.contains(&parent) => {
                    children.entry(parent).or_default().push(span);
                }
                _ => roots.push(span),
            }
        }
        for list in children.values_mut() {
            list.sort_by_key(|s| s.start_nanos);
        }
        roots.sort_by_key(|s| s.start_nanos);
        let rendered: Vec<String> = roots.iter().map(|s| render_span(s, &children, 0)).collect();
        format!(
            "{{\"trace_id\":\"{}\",\"route\":\"{}\",\"duration_nanos\":{},\"error\":{},\"spans\":[{}]}}",
            format_trace_id(self.trace_id),
            json_escape(&self.route),
            self.duration_nanos,
            self.error,
            rendered.join(",")
        )
    }
}

fn render_span(
    span: &SpanRecord,
    children: &BTreeMap<u64, Vec<&SpanRecord>>,
    depth: usize,
) -> String {
    let kids = if depth >= 32 {
        // Depth guard against pathological parent links.
        String::new()
    } else {
        children
            .get(&span.span_id)
            .map(|list| {
                list.iter()
                    .map(|c| render_span(c, children, depth + 1))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_default()
    };
    let opt = |v: &Option<String>| match v {
        Some(s) => format!("\"{}\"", json_escape(s)),
        None => "null".to_string(),
    };
    format!(
        "{{\"span_id\":\"{}\",\"parent_span_id\":{},\"name\":\"{}\",\"stage\":\"{}\",\
         \"start_nanos\":{},\"end_nanos\":{},\"duration_nanos\":{},\"repr\":{},\
         \"annotation\":{},\"error\":{},\"children\":[{}]}}",
        format_span_id(span.span_id),
        span.parent_span_id
            .map(|p| format!("\"{}\"", format_span_id(p)))
            .unwrap_or_else(|| "null".to_string()),
        json_escape(span.name),
        json_escape(span.stage),
        span.start_nanos,
        span.end_nanos,
        span.duration_nanos(),
        opt(&span.repr),
        opt(&span.annotation),
        span.error,
        kids
    )
}

/// Sums per-stage *self time* (span duration minus direct children)
/// across traces — the critical-path breakdown loadgen reports print.
pub fn stage_breakdown(traces: &[StoredTrace]) -> Vec<(String, u64)> {
    let mut by_stage: BTreeMap<String, u64> = BTreeMap::new();
    for trace in traces {
        let mut child_sum: HashMap<u64, u64> = HashMap::new();
        let ids: HashSet<u64> = trace.spans.iter().map(|s| s.span_id).collect();
        for span in &trace.spans {
            if let Some(parent) = span.parent_span_id {
                if ids.contains(&parent) {
                    *child_sum.entry(parent).or_insert(0) += span.duration_nanos();
                }
            }
        }
        for span in &trace.spans {
            let nested = child_sum.get(&span.span_id).copied().unwrap_or(0);
            let self_nanos = span.duration_nanos().saturating_sub(nested);
            *by_stage.entry(span.stage.to_string()).or_insert(0) += self_nanos;
        }
    }
    by_stage.into_iter().collect()
}

#[derive(Default)]
struct StoreInner {
    /// Spans of traces still in flight, keyed by trace id.
    pending: HashMap<u128, Vec<SpanRecord>>,
    /// Trace ids whose global root lives in this process.
    open_roots: HashSet<u128>,
    /// Ring of retained traces, oldest first.
    recent: VecDeque<StoredTrace>,
    /// Slowest retained traces per route, sorted slowest-first.
    slowest: BTreeMap<String, Vec<StoredTrace>>,
}

/// The tail-sampling trace store. See the module docs for the
/// retention policy.
pub struct TraceStore {
    config: TraceStoreConfig,
    inner: Mutex<StoreInner>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceStore")
    }
}

impl TraceStore {
    /// A store with the given retention configuration.
    pub fn new(config: TraceStoreConfig) -> TraceStore {
        TraceStore {
            config,
            inner: Mutex::new(StoreInner::default()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Registers `trace_id` as owned by an in-process global root, so
    /// provisional (wire-continued) finalizations leave it pending.
    pub fn open_root(&self, trace_id: u128) {
        sync::lock_class("TraceStore.inner", &self.inner)
            .open_roots
            .insert(trace_id);
    }

    /// Accepts a batch of finished spans from a thread buffer.
    pub fn record_batch(&self, batch: Vec<SpanRecord>) {
        let mut dropped = 0u64;
        {
            let mut inner = sync::lock_class("TraceStore.inner", &self.inner);
            for span in batch {
                let known = inner.pending.contains_key(&span.trace_id);
                if !known && inner.pending.len() >= self.config.max_pending {
                    dropped += 1;
                    continue;
                }
                let spans = inner.pending.entry(span.trace_id).or_default();
                if spans.len() >= self.config.max_spans_per_trace {
                    dropped += 1;
                    continue;
                }
                spans.push(span);
            }
        }
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::SeqCst);
        }
    }

    /// Completes a trace and applies the tail-retention policy.
    /// `provisional` finalizations (from wire-continued local roots)
    /// are skipped while an in-process global root owns the trace.
    pub fn finalize(
        &self,
        trace_id: u128,
        route: &str,
        duration_nanos: u64,
        error: bool,
        provisional: bool,
    ) {
        let retained = {
            let mut inner = sync::lock_class("TraceStore.inner", &self.inner);
            if provisional && inner.open_roots.contains(&trace_id) {
                return;
            }
            inner.open_roots.remove(&trace_id);
            let spans = inner.pending.remove(&trace_id).unwrap_or_default();
            if spans.is_empty() {
                return;
            }
            let trace = StoredTrace {
                trace_id,
                route: route.to_string(),
                duration_nanos,
                error,
                spans,
            };

            // Slowest-N per route: always keep while the table is
            // filling, then only when beating the current floor.
            let slot = inner.slowest.entry(route.to_string()).or_default();
            let qualifies_slowest = self.config.slowest_per_route > 0
                && (slot.len() < self.config.slowest_per_route
                    || slot
                        .last()
                        .is_some_and(|floor| duration_nanos > floor.duration_nanos));
            if qualifies_slowest {
                slot.push(trace.clone());
                slot.sort_by(|a, b| b.duration_nanos.cmp(&a.duration_nanos));
                slot.truncate(self.config.slowest_per_route);
            }

            let sampled_in = self.config.sample_one_in > 0
                && trace_id % u128::from(self.config.sample_one_in) == 0;
            let retained = error || qualifies_slowest || sampled_in;
            if retained {
                inner.recent.push_back(trace);
                let cap = self.config.recent_capacity.max(1);
                while inner.recent.len() > cap {
                    inner.recent.pop_front();
                }
            }
            retained
        };
        if !retained {
            self.dropped.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Retained traces, newest first.
    pub fn recent(&self) -> Vec<StoredTrace> {
        sync::lock_class("TraceStore.inner", &self.inner)
            .recent
            .iter()
            .rev()
            .cloned()
            .collect()
    }

    /// The slowest retained traces across all routes, slowest first.
    pub fn slowest(&self) -> Vec<StoredTrace> {
        let mut all: Vec<StoredTrace> = sync::lock_class("TraceStore.inner", &self.inner)
            .slowest
            .values()
            .flatten()
            .cloned()
            .collect();
        all.sort_by(|a, b| b.duration_nanos.cmp(&a.duration_nanos));
        all
    }

    /// Traces discarded by retention or capacity limits.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Traces with spans still awaiting finalization.
    pub fn pending_traces(&self) -> usize {
        sync::lock_class("TraceStore.inner", &self.inner)
            .pending
            .len()
    }

    /// Renders the store for `GET /trace`:
    /// `{"recent":[…],"slowest":[…],"dropped":N}` where each trace is a
    /// [`StoredTrace::to_json`] span tree.
    pub fn to_json(&self) -> String {
        let recent: Vec<String> = self.recent().iter().map(StoredTrace::to_json).collect();
        let slowest: Vec<String> = self.slowest().iter().map(StoredTrace::to_json).collect();
        format!(
            "{{\"recent\":[{}],\"slowest\":[{}],\"dropped\":{}}}",
            recent.join(","),
            slowest.join(","),
            self.dropped()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u128, span_id: u64, parent: Option<u64>, stage: &'static str) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent_span_id: parent,
            name: stage,
            stage,
            start_nanos: 0,
            end_nanos: 100,
            repr: None,
            annotation: None,
            error: false,
        }
    }

    fn store() -> TraceStore {
        TraceStore::new(TraceStoreConfig {
            recent_capacity: 4,
            slowest_per_route: 2,
            sample_one_in: 0, // only errors and slowest qualify
            max_pending: 8,
            max_spans_per_trace: 8,
        })
    }

    #[test]
    fn slowest_per_route_keeps_the_tail() {
        let s = store();
        for (id, duration) in [(2u128, 100), (3, 900), (4, 500), (5, 50)] {
            s.record_batch(vec![span(id, 1, None, "root")]);
            s.finalize(id, "/r", duration, false, false);
        }
        let slow = s.slowest();
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].duration_nanos, 900);
        assert_eq!(slow[1].duration_nanos, 500);
        // 100 and 50 were evicted/rejected; only the initial fill kept
        // 100 temporarily, then 500 displaced it.
        assert!(s.dropped() >= 1);
    }

    #[test]
    fn error_traces_are_always_retained() {
        let s = store();
        // Fill the slowest table so errors cannot qualify as slowest.
        for (id, duration) in [(2u128, 900), (3, 800)] {
            s.record_batch(vec![span(id, 1, None, "root")]);
            s.finalize(id, "/r", duration, false, false);
        }
        s.record_batch(vec![span(9, 1, None, "root")]);
        s.finalize(9, "/r", 1, true, false);
        let recent = s.recent();
        assert!(recent.iter().any(|t| t.trace_id == 9 && t.error));
    }

    #[test]
    fn probabilistic_sampling_is_id_stable() {
        let s = TraceStore::new(TraceStoreConfig {
            sample_one_in: 4,
            slowest_per_route: 0,
            ..TraceStoreConfig::default()
        });
        for id in 1u128..=16 {
            s.record_batch(vec![span(id, 1, None, "root")]);
            s.finalize(id, "/r", 10, false, false);
        }
        let kept: Vec<u128> = s.recent().iter().map(|t| t.trace_id).collect();
        assert_eq!(kept, vec![16, 12, 8, 4], "ids divisible by 4, newest first");
    }

    #[test]
    fn recent_ring_is_bounded() {
        let s = TraceStore::new(TraceStoreConfig {
            recent_capacity: 3,
            slowest_per_route: 0,
            sample_one_in: 1,
            ..TraceStoreConfig::default()
        });
        for id in 1u128..=10 {
            s.record_batch(vec![span(id, 1, None, "root")]);
            s.finalize(id, "/r", 10, false, false);
        }
        let recent = s.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].trace_id, 10, "newest first");
    }

    #[test]
    fn provisional_finalize_defers_to_the_open_root() {
        let s = store();
        s.open_root(7);
        s.record_batch(vec![
            span(7, 1, None, "root"),
            span(7, 2, Some(1), "server"),
        ]);
        s.finalize(7, "/server-route", 50, false, true);
        assert_eq!(s.recent().len(), 0, "still pending");
        assert_eq!(s.pending_traces(), 1);
        s.finalize(7, "/client-route", 120, false, false);
        let recent = s.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].route, "/client-route");
        assert_eq!(recent[0].spans.len(), 2);
    }

    #[test]
    fn provisional_finalize_stands_alone_without_a_root() {
        let s = store();
        s.record_batch(vec![span(7, 2, Some(1), "server")]);
        s.finalize(7, "/server-route", 50, false, true);
        let recent = s.recent();
        assert_eq!(recent.len(), 1, "standalone server fragment retained");
        assert_eq!(recent[0].route, "/server-route");
    }

    #[test]
    fn pending_capacity_is_enforced() {
        let s = store(); // max_pending 8, max_spans_per_trace 8
        for id in 1u128..=10 {
            s.record_batch(vec![span(id, 1, None, "root")]);
        }
        assert_eq!(s.pending_traces(), 8);
        assert_eq!(s.dropped(), 2);
        let many: Vec<SpanRecord> = (1..=20).map(|i| span(1, i, None, "x")).collect();
        s.record_batch(many);
        assert!(s.dropped() > 2, "per-trace span cap counted");
    }

    #[test]
    fn json_nests_children_and_orphans_become_roots() {
        let s = store();
        s.record_batch(vec![
            span(0xab, 1, None, "root"),
            span(0xab, 2, Some(1), "transfer"),
            span(0xab, 3, Some(2), "server"),
            span(0xab, 4, Some(99), "orphan"), // parent in another process
        ]);
        s.finalize(0xab, "/r", 100, false, false);
        let json = s.to_json();
        assert!(json.starts_with("{\"recent\":["));
        assert!(json.contains("\"trace_id\":\"000000000000000000000000000000ab\""));
        assert!(json.contains("\"stage\":\"transfer\""));
        // transfer nests under root, server under transfer.
        let root_pos = json.find("\"stage\":\"root\"").expect("root");
        let transfer_pos = json.find("\"stage\":\"transfer\"").expect("transfer");
        let server_pos = json.find("\"stage\":\"server\"").expect("server");
        assert!(root_pos < transfer_pos && transfer_pos < server_pos);
        // The orphan renders as a top-level span, not lost.
        assert!(json.contains("\"stage\":\"orphan\""));
        assert!(json.contains("\"parent_span_id\":\"0000000000000063\""));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn stage_breakdown_attributes_self_time() {
        let mut root = span(1, 1, None, "root");
        root.end_nanos = 1000;
        let mut transfer = span(1, 2, Some(1), "transfer");
        transfer.end_nanos = 900;
        let mut server = span(1, 3, Some(2), "server");
        server.end_nanos = 400;
        let trace = StoredTrace {
            trace_id: 1,
            route: "/r".to_string(),
            duration_nanos: 1000,
            error: false,
            spans: vec![root, transfer, server],
        };
        let breakdown = stage_breakdown(&[trace]);
        let get = |stage: &str| {
            breakdown
                .iter()
                .find(|(s, _)| s == stage)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        };
        assert_eq!(get("root"), 100, "1000 - 900 nested");
        assert_eq!(get("transfer"), 500, "900 - 400 nested");
        assert_eq!(get("server"), 400);
    }
}

//! Scope timers: a [`ScopeTimer`] reads the clock when entered and
//! records the elapsed nanoseconds into its histogram when dropped.
//!
//! Not to be confused with trace spans ([`crate::trace`]): a scope
//! timer feeds an aggregate latency distribution, a trace span records
//! one causally-linked interval of a specific request.

use crate::metrics::Histogram;

/// A running timer tied to a [`Histogram`]. Dropping it records the
/// elapsed time; [`ScopeTimer::finish`] does the same but returns the
/// duration.
#[must_use = "a scope timer records on drop; binding it to `_` drops it immediately"]
pub struct ScopeTimer {
    histogram: Histogram,
    start_nanos: u64,
    recorded: bool,
}

impl ScopeTimer {
    /// Starts timing against `histogram`, using the clock of the
    /// registry the histogram came from.
    pub fn enter(histogram: &Histogram) -> ScopeTimer {
        ScopeTimer {
            histogram: histogram.clone(),
            start_nanos: histogram.now_nanos(),
            recorded: false,
        }
    }

    /// Nanoseconds elapsed so far, without recording.
    pub fn elapsed_nanos(&self) -> u64 {
        self.histogram.now_nanos().saturating_sub(self.start_nanos)
    }

    /// Stops the timer, records the sample, and returns the elapsed
    /// nanoseconds.
    pub fn finish(mut self) -> u64 {
        let elapsed = self.elapsed_nanos();
        self.histogram.record_nanos(elapsed);
        self.recorded = true;
        elapsed
    }

    /// Abandons the timer without recording a sample (e.g. an error
    /// path that should not pollute the latency distribution).
    pub fn cancel(mut self) {
        self.recorded = true;
    }
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        if !self.recorded {
            self.histogram.record_nanos(self.elapsed_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::clock::ManualClock;
    use crate::metrics::MetricsRegistry;
    use std::sync::Arc;

    fn manual_registry() -> (MetricsRegistry, ManualClock) {
        let clock = ManualClock::new();
        let handle = clock.handle();
        (MetricsRegistry::with_clock(Arc::new(clock)), handle)
    }

    #[test]
    fn drop_records_elapsed() {
        let (r, clock) = manual_registry();
        let h = r.histogram("stage", &[]);
        {
            let _timer = h.timer();
            clock.advance_nanos(1234);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum_nanos, 1234);
    }

    #[test]
    fn finish_records_once_and_returns_duration() {
        let (r, clock) = manual_registry();
        let h = r.histogram("stage", &[]);
        let timer = h.timer();
        clock.advance_nanos(500);
        assert_eq!(timer.finish(), 500);
        // finish consumed the timer; drop must not double-record.
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum_nanos, 500);
    }

    #[test]
    fn cancel_records_nothing() {
        let (r, clock) = manual_registry();
        let h = r.histogram("stage", &[]);
        let timer = h.timer();
        clock.advance_nanos(500);
        timer.cancel();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn nested_timers_record_independently() {
        let (r, clock) = manual_registry();
        let outer = r.histogram("outer", &[]);
        let inner = r.histogram("inner", &[]);
        {
            let _o = outer.timer();
            clock.advance_nanos(100);
            {
                let _i = inner.timer();
                clock.advance_nanos(50);
            }
            clock.advance_nanos(100);
        }
        assert_eq!(inner.snapshot().sum_nanos, 50);
        assert_eq!(outer.snapshot().sum_nanos, 250);
    }

    #[test]
    fn time_closure_returns_value() {
        let (r, clock) = manual_registry();
        let h = r.histogram("op", &[]);
        let out = h.time(|| {
            clock.advance_nanos(42);
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(h.snapshot().sum_nanos, 42);
    }
}

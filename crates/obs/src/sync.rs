//! Poison-tolerant locking helpers, plus a debug-only lock-order
//! witness.
//!
//! The cache hot path must be panic-free (analyzer rule R4), which rules
//! out `.lock().unwrap()`. Poisoning only signals that *another* thread
//! panicked while holding the guard; for the cache's own state —
//! monotone maps, counters, condvar-paired flags — the data is still
//! structurally valid, so every caller in this workspace prefers
//! recovering the guard over propagating a secondary panic.
//!
//! # Lock-order witness
//!
//! [`lock_class`] is [`lock`] with a *lock class* label — the same
//! `"Owner.field"` classes the static analyzer's R5v2 rule derives for
//! the workspace acquisition graph. In debug builds every `lock_class`
//! acquisition is checked against a process-global edge set: each
//! thread keeps a stack of the classes it holds, acquiring `B` while
//! holding `A` records the edge `A -> B` together with a captured
//! backtrace, and a later acquisition of `A` under `B` **panics**
//! carrying *both* backtraces — the prior `B`-under-`A` site and the
//! current inversion. The same cycle is what R5v2 reports statically
//! (see `crates/analyze/tests/corpus/r5v2_trigger.rs` and the stress
//! test in `crates/obs/tests/lock_witness.rs`); the witness catches
//! orders the static model cannot see (trait objects, closures, calls
//! through `dyn`). In release builds the witness is compiled out and
//! [`lock_class`] costs exactly one poison-recovering `lock()`.
//!
//! Re-acquiring a class already held by the same thread also panics
//! immediately: with `std::sync::Mutex` that is a guaranteed
//! self-deadlock, not an ordering question.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Acquires `mutex`, recovering the guard if a previous holder panicked.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `cv` with `guard`, recovering the guard on poison.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `cv` for at most `timeout`, recovering the guard on poison.
///
/// Callers deciding deadlines should re-check their own clock rather than
/// trusting the [`WaitTimeoutResult`] alone — spurious wakeups return
/// early with `timed_out() == false`.
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

/// A [`MutexGuard`] labelled with its lock class. Dereferences to the
/// protected data; releases the class on the witness stack when
/// dropped. Obtain one via [`lock_class`].
pub struct ClassGuard<'a, T> {
    // `Option` so `wait_class` can move the inner guard out while the
    // wrapper (and its witness registration) stays alive across the
    // wait; `None` only ever transiently inside this module.
    guard: Option<MutexGuard<'a, T>>,
    class: &'static str,
}

impl<T> ClassGuard<'_, T> {
    /// The lock class this guard was acquired under.
    pub fn class(&self) -> &'static str {
        self.class
    }

    fn inner(&self) -> &MutexGuard<'_, T> {
        match &self.guard {
            Some(g) => g,
            // Unreachable: the Option is only `None` mid-`wait_class`,
            // while the wrapper is exclusively borrowed there.
            None => unreachable!("ClassGuard dereferenced without its guard"),
        }
    }
}

impl<T> std::ops::Deref for ClassGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner()
    }
}

impl<T> std::ops::DerefMut for ClassGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.guard {
            Some(g) => g,
            None => unreachable!("ClassGuard dereferenced without its guard"),
        }
    }
}

impl<T> Drop for ClassGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the inner guard (releasing the mutex) before retiring
        // the class from this thread's witness stack.
        if self.guard.take().is_some() {
            witness::released(self.class);
        }
    }
}

/// [`lock`], labelled with the acquisition's lock class.
///
/// `class` should be the analyzer-visible class of `mutex`
/// (`"Owner.field"`); keeping the two in agreement is what lets a
/// runtime inversion panic and a static R5v2 diagnostic point at the
/// same bug. The witness check runs *before* the mutex is touched, so
/// an inversion panics instead of deadlocking.
pub fn lock_class<'a, T>(class: &'static str, mutex: &'a Mutex<T>) -> ClassGuard<'a, T> {
    witness::acquiring(class);
    ClassGuard {
        guard: Some(lock(mutex)),
        class,
    }
}

/// [`wait`] for a [`ClassGuard`]: blocks on `cv`, atomically releasing
/// and reacquiring the guard's mutex. The class stays on the witness
/// stack for the duration — the wait returns holding the same lock, so
/// from an ordering perspective nothing was released.
pub fn wait_class<'a, T>(cv: &Condvar, mut guard: ClassGuard<'a, T>) -> ClassGuard<'a, T> {
    if let Some(inner) = guard.guard.take() {
        guard.guard = Some(cv.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }
    guard
}

/// [`wait_timeout`] for a [`ClassGuard`]; see [`wait_class`].
pub fn wait_timeout_class<'a, T>(
    cv: &Condvar,
    mut guard: ClassGuard<'a, T>,
    timeout: Duration,
) -> (ClassGuard<'a, T>, WaitTimeoutResult) {
    // The Option is always `Some` here (no public API removes the inner
    // guard), but stay panic-free: fall back to a zero wait via the
    // plain helpers if it ever is not.
    let inner = guard.guard.take();
    match inner {
        Some(g) => {
            let (g, r) = cv
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            guard.guard = Some(g);
            (guard, r)
        }
        None => unreachable!("wait_timeout_class on an empty ClassGuard"),
    }
}

/// Debug-build lock-order witness: per-thread class stacks, a global
/// first-seen edge set with captured backtraces, and a panic carrying
/// both stacks when an acquisition inverts a recorded edge.
#[cfg(debug_assertions)]
mod witness {
    use std::backtrace::Backtrace;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};

    thread_local! {
        /// Classes held by this thread, in acquisition order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// `(held, acquired)` -> backtrace of the first acquisition that
    /// created the edge. Never pruned: classes are a small static set.
    fn edges() -> &'static Mutex<HashMap<(&'static str, &'static str), String>> {
        static EDGES: OnceLock<Mutex<HashMap<(&'static str, &'static str), String>>> =
            OnceLock::new();
        EDGES.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub(super) fn acquiring(class: &'static str) {
        let stack: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
        assert!(
            !stack.contains(&class),
            "lock-order witness: thread re-acquires class `{class}` it already holds \
             (held: {stack:?}); with std::sync::Mutex this self-deadlocks"
        );
        if !stack.is_empty() {
            let bt = Backtrace::force_capture().to_string();
            let mut map = edges().lock().unwrap_or_else(PoisonError::into_inner);
            for &under in &stack {
                if let Some(prior) = map.get(&(class, under)) {
                    let msg = format!(
                        "lock-order witness: inversion of `{class}` and `{under}` — this \
                         thread acquires `{class}` while holding `{under}`, but `{under}` \
                         was previously acquired while holding `{class}`. Static rule R5v2 \
                         flags the same cycle.\n\
                         --- stack that acquired `{under}` under `{class}` ---\n{prior}\n\
                         --- stack now acquiring `{class}` under `{under}` ---\n{bt}"
                    );
                    drop(map);
                    panic!("{msg}");
                }
            }
            for &under in &stack {
                map.entry((under, class)).or_insert_with(|| bt.clone());
            }
        }
        HELD.with(|h| h.borrow_mut().push(class));
    }

    pub(super) fn released(class: &'static str) {
        HELD.with(|h| {
            let mut s = h.borrow_mut();
            // Guards may drop out of acquisition order; retire the most
            // recent instance of the class.
            if let Some(pos) = s.iter().rposition(|&c| c == class) {
                s.remove(pos);
            }
        });
    }
}

/// Release builds: the witness costs nothing.
#[cfg(not(debug_assertions))]
mod witness {
    pub(super) fn acquiring(_class: &'static str) {}
    pub(super) fn released(_class: &'static str) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7, "data survives the panic");
    }

    #[test]
    fn wait_timeout_returns_after_deadline() {
        let pair = (Mutex::new(false), Condvar::new());
        let guard = lock(&pair.0);
        let (guard, result) = wait_timeout(&pair.1, guard, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
        assert!(!*guard);
    }

    #[test]
    fn wait_timeout_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *lock(m) = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = lock(m);
        while !*done {
            let (guard, _) = wait_timeout(cv, done, std::time::Duration::from_secs(5));
            done = guard;
        }
        waker.join().unwrap();
    }

    #[test]
    fn wait_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *lock(m) = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = lock(m);
        while !*done {
            done = wait(cv, done);
        }
        waker.join().unwrap();
    }

    #[test]
    fn class_guard_locks_and_releases() {
        let m = Mutex::new(41u32);
        {
            let mut g = lock_class("tests.m", &m);
            *g += 1;
            assert_eq!(g.class(), "tests.m");
        }
        // Released: a plain lock succeeds immediately.
        assert_eq!(*lock(&m), 42);
    }

    #[test]
    fn wait_timeout_class_returns_after_deadline() {
        let pair = (Mutex::new(false), Condvar::new());
        let guard = lock_class("tests.pair", &pair.0);
        let (guard, result) =
            wait_timeout_class(&pair.1, guard, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
        assert!(!*guard);
    }

    #[test]
    fn wait_class_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *lock_class("tests.wake", m) = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = lock_class("tests.wake", m);
        while !*done {
            done = wait_class(cv, done);
        }
        waker.join().unwrap();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn witness_panics_on_same_thread_reentry() {
        let m1 = Mutex::new(0u32);
        let err = std::thread::scope(|s| {
            s.spawn(|| {
                let _a = lock_class("tests.reentry", &m1);
                // Second acquisition of the same class on this thread:
                // guaranteed deadlock, so the witness panics instead.
                let m2 = Mutex::new(0u32);
                let _b = lock_class("tests.reentry", &m2);
            })
            .join()
        })
        .unwrap_err();
        let msg = panic_text(&err);
        assert!(msg.contains("re-acquires class `tests.reentry`"), "{msg}");
    }

    #[cfg(debug_assertions)]
    fn panic_text(err: &Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }
}

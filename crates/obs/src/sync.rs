//! Poison-tolerant locking helpers.
//!
//! The cache hot path must be panic-free (analyzer rule R4), which rules
//! out `.lock().unwrap()`. Poisoning only signals that *another* thread
//! panicked while holding the guard; for the cache's own state —
//! monotone maps, counters, condvar-paired flags — the data is still
//! structurally valid, so every caller in this workspace prefers
//! recovering the guard over propagating a secondary panic.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Acquires `mutex`, recovering the guard if a previous holder panicked.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `cv` with `guard`, recovering the guard on poison.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `cv` for at most `timeout`, recovering the guard on poison.
///
/// Callers deciding deadlines should re-check their own clock rather than
/// trusting the [`WaitTimeoutResult`] alone — spurious wakeups return
/// early with `timed_out() == false`.
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7, "data survives the panic");
    }

    #[test]
    fn wait_timeout_returns_after_deadline() {
        let pair = (Mutex::new(false), Condvar::new());
        let guard = lock(&pair.0);
        let (guard, result) = wait_timeout(&pair.1, guard, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
        assert!(!*guard);
    }

    #[test]
    fn wait_timeout_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *lock(m) = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = lock(m);
        while !*done {
            let (guard, _) = wait_timeout(cv, done, std::time::Duration::from_secs(5));
            done = guard;
        }
        waker.join().unwrap();
    }

    #[test]
    fn wait_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *lock(m) = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = lock(m);
        while !*done {
            done = wait(cv, done);
        }
        waker.join().unwrap();
    }
}

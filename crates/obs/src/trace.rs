//! Distributed request tracing: contexts, spans, and propagation.
//!
//! The paper attributes end-to-end cost to per-stage work — parse,
//! build, retrieve, transfer (Tables 6–9) — but aggregate histograms
//! cannot say why one *specific* p99 request was slow. This module adds
//! the per-request causal view: a [`TraceContext`] (128-bit trace id,
//! 64-bit span id, parent link, sampled flag) is minted at a request
//! root, travels across the wire in a `traceparent`-style header, and
//! every instrumented stage records a [`SpanRecord`] into the tracer's
//! tail-sampling [`crate::sampler::TraceStore`].
//!
//! Design constraints, in order:
//!
//! - **No signature churn.** The current span lives in a thread-local
//!   stack, so `Handler::handle` and the client call path stay
//!   unchanged; stages call [`child_span`] and get `None` when no
//!   trace is active.
//! - **Allocation-light.** Finished spans land in a per-thread buffer
//!   and are drained into the store in batches — once per request on
//!   the root's finish, or when the buffer fills. The hit path records
//!   two or three spans and takes at most one store lock per request.
//! - **Deterministic.** All timestamps come from the tracer's injected
//!   [`Clock`], so span trees are exact under a
//!   [`crate::clock::ManualClock`].
//!
//! Root discipline (analyzer rule R8): request-path spans must descend
//! from a propagated context. Only designated root sites — the load
//! generator and benchmark drivers — may mint fresh roots; servers
//! *continue* a received context via [`Tracer::span_from`].

use crate::clock::Clock;
use crate::sampler::{TraceStore, TraceStoreConfig};
use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The propagation header carrying a [`TraceContext`] across HTTP hops
/// (requests and echoed responses).
pub const TRACEPARENT_HEADER: &str = "traceparent";

/// Spans buffered per thread before a batch is pushed to the store.
const THREAD_BUFFER_CAP: usize = 128;

/// Renders a 128-bit trace id as 32 lowercase hex digits (the wire and
/// exemplar format).
pub fn format_trace_id(id: u128) -> String {
    format!("{id:032x}")
}

/// Renders a 64-bit span id as 16 lowercase hex digits.
pub fn format_span_id(id: u64) -> String {
    format!("{id:016x}")
}

fn mix(n: u64) -> u64 {
    // One process-wide random hash seed; ids are hashes of a global
    // serial, unique without consulting a wall clock (rule R3 keeps
    // `Instant::now` out of library code).
    static SEED: OnceLock<RandomState> = OnceLock::new();
    let mut h = SEED.get_or_init(RandomState::new).build_hasher();
    h.write_u64(n);
    h.finish()
}

fn next_serial() -> u64 {
    static SERIAL: AtomicU64 = AtomicU64::new(1);
    SERIAL.fetch_add(1, Ordering::SeqCst)
}

fn fresh_trace_id() -> u128 {
    let n = next_serial();
    let hi = mix(n) as u128;
    let lo = mix(n ^ 0x9e37_79b9_7f4a_7c15) as u128;
    let id = (hi << 64) | lo;
    if id == 0 {
        1
    } else {
        id
    }
}

fn fresh_span_id() -> u64 {
    let id = mix(next_serial() ^ 0x2545_f491_4f6c_dd1d);
    if id == 0 {
        1
    } else {
        id
    }
}

/// The identity a request carries: which trace it belongs to, which
/// span is current, and whether spans are being recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id, never zero (zero means "no trace" in
    /// exemplars).
    pub trace_id: u128,
    /// The current span's id, never zero.
    pub span_id: u64,
    /// The parent span, `None` for the trace root (or for a context
    /// parsed off the wire, whose parent lives in another process).
    pub parent_span_id: Option<u64>,
    /// Whether spans under this context are recorded.
    pub sampled: bool,
}

impl TraceContext {
    /// Mints a fresh root context (always sampled — retention is
    /// decided *after* the fact by tail sampling).
    pub fn root() -> TraceContext {
        TraceContext {
            trace_id: fresh_trace_id(),
            span_id: fresh_span_id(),
            parent_span_id: None,
            sampled: true,
        }
    }

    /// A child context: same trace, fresh span id, parented here.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: fresh_span_id(),
            parent_span_id: Some(self.span_id),
            sampled: self.sampled,
        }
    }

    /// Renders the `traceparent` header value:
    /// `00-<32 hex trace id>-<16 hex span id>-<01|00>`.
    pub fn to_traceparent(&self) -> String {
        format!(
            "00-{:032x}-{:016x}-{:02x}",
            self.trace_id,
            self.span_id,
            u8::from(self.sampled)
        )
    }

    /// Parses a `traceparent` header value. Returns `None` for
    /// malformed input, unknown versions, or all-zero ids.
    pub fn parse_traceparent(value: &str) -> Option<TraceContext> {
        let mut parts = value.trim().split('-');
        let version = parts.next()?;
        let trace_hex = parts.next()?;
        let span_hex = parts.next()?;
        let flags_hex = parts.next()?;
        if parts.next().is_some() || version != "00" {
            return None;
        }
        if trace_hex.len() != 32 || span_hex.len() != 16 || flags_hex.len() != 2 {
            return None;
        }
        let trace_id = u128::from_str_radix(trace_hex, 16).ok()?;
        let span_id = u64::from_str_radix(span_hex, 16).ok()?;
        let flags = u8::from_str_radix(flags_hex, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            parent_span_id: None,
            sampled: flags & 1 == 1,
        })
    }
}

/// One finished span: a causally-linked interval of a specific request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The owning trace.
    pub trace_id: u128,
    /// This span's id.
    pub span_id: u64,
    /// The parent span (`None` at the trace root).
    pub parent_span_id: Option<u64>,
    /// Human name, e.g. `"pool-checkout"`.
    pub name: &'static str,
    /// Stage tag matching the stage-histogram labels, e.g. `"parse"`.
    pub stage: &'static str,
    /// Start reading of the tracer clock.
    pub start_nanos: u64,
    /// End reading of the tracer clock.
    pub end_nanos: u64,
    /// Cached-representation tag (`xml-text`, `sax-events`, …), when
    /// the stage touched one.
    pub repr: Option<String>,
    /// Free-form annotation, e.g. the cache outcome.
    pub annotation: Option<String>,
    /// Whether the span ended in an error.
    pub error: bool,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// Records spans against an injected clock and retains them in a
/// tail-sampling [`TraceStore`].
pub struct Tracer {
    clock: Arc<dyn Clock>,
    store: TraceStore,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Tracer")
    }
}

impl Tracer {
    /// A tracer with the default retention configuration.
    pub fn new(clock: Arc<dyn Clock>) -> Arc<Tracer> {
        Tracer::with_config(clock, TraceStoreConfig::default())
    }

    /// A tracer with an explicit retention configuration.
    pub fn with_config(clock: Arc<dyn Clock>, config: TraceStoreConfig) -> Arc<Tracer> {
        Arc::new(Tracer {
            clock,
            store: TraceStore::new(config),
        })
    }

    /// The clock all span timestamps come from.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The backing trace store (for `/trace` rendering and reports).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// Mints a fresh trace root. Only designated root sites (load
    /// generator, benchmark drivers) may call this — rule R8 flags
    /// other callers, because a request-path span created from thin
    /// air breaks end-to-end attribution.
    pub fn root_span(self: &Arc<Self>, name: &'static str, route: &str) -> ActiveSpan {
        let ctx = TraceContext::root();
        self.store.open_root(ctx.trace_id);
        ActiveSpan::start(
            self.clone(),
            ctx,
            name,
            "root",
            RootKind::Global {
                route: route.to_string(),
            },
        )
    }

    /// Continues a context received over the wire: the returned span is
    /// a child of the remote parent and acts as this process's local
    /// root — when it finishes, the thread buffer is drained and, if no
    /// in-process global root owns the trace, the fragment is retained
    /// under `route`.
    pub fn span_from(
        self: &Arc<Self>,
        parent: TraceContext,
        name: &'static str,
        stage: &'static str,
        route: &str,
    ) -> ActiveSpan {
        ActiveSpan::start(
            self.clone(),
            parent.child(),
            name,
            stage,
            RootKind::Wire {
                route: route.to_string(),
            },
        )
    }
}

/// How a span relates to trace retention.
#[derive(Debug)]
enum RootKind {
    /// An interior span: buffered, drained with its root.
    NotRoot,
    /// The trace's true root: finishing it finalizes the whole trace.
    Global { route: String },
    /// A local root continuing a wire context: finishing it drains the
    /// thread buffer and provisionally finalizes (skipped when an
    /// in-process global root owns the trace).
    Wire { route: String },
}

struct Frame {
    tracer: Arc<Tracer>,
    ctx: TraceContext,
}

#[derive(Default)]
struct TraceTls {
    stack: Vec<Frame>,
    owner: Option<Arc<Tracer>>,
    buffer: Vec<SpanRecord>,
}

thread_local! {
    static TLS: RefCell<TraceTls> = RefCell::new(TraceTls::default());
}

/// The current thread's innermost active context, if any.
pub fn current_context() -> Option<TraceContext> {
    TLS.try_with(|t| {
        t.try_borrow()
            .ok()
            .and_then(|t| t.stack.last().map(|f| f.ctx))
    })
    .ok()
    .flatten()
}

/// The current thread's sampled trace id, or 0 when no sampled trace is
/// active — the value histogram exemplars attach.
pub fn current_trace_id() -> u128 {
    match current_context() {
        Some(ctx) if ctx.sampled => ctx.trace_id,
        _ => 0,
    }
}

/// Starts a child of the current thread's active span, or returns
/// `None` when no trace is active (untraced callers pay only a TLS
/// read). The span finishes on drop or [`ActiveSpan::finish`].
pub fn child_span(name: &'static str, stage: &'static str) -> Option<ActiveSpan> {
    let (tracer, parent) = TLS
        .try_with(|t| {
            t.try_borrow()
                .ok()
                .and_then(|t| t.stack.last().map(|f| (f.tracer.clone(), f.ctx)))
        })
        .ok()
        .flatten()?;
    Some(ActiveSpan::start(
        tracer,
        parent.child(),
        name,
        stage,
        RootKind::NotRoot,
    ))
}

fn push_frame(tracer: &Arc<Tracer>, ctx: TraceContext) {
    let _ = TLS.try_with(|t| {
        if let Ok(mut t) = t.try_borrow_mut() {
            t.stack.push(Frame {
                tracer: tracer.clone(),
                ctx,
            });
        }
    });
}

fn pop_frame(span_id: u64) {
    let _ = TLS.try_with(|t| {
        if let Ok(mut t) = t.try_borrow_mut() {
            // Defensive: also discard any frames stacked above a span
            // that was finished out of order.
            if let Some(pos) = t.stack.iter().rposition(|f| f.ctx.span_id == span_id) {
                t.stack.truncate(pos);
            }
        }
    });
}

/// Buffers a finished record; returns batches that must be pushed to
/// their stores (the caller does so *outside* the TLS borrow).
fn buffer_record(
    tracer: &Arc<Tracer>,
    record: SpanRecord,
    force_drain: bool,
) -> Vec<(Arc<Tracer>, Vec<SpanRecord>)> {
    TLS.try_with(|t| {
        let Ok(mut t) = t.try_borrow_mut() else {
            // Re-entrant borrow (should not happen): deliver directly.
            return vec![(tracer.clone(), vec![record.clone()])];
        };
        let mut batches = Vec::new();
        let same_owner = t.owner.as_ref().is_some_and(|o| Arc::ptr_eq(o, tracer));
        if !same_owner {
            let drained = std::mem::take(&mut t.buffer);
            if let Some(old) = t.owner.take() {
                if !drained.is_empty() {
                    batches.push((old, drained));
                }
            }
            t.owner = Some(tracer.clone());
        }
        t.buffer.push(record.clone());
        if force_drain || t.buffer.len() >= THREAD_BUFFER_CAP {
            let drained = std::mem::take(&mut t.buffer);
            batches.push((tracer.clone(), drained));
            t.owner = None;
        }
        batches
    })
    .unwrap_or_default()
}

/// A live span. Created through [`Tracer::root_span`],
/// [`Tracer::span_from`], or [`child_span`]; records a [`SpanRecord`]
/// when finished or dropped. While alive it is the current span of the
/// creating thread, so nested [`child_span`] calls parent onto it.
#[must_use = "an active span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct ActiveSpan {
    tracer: Arc<Tracer>,
    ctx: TraceContext,
    name: &'static str,
    stage: &'static str,
    start_nanos: u64,
    repr: Option<String>,
    annotation: Option<String>,
    error: bool,
    root: RootKind,
    finished: bool,
}

impl ActiveSpan {
    fn start(
        tracer: Arc<Tracer>,
        ctx: TraceContext,
        name: &'static str,
        stage: &'static str,
        root: RootKind,
    ) -> ActiveSpan {
        let start_nanos = tracer.clock.now_nanos();
        push_frame(&tracer, ctx);
        ActiveSpan {
            tracer,
            ctx,
            name,
            stage,
            start_nanos,
            repr: None,
            annotation: None,
            error: false,
            root,
            finished: false,
        }
    }

    /// The span's context (what a propagation header should carry).
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// The owning trace id.
    pub fn trace_id(&self) -> u128 {
        self.ctx.trace_id
    }

    /// This span's id.
    pub fn span_id(&self) -> u64 {
        self.ctx.span_id
    }

    /// The clock reading when the span started (for retroactive
    /// children ending where this span began).
    pub fn start_nanos(&self) -> u64 {
        self.start_nanos
    }

    /// Tags the cached representation this span touched.
    pub fn set_repr(&mut self, repr: impl Into<String>) {
        self.repr = Some(repr.into());
    }

    /// Attaches a free-form annotation (e.g. the cache outcome).
    pub fn annotate(&mut self, text: impl Into<String>) {
        self.annotation = Some(text.into());
    }

    /// Marks the span (and thus its trace) as errored; error traces are
    /// always retained.
    pub fn set_error(&mut self) {
        self.error = true;
    }

    /// Emits an already-finished child span with explicit timestamps —
    /// used for retroactive intervals such as the queue wait a request
    /// experienced *before* the server span could exist.
    pub fn child_record(
        &self,
        name: &'static str,
        stage: &'static str,
        start_nanos: u64,
        end_nanos: u64,
    ) {
        if !self.ctx.sampled {
            return;
        }
        let child = self.ctx.child();
        let record = SpanRecord {
            trace_id: child.trace_id,
            span_id: child.span_id,
            parent_span_id: child.parent_span_id,
            name,
            stage,
            start_nanos,
            end_nanos,
            repr: None,
            annotation: None,
            error: false,
        };
        for (tracer, batch) in buffer_record(&self.tracer, record, false) {
            tracer.store.record_batch(batch);
        }
    }

    /// Finishes the span now (same as dropping it).
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let end_nanos = self.tracer.clock.now_nanos();
        pop_frame(self.ctx.span_id);
        if !self.ctx.sampled {
            return;
        }
        let record = SpanRecord {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_span_id: self.ctx.parent_span_id,
            name: self.name,
            stage: self.stage,
            start_nanos: self.start_nanos,
            end_nanos,
            repr: self.repr.take(),
            annotation: self.annotation.take(),
            error: self.error,
        };
        let is_root = !matches!(self.root, RootKind::NotRoot);
        for (tracer, batch) in buffer_record(&self.tracer, record, is_root) {
            tracer.store.record_batch(batch);
        }
        let duration = end_nanos.saturating_sub(self.start_nanos);
        match &self.root {
            RootKind::NotRoot => {}
            RootKind::Global { route } => {
                self.tracer
                    .store
                    .finalize(self.ctx.trace_id, route, duration, self.error, false);
            }
            RootKind::Wire { route } => {
                self.tracer
                    .store
                    .finalize(self.ctx.trace_id, route, duration, self.error, true);
            }
        }
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_tracer() -> (Arc<Tracer>, ManualClock) {
        let clock = ManualClock::new();
        let handle = clock.handle();
        (Tracer::new(Arc::new(clock)), handle)
    }

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext::root();
        let wire = ctx.to_traceparent();
        assert_eq!(wire.len(), 2 + 1 + 32 + 1 + 16 + 1 + 2);
        let parsed = TraceContext::parse_traceparent(&wire).expect("round trip");
        assert_eq!(parsed.trace_id, ctx.trace_id);
        assert_eq!(parsed.span_id, ctx.span_id);
        assert!(parsed.sampled);
        assert_eq!(parsed.parent_span_id, None);
    }

    #[test]
    fn traceparent_rejects_malformed_values() {
        for bad in [
            "",
            "garbage",
            "01-00000000000000000000000000000001-0000000000000001-01",
            "00-0000000000000000000000000000000g-0000000000000001-01",
            "00-00000000000000000000000000000000-0000000000000001-01",
            "00-00000000000000000000000000000001-0000000000000000-01",
            "00-0001-0001-01",
            "00-00000000000000000000000000000001-0000000000000001-01-extra",
        ] {
            assert!(
                TraceContext::parse_traceparent(bad).is_none(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn unsampled_flag_survives_the_wire() {
        let mut ctx = TraceContext::root();
        ctx.sampled = false;
        let parsed = TraceContext::parse_traceparent(&ctx.to_traceparent()).expect("parses");
        assert!(!parsed.sampled);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let ctx = TraceContext::root();
            assert_ne!(ctx.trace_id, 0);
            assert_ne!(ctx.span_id, 0);
            assert!(seen.insert(ctx.trace_id), "duplicate trace id");
        }
    }

    #[test]
    fn root_and_children_form_a_tree_in_the_store() {
        let (tracer, clock) = manual_tracer();
        {
            let root = tracer.root_span("request", "/portal");
            clock.advance_nanos(10);
            {
                let mut child = child_span("cache-lookup", "lookup").expect("trace active");
                child.annotate("outcome=miss");
                clock.advance_nanos(90);
            }
            root.finish();
        }
        let traces = tracer.store().recent();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.route, "/portal");
        assert_eq!(t.duration_nanos, 100);
        assert_eq!(t.spans.len(), 2);
        let root = t
            .spans
            .iter()
            .find(|s| s.parent_span_id.is_none())
            .expect("root");
        let child = t
            .spans
            .iter()
            .find(|s| s.parent_span_id.is_some())
            .expect("child");
        assert_eq!(child.parent_span_id, Some(root.span_id));
        assert_eq!(child.stage, "lookup");
        assert_eq!(child.annotation.as_deref(), Some("outcome=miss"));
        assert_eq!(child.duration_nanos(), 90);
    }

    #[test]
    fn no_active_trace_means_no_child_span() {
        assert!(child_span("x", "y").is_none());
        assert_eq!(current_trace_id(), 0);
        assert!(current_context().is_none());
    }

    #[test]
    fn current_trace_id_feeds_exemplars_only_while_active() {
        let (tracer, _clock) = manual_tracer();
        let root = tracer.root_span("request", "/r");
        assert_eq!(current_trace_id(), root.trace_id());
        root.finish();
        assert_eq!(current_trace_id(), 0);
    }

    #[test]
    fn wire_continuation_parents_onto_the_remote_span() {
        let (tracer, clock) = manual_tracer();
        let root = tracer.root_span("request", "/r");
        let wire = root.context().to_traceparent();
        let remote = TraceContext::parse_traceparent(&wire).expect("parses");
        {
            let server = tracer.span_from(remote, "server", "server", "/r");
            assert_eq!(server.trace_id(), root.trace_id());
            assert_eq!(server.context().parent_span_id, Some(root.span_id()));
            clock.advance_nanos(5);
        }
        root.finish();
        let traces = tracer.store().recent();
        assert_eq!(traces.len(), 1, "one finalized trace, not two");
        assert_eq!(traces[0].spans.len(), 2);
    }

    #[test]
    fn retro_child_records_carry_explicit_times() {
        let (tracer, clock) = manual_tracer();
        clock.advance_nanos(1000);
        let root = tracer.root_span("request", "/r");
        root.child_record("queue-wait", "queue", 400, 1000);
        root.finish();
        let traces = tracer.store().recent();
        let queue = traces[0]
            .spans
            .iter()
            .find(|s| s.stage == "queue")
            .expect("queue span");
        let root = traces[0]
            .spans
            .iter()
            .find(|s| s.stage == "root")
            .expect("root span");
        assert_eq!(queue.duration_nanos(), 600);
        assert_eq!(queue.parent_span_id, Some(root.span_id));
    }

    #[test]
    fn error_marks_propagate_to_the_stored_trace() {
        let (tracer, _clock) = manual_tracer();
        let mut root = tracer.root_span("request", "/err");
        root.set_error();
        root.finish();
        let traces = tracer.store().recent();
        assert!(traces[0].error);
    }

    #[test]
    fn spans_record_through_thread_boundaries() {
        let (tracer, _clock) = manual_tracer();
        let root = tracer.root_span("request", "/multi");
        let ctx = root.context();
        std::thread::scope(|scope| {
            let tracer = tracer.clone();
            scope.spawn(move || {
                // The worker continues the context it received.
                let server = tracer.span_from(ctx, "server", "server", "/multi");
                server.finish();
            });
        });
        root.finish();
        let traces = tracer.store().recent();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].spans.len(), 2);
    }
}

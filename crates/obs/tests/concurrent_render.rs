//! Satellite stress test: 16 worker threads record spans (and exemplared
//! histogram samples) while `/metrics`- and `/trace`-style renderings run
//! concurrently. Deterministic under [`ManualClock`]: when the dust
//! settles, no trace lost a span, no span was duplicated, and every
//! rendering produced the stable JSON shape.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wsrc_obs::clock::ManualClock;
use wsrc_obs::{to_json, to_prometheus, MetricsRegistry, TraceStoreConfig, Tracer};

const WORKERS: usize = 16;
const TRACES_PER_WORKER: usize = 16;
/// Spans per trace: one root plus two children.
const SPANS_PER_TRACE: usize = 3;

#[test]
fn concurrent_rendering_never_loses_or_duplicates_spans() {
    let clock = ManualClock::new();
    let tracer = Tracer::with_config(
        Arc::new(clock.handle()),
        TraceStoreConfig {
            // Retain everything: the test asserts exact counts, so the
            // probabilistic sampler is pinned wide open.
            recent_capacity: WORKERS * TRACES_PER_WORKER,
            slowest_per_route: 4,
            sample_one_in: 1,
            max_pending: WORKERS * TRACES_PER_WORKER,
            max_spans_per_trace: 64,
        },
    );
    let registry = Arc::new(MetricsRegistry::with_clock(Arc::new(clock.handle())));
    let histogram = registry.histogram("wsrc_test_stage_seconds", &[("stage", "work")]);
    let writers_done = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Two readers render both expositions as fast as they can while
        // the writers are still recording; every intermediate rendering
        // must already be well-formed. One final pass runs after the
        // last writer finishes.
        for _ in 0..2 {
            let tracer = tracer.clone();
            let registry = registry.clone();
            let writers_done = &writers_done;
            scope.spawn(move || {
                let mut renders = 0usize;
                let mut final_pass = false;
                while !final_pass {
                    final_pass = writers_done.load(Ordering::SeqCst) == WORKERS;
                    let trace_json = tracer.store().to_json();
                    assert!(trace_json.starts_with("{\"recent\":["), "{trace_json}");
                    assert!(trace_json.contains("\"slowest\":["), "{trace_json}");
                    assert!(trace_json.contains("\"dropped\":"), "{trace_json}");
                    assert_eq!(
                        trace_json.matches('{').count(),
                        trace_json.matches('}').count(),
                        "unbalanced braces mid-render"
                    );
                    let snapshot = registry.snapshot();
                    let metrics_json = to_json(&snapshot);
                    assert!(metrics_json.starts_with('{'), "{metrics_json}");
                    let prom = to_prometheus(&snapshot);
                    assert!(!prom.contains("\u{0}"), "prometheus text is clean");
                    renders += 1;
                }
                assert!(renders > 0);
            });
        }
        for worker in 0..WORKERS {
            let tracer = tracer.clone();
            let histogram = histogram.clone();
            let writers_done = &writers_done;
            scope.spawn(move || {
                for i in 0..TRACES_PER_WORKER {
                    let root = tracer.root_span("stress", &format!("/w{worker}"));
                    for stage in ["lookup", "build"] {
                        if let Some(span) = wsrc_obs::trace::child_span("step", stage) {
                            span.finish();
                        }
                    }
                    histogram.record_nanos((i as u64 + 1) * 1_000);
                    root.finish();
                }
                writers_done.fetch_add(1, Ordering::SeqCst);
            });
        }
    });

    // Every trace was retained (sampler pinned open) with its exact span
    // complement — nothing lost to a race, nothing double-drained.
    let recent = tracer.store().recent();
    assert_eq!(recent.len(), WORKERS * TRACES_PER_WORKER);
    assert_eq!(tracer.store().dropped(), 0);
    let mut seen_span_ids = std::collections::HashSet::new();
    for trace in &recent {
        assert_eq!(
            trace.spans.len(),
            SPANS_PER_TRACE,
            "trace {:x} lost or duplicated spans",
            trace.trace_id
        );
        assert_eq!(
            trace.spans.iter().filter(|s| s.stage == "root").count(),
            1,
            "exactly one root per trace"
        );
        for span in &trace.spans {
            assert!(
                seen_span_ids.insert((trace.trace_id, span.span_id)),
                "span {:x} duplicated",
                span.span_id
            );
        }
    }
    // The histogram absorbed every sample and its exemplars point at
    // real trace ids.
    let snap = histogram.snapshot();
    assert_eq!(snap.count, (WORKERS * TRACES_PER_WORKER) as u64);
    let trace_ids: std::collections::HashSet<u128> = recent.iter().map(|t| t.trace_id).collect();
    let exemplared: Vec<u128> = snap.exemplars.iter().copied().filter(|&e| e != 0).collect();
    assert!(
        !exemplared.is_empty(),
        "samples recorded under active traces carry exemplars"
    );
    for e in exemplared {
        assert!(
            trace_ids.contains(&e),
            "exemplar {e:x} is a retained trace id"
        );
    }
}

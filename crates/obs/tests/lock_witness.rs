//! Stress test for the debug-only runtime lock-order witness.
//!
//! Provokes the exact inversion that the static analyzer's R5v2 rule
//! flags on `crates/analyze/tests/corpus/r5v2_trigger.rs`: one code
//! path acquires `alpha` then `beta`, another acquires `beta` then
//! `alpha`. Statically that is a cycle in the workspace acquisition
//! graph; dynamically the witness must panic at the second path's
//! `alpha` acquisition, carrying *both* captured stacks. The two
//! detectors agreeing on one seeded bug is the point of the test.
#![cfg(debug_assertions)]

use std::sync::{Arc, Mutex};
use wsrc_obs::sync::lock_class;

const ALPHA: &str = "stress.alpha";
const BETA: &str = "stress.beta";

fn panic_text(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn witness_catches_seeded_inversion_with_both_stacks() {
    let alpha = Arc::new(Mutex::new(0u64));
    let beta = Arc::new(Mutex::new(0u64));

    // Phase 1: hammer the *consistent* order from several threads. No
    // panic — a consistent order is exactly what the witness permits —
    // and the alpha -> beta edge (plus its backtrace) gets recorded.
    let mut workers = Vec::new();
    for _ in 0..4 {
        let (a, b) = (Arc::clone(&alpha), Arc::clone(&beta));
        workers.push(std::thread::spawn(move || {
            for _ in 0..100 {
                let mut ga = lock_class(ALPHA, &a);
                let mut gb = lock_class(BETA, &b);
                *ga += 1;
                *gb += 1;
            }
        }));
    }
    for w in workers {
        w.join()
            .expect("consistent order must not trip the witness");
    }

    // Phase 2: one thread inverts the order. Because the witness checks
    // *edges*, not live contention, this is caught deterministically —
    // no second thread needs to be parked inside the critical section,
    // so the test can never deadlock.
    let (a, b) = (Arc::clone(&alpha), Arc::clone(&beta));
    let err = std::thread::spawn(move || {
        let _gb = lock_class(BETA, &b);
        let _ga = lock_class(ALPHA, &a); // inversion: alpha under beta
    })
    .join()
    .expect_err("inverted order must panic");

    let msg = panic_text(err);
    assert!(
        msg.contains("lock-order witness: inversion"),
        "witness panic expected, got: {msg}"
    );
    assert!(msg.contains(ALPHA) && msg.contains(BETA), "{msg}");
    // Both stacks: the recorded first-order acquisition and the
    // inverting one.
    assert!(
        msg.contains(&format!(
            "--- stack that acquired `{BETA}` under `{ALPHA}` ---"
        )),
        "prior stack missing: {msg}"
    );
    assert!(
        msg.contains(&format!(
            "--- stack now acquiring `{ALPHA}` under `{BETA}` ---"
        )),
        "current stack missing: {msg}"
    );
    // The static half of the agreement: R5v2 names the same rule code
    // in the message so a runtime report leads back to the analyzer.
    assert!(msg.contains("R5v2"), "{msg}");
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! The portal-site scenario of paper §5.2.
//!
//! A portal web site calls the dummy Google back-end through the caching
//! client middleware; a closed-loop load simulator stresses the portal
//! while the cache-hit ratio is swept from 0% to 100%. [`scenario`] wires
//! the whole thing up and produces the throughput / response-time points
//! of the paper's Figures 3 and 4.

pub mod loadgen;
pub mod multi;
pub mod scenario;
pub mod site;

pub use loadgen::{LoadConfig, LoadReport};
pub use multi::MultiPortal;
pub use scenario::{run_portal_scenario, ScenarioConfig, ScenarioResult, TransportMode};
pub use site::PortalSite;

//! Closed-loop load simulator — the Web Performance Tool analog.
//!
//! `concurrency` workers issue portal page requests back-to-back ("the
//! next request was not issued until after the reply was received", §5.2)
//! and the query schedule forces a target cache-hit ratio: request *i* is
//! a repeat of a hot query when the Bresenham accumulator for the target
//! ratio ticks, and a globally unique query otherwise.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;
use wsrc_obs::{Clock, MetricsRegistry, MonotonicClock};

/// Load parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Number of closed-loop workers (1 for Figure 3, 25 for Figure 4).
    pub concurrency: usize,
    /// Total measured requests across all workers.
    pub requests: usize,
    /// Target cache-hit ratio in `[0, 1]`.
    pub hit_ratio: f64,
    /// Number of distinct hot (repeated) queries.
    pub hot_queries: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            concurrency: 1,
            requests: 1000,
            hit_ratio: 0.5,
            hot_queries: 8,
        }
    }
}

/// Aggregated measurements from one load run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Requests that completed successfully.
    pub completed: usize,
    /// Requests that failed.
    pub errors: usize,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Mean response time over completed requests.
    pub mean_response: Duration,
    /// Median response time (upper bound of the log2 histogram bucket
    /// holding the 50th percentile).
    pub p50_response: Duration,
    /// Tail response time (upper bound of the bucket holding the 99th
    /// percentile).
    pub p99_response: Duration,
    /// Extreme-tail response time (bucket upper bound at the 99.9th
    /// percentile) — the tail that tail-sampled traces explain.
    pub p999_response: Duration,
    /// Completed requests per second.
    pub throughput_rps: f64,
}

/// One worker's connection to the portal (workers never share
/// connections, like the paper's load tool).
pub trait PortalConn: Send {
    /// Fetches one portal page; returns an error description on failure.
    fn fetch(&mut self, query: &str) -> Result<(), String>;
}

/// A portal as seen by the load generator: a factory of per-worker
/// connections.
pub trait PortalTarget: Sync {
    /// The per-worker connection type.
    type Conn: PortalConn;

    /// Opens a connection for one worker.
    fn connect(&self) -> Self::Conn;
}

/// The deterministic query schedule controlling the hit ratio.
#[derive(Debug)]
pub struct QuerySchedule {
    hit_ratio: f64,
    hot_queries: usize,
    counter: AtomicUsize,
}

impl QuerySchedule {
    /// Creates a schedule for the target ratio.
    pub fn new(hit_ratio: f64, hot_queries: usize) -> Self {
        QuerySchedule {
            hit_ratio: hit_ratio.clamp(0.0, 1.0),
            hot_queries: hot_queries.max(1),
            counter: AtomicUsize::new(0),
        }
    }

    /// The hot queries that must be primed (fetched once) before
    /// measurement so their first use is not a miss.
    pub fn prime_queries(&self) -> Vec<String> {
        (0..self.hot_queries)
            .map(|i| format!("hot-query-{i}"))
            .collect()
    }

    /// The next query in the global schedule.
    pub fn next_query(&self) -> String {
        let i = self.counter.fetch_add(1, Ordering::SeqCst);
        // Bresenham-style accumulator: request i is a "hit" request when
        // the integer part of i*ratio advances.
        let before = (i as f64 * self.hit_ratio) as u64;
        let after = ((i + 1) as f64 * self.hit_ratio) as u64;
        if after > before {
            format!("hot-query-{}", i % self.hot_queries)
        } else {
            format!("unique-query-{i}")
        }
    }
}

/// Runs the load and aggregates the report.
///
/// The workers share the global schedule, so the aggregate mix matches
/// the target hit ratio regardless of per-worker interleaving.
pub fn run_load<T: PortalTarget>(target: &T, config: &LoadConfig) -> LoadReport {
    run_load_with_clock(target, config, &MonotonicClock::new())
}

/// [`run_load`] with an injected time source, so report timing is
/// deterministic under [`wsrc_obs::ManualClock`] (analyzer rule R3).
pub fn run_load_with_clock<T: PortalTarget>(
    target: &T,
    config: &LoadConfig,
    clock: &dyn Clock,
) -> LoadReport {
    run_load_inner(target, config, clock, None)
}

/// [`run_load_with_clock`] with request tracing: every measured request
/// becomes a root span in `tracer` (the load generator is the designated
/// trace root — servers and clients only continue propagated contexts),
/// so the report's tail percentiles are explainable from the tracer's
/// tail-sampled store.
pub fn run_load_traced<T: PortalTarget>(
    target: &T,
    config: &LoadConfig,
    clock: &dyn Clock,
    tracer: &std::sync::Arc<wsrc_obs::Tracer>,
) -> LoadReport {
    run_load_inner(target, config, clock, Some(tracer))
}

/// Per-stage critical-path breakdown of the traces `tracer` retained:
/// self time (span duration minus direct children) summed per stage,
/// descending. Feed it a tracer from [`run_load_traced`] to see where
/// the measured requests actually spent their time.
pub fn critical_path_breakdown(tracer: &std::sync::Arc<wsrc_obs::Tracer>) -> Vec<(String, u64)> {
    wsrc_obs::sampler::stage_breakdown(&tracer.store().recent())
}

fn run_load_inner<T: PortalTarget>(
    target: &T,
    config: &LoadConfig,
    clock: &dyn Clock,
    tracer: Option<&std::sync::Arc<wsrc_obs::Tracer>>,
) -> LoadReport {
    let schedule = QuerySchedule::new(config.hit_ratio, config.hot_queries);
    // Priming phase: hot queries are warmed so the measured phase sees
    // the intended hit ratio (the paper likewise measures after warmup).
    {
        let mut conn = target.connect();
        for q in schedule.prime_queries() {
            let _ = conn.fetch(&q);
        }
    }
    let remaining = AtomicUsize::new(config.requests);
    let completed = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let total_latency_nanos = AtomicU64::new(0);
    // Per-request latencies go into a private log2 histogram so the
    // report can quote p50/p99 without keeping every sample.
    let histograms = MetricsRegistry::new();
    let latency = histograms.histogram("wsrc_load_response_nanos", &[]);
    let start = clock.now_nanos();
    std::thread::scope(|scope| {
        for _ in 0..config.concurrency.max(1) {
            scope.spawn(|| {
                let mut conn = target.connect();
                loop {
                    // Claim one request slot.
                    let prev = remaining.fetch_sub(1, Ordering::SeqCst);
                    if prev == 0 || prev > config.requests {
                        remaining.store(0, Ordering::SeqCst);
                        return;
                    }
                    let query = schedule.next_query();
                    let root = tracer.map(|t| t.root_span("loadgen", "/portal"));
                    let t0 = clock.now_nanos();
                    let outcome = conn.fetch(&query);
                    if let Some(mut root) = root {
                        if outcome.is_err() {
                            root.set_error();
                        }
                        root.finish();
                    }
                    match outcome {
                        Ok(()) => {
                            completed.fetch_add(1, Ordering::SeqCst);
                            let nanos = clock.now_nanos().saturating_sub(t0);
                            total_latency_nanos.fetch_add(nanos, Ordering::SeqCst);
                            latency.record_nanos(nanos);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            });
        }
    });
    let elapsed = Duration::from_nanos(clock.now_nanos().saturating_sub(start));
    let completed = completed.load(Ordering::SeqCst);
    let errors = errors.load(Ordering::SeqCst);
    let mean_response = if completed > 0 {
        Duration::from_nanos(total_latency_nanos.load(Ordering::SeqCst) / completed as u64)
    } else {
        Duration::ZERO
    };
    let snapshot = latency.snapshot();
    LoadReport {
        completed,
        errors,
        elapsed,
        mean_response,
        p50_response: Duration::from_nanos(snapshot.p50_nanos()),
        p99_response: Duration::from_nanos(snapshot.p99_nanos()),
        p999_response: Duration::from_nanos(snapshot.p999_nanos()),
        throughput_rps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::sync::Mutex;

    /// Counts fetches and which queries were repeats.
    struct CountingTarget {
        seen: Arc<Mutex<HashSet<String>>>,
        hits: Arc<AtomicUsize>,
        total: Arc<AtomicUsize>,
    }

    struct CountingConn {
        seen: Arc<Mutex<HashSet<String>>>,
        hits: Arc<AtomicUsize>,
        total: Arc<AtomicUsize>,
    }

    impl PortalConn for CountingConn {
        fn fetch(&mut self, query: &str) -> Result<(), String> {
            self.total.fetch_add(1, Ordering::SeqCst);
            if !self.seen.lock().unwrap().insert(query.to_string()) {
                self.hits.fetch_add(1, Ordering::SeqCst);
            }
            Ok(())
        }
    }

    impl PortalTarget for CountingTarget {
        type Conn = CountingConn;
        fn connect(&self) -> CountingConn {
            CountingConn {
                seen: self.seen.clone(),
                hits: self.hits.clone(),
                total: self.total.clone(),
            }
        }
    }

    fn counting_target() -> CountingTarget {
        CountingTarget {
            seen: Arc::new(Mutex::new(HashSet::new())),
            hits: Arc::new(AtomicUsize::new(0)),
            total: Arc::new(AtomicUsize::new(0)),
        }
    }

    #[test]
    fn schedule_achieves_target_ratio() {
        for ratio in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let target = counting_target();
            let config = LoadConfig {
                concurrency: 1,
                requests: 1000,
                hit_ratio: ratio,
                hot_queries: 8,
            };
            let report = run_load(&target, &config);
            assert_eq!(report.completed, 1000);
            // Measured repeats / measured requests (priming excluded).
            let measured_hits = target.hits.load(Ordering::SeqCst);
            let observed = measured_hits as f64 / 1000.0;
            assert!(
                (observed - ratio).abs() < 0.02,
                "ratio {ratio}: observed {observed}"
            );
        }
    }

    #[test]
    fn concurrency_preserves_the_ratio_and_count() {
        let target = counting_target();
        let config = LoadConfig {
            concurrency: 8,
            requests: 2000,
            hit_ratio: 0.6,
            hot_queries: 8,
        };
        let report = run_load(&target, &config);
        assert_eq!(report.completed, 2000);
        assert_eq!(report.errors, 0);
        let observed = target.hits.load(Ordering::SeqCst) as f64 / 2000.0;
        assert!((observed - 0.6).abs() < 0.03, "observed {observed}");
    }

    #[test]
    fn report_math_is_consistent() {
        let target = counting_target();
        let config = LoadConfig {
            concurrency: 2,
            requests: 100,
            hit_ratio: 0.5,
            hot_queries: 4,
        };
        let report = run_load(&target, &config);
        assert!(report.throughput_rps > 0.0);
        assert!(report.elapsed > Duration::ZERO);
        assert!(report.mean_response <= report.elapsed);
    }

    #[test]
    fn errors_are_counted_separately() {
        struct FailingTarget;
        struct FailingConn(usize);
        impl PortalConn for FailingConn {
            fn fetch(&mut self, _q: &str) -> Result<(), String> {
                self.0 += 1;
                if self.0.is_multiple_of(2) {
                    Err("boom".into())
                } else {
                    Ok(())
                }
            }
        }
        impl PortalTarget for FailingTarget {
            type Conn = FailingConn;
            fn connect(&self) -> FailingConn {
                FailingConn(0)
            }
        }
        let report = run_load(
            &FailingTarget,
            &LoadConfig {
                concurrency: 1,
                requests: 100,
                hit_ratio: 0.0,
                hot_queries: 1,
            },
        );
        assert_eq!(report.completed + report.errors, 100);
        assert!(report.errors > 0);
    }

    #[test]
    fn manual_clock_makes_report_timing_deterministic() {
        use wsrc_obs::ManualClock;
        struct TickingTarget {
            clock: ManualClock,
        }
        struct TickingConn {
            clock: ManualClock,
        }
        impl PortalConn for TickingConn {
            fn fetch(&mut self, _q: &str) -> Result<(), String> {
                // Every fetch "takes" exactly 2ms of fake time.
                self.clock.advance_millis(2);
                Ok(())
            }
        }
        impl PortalTarget for TickingTarget {
            type Conn = TickingConn;
            fn connect(&self) -> TickingConn {
                TickingConn {
                    clock: self.clock.handle(),
                }
            }
        }
        let clock = ManualClock::new();
        let target = TickingTarget {
            clock: clock.handle(),
        };
        let config = LoadConfig {
            concurrency: 1,
            requests: 10,
            hit_ratio: 0.0,
            hot_queries: 1,
        };
        let report = run_load_with_clock(&target, &config, &clock);
        assert_eq!(report.completed, 10);
        // Priming (1 hot query) happens before the measured window, so
        // the window is exactly 10 fetches × 2ms.
        assert_eq!(report.elapsed, Duration::from_millis(20));
        assert_eq!(report.mean_response, Duration::from_millis(2));
        // 2ms falls in the log2 bucket with upper bound 2^21 ns; every
        // sample is identical so p50 == p99.
        assert_eq!(report.p50_response, Duration::from_nanos(1 << 21));
        assert_eq!(report.p99_response, report.p50_response);
        assert_eq!(report.p999_response, report.p50_response);
        assert!((report.throughput_rps - 500.0).abs() < 1e-6);
    }

    #[test]
    fn traced_runs_root_every_request_and_break_down_stages() {
        use wsrc_obs::ManualClock;
        struct PlainTarget;
        struct PlainConn;
        impl PortalConn for PlainConn {
            fn fetch(&mut self, _q: &str) -> Result<(), String> {
                // A traced fetch contributes a child stage span, the way
                // the real portal's client middleware does.
                if let Some(span) = wsrc_obs::trace::child_span("fetch", "transfer") {
                    span.finish();
                }
                Ok(())
            }
        }
        impl PortalTarget for PlainTarget {
            type Conn = PlainConn;
            fn connect(&self) -> PlainConn {
                PlainConn
            }
        }
        let clock = ManualClock::new();
        let tracer = wsrc_obs::Tracer::new(Arc::new(clock.handle()));
        let config = LoadConfig {
            concurrency: 2,
            requests: 20,
            hit_ratio: 0.0,
            hot_queries: 1,
        };
        let report = run_load_traced(&PlainTarget, &config, &clock, &tracer);
        assert_eq!(report.completed, 20);
        // Every request rooted a trace; the tail-sampling store retained
        // at least the slowest-N for the route.
        let recent = tracer.store().recent();
        assert!(!recent.is_empty(), "traced load retains traces");
        assert!(recent.iter().all(|t| t.route == "/portal"));
        assert!(recent
            .iter()
            .all(|t| t.spans.iter().any(|s| s.stage == "transfer")));
        let breakdown = critical_path_breakdown(&tracer);
        assert!(
            breakdown.iter().any(|(stage, _)| stage == "root")
                || breakdown.iter().any(|(stage, _)| stage == "transfer"),
            "breakdown covers recorded stages: {breakdown:?}"
        );
    }

    #[test]
    fn zero_ratio_never_repeats_and_full_ratio_always_repeats() {
        let s = QuerySchedule::new(0.0, 4);
        for _ in 0..100 {
            assert!(s.next_query().starts_with("unique-"));
        }
        let s = QuerySchedule::new(1.0, 4);
        for _ in 0..100 {
            assert!(s.next_query().starts_with("hot-"));
        }
    }
}

//! The introduction's full portal: one page aggregating *three* back-end
//! Web services (search, stock quotes, news), each behind its own
//! caching client with its own TTL policy.

use std::sync::Arc;
use wsrc_client::ServiceClient;
use wsrc_http::{Handler, Method, Request, Response, Status};
use wsrc_model::Value;
use wsrc_services::{google, news, stock};
use wsrc_soap::rpc::RpcRequest;

/// The aggregating portal. `GET /home?q=<query>&symbols=<s1,s2>&topic=<t>`
/// renders a page with search results, a ticker and headlines.
pub struct MultiPortal {
    search: Arc<ServiceClient>,
    quotes: Arc<ServiceClient>,
    headlines: Arc<ServiceClient>,
}

impl std::fmt::Debug for MultiPortal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MultiPortal(search, quotes, headlines)")
    }
}

impl MultiPortal {
    /// Creates the portal over three configured clients.
    pub fn new(
        search: Arc<ServiceClient>,
        quotes: Arc<ServiceClient>,
        headlines: Arc<ServiceClient>,
    ) -> Self {
        MultiPortal {
            search,
            quotes,
            headlines,
        }
    }

    /// The three clients, for inspecting cache stats.
    pub fn clients(&self) -> [&Arc<ServiceClient>; 3] {
        [&self.search, &self.quotes, &self.headlines]
    }

    fn param<'r>(request: &'r Request, name: &str) -> Option<&'r str> {
        let query = request.target.split_once('?')?.1;
        query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }

    fn section_search(&self, q: &str, html: &mut String) -> Result<(), String> {
        let request = RpcRequest::new(google::NAMESPACE, "doGoogleSearch")
            .with_param("key", "portal")
            .with_param("q", q)
            .with_param("start", 0)
            .with_param("maxResults", 5)
            .with_param("filter", true)
            .with_param("restrict", "")
            .with_param("safeSearch", false)
            .with_param("lr", "")
            .with_param("ie", "utf-8")
            .with_param("oe", "utf-8");
        let (result, _) = self.search.invoke(&request).map_err(|e| e.to_string())?;
        html.push_str("<section id=\"search\"><h2>Search</h2><ul>");
        if let Some(elements) = result
            .as_value()
            .as_struct()
            .and_then(|s| s.get("resultElements"))
            .and_then(Value::as_array)
        {
            for e in elements {
                let title = e
                    .as_struct()
                    .and_then(|s| s.get("title"))
                    .and_then(Value::as_str)
                    .unwrap_or("(untitled)");
                html.push_str(&format!(
                    "<li>{}</li>",
                    wsrc_xml::escape::escape_text(title)
                ));
            }
        }
        html.push_str("</ul></section>");
        Ok(())
    }

    fn section_quotes(&self, symbols: &str, html: &mut String) -> Result<(), String> {
        let request = RpcRequest::new(stock::NAMESPACE, "getQuotes").with_param("symbols", symbols);
        let (result, _) = self.quotes.invoke(&request).map_err(|e| e.to_string())?;
        html.push_str("<section id=\"ticker\"><h2>Quotes</h2><table>");
        if let Some(quotes) = result.as_value().as_array() {
            for q in quotes {
                let Some(q) = q.as_struct() else { continue };
                html.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td></tr>",
                    q.get("symbol").and_then(Value::as_str).unwrap_or("?"),
                    q.get("price").and_then(Value::as_double).unwrap_or(0.0),
                    q.get("change").and_then(Value::as_double).unwrap_or(0.0),
                ));
            }
        }
        html.push_str("</table></section>");
        Ok(())
    }

    fn section_news(&self, topic: &str, html: &mut String) -> Result<(), String> {
        let request = RpcRequest::new(news::NAMESPACE, "getHeadlines")
            .with_param("topic", topic)
            .with_param("max", 5);
        let (result, _) = self.headlines.invoke(&request).map_err(|e| e.to_string())?;
        html.push_str("<section id=\"news\"><h2>News</h2><ul>");
        if let Some(items) = result.as_value().as_array() {
            for h in items {
                let Some(h) = h.as_struct() else { continue };
                html.push_str(&format!(
                    "<li>{} <em>({})</em></li>",
                    wsrc_xml::escape::escape_text(
                        h.get("title").and_then(Value::as_str).unwrap_or("")
                    ),
                    h.get("source").and_then(Value::as_str).unwrap_or("?"),
                ));
            }
        }
        html.push_str("</ul></section>");
        Ok(())
    }
}

impl Handler for MultiPortal {
    fn handle(&self, request: &Request) -> Response {
        if request.method != Method::Get {
            return Response::error(Status::METHOD_NOT_ALLOWED, "GET only");
        }
        let q = Self::param(request, "q").unwrap_or("web services");
        let symbols = Self::param(request, "symbols").unwrap_or("ibm,sun");
        let topic = Self::param(request, "topic").unwrap_or("technology");
        let mut html = String::with_capacity(4096);
        html.push_str("<html><head><title>Portal</title></head><body><h1>My portal</h1>");
        let sections = [
            self.section_search(q, &mut html),
            self.section_quotes(symbols, &mut html),
            self.section_news(topic, &mut html),
        ];
        html.push_str("</body></html>");
        for r in &sections {
            if let Err(e) = r {
                return Response::error(
                    Status::INTERNAL_SERVER_ERROR,
                    &format!("backend error: {e}"),
                );
            }
        }
        Response::ok("text/html; charset=utf-8", html.into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrc_cache::{KeyStrategy, ResponseCache};
    use wsrc_http::{InProcTransport, Url};
    use wsrc_services::google::GoogleService;
    use wsrc_services::news::NewsService;
    use wsrc_services::stock::StockQuoteService;
    use wsrc_services::SoapDispatcher;

    fn portal() -> MultiPortal {
        let dispatcher = Arc::new(
            SoapDispatcher::new()
                .mount(google::PATH, Arc::new(GoogleService::new()))
                .mount(stock::PATH, Arc::new(StockQuoteService::new()))
                .mount(news::PATH, Arc::new(NewsService::new())),
        );
        let make_client = |path: &str,
                           registry: wsrc_model::TypeRegistry,
                           ops: Vec<wsrc_soap::OperationDescriptor>,
                           policy: wsrc_cache::CachePolicy| {
            let cache = Arc::new(
                ResponseCache::builder(registry.clone())
                    .policy(policy)
                    .key_strategy(KeyStrategy::ToString)
                    .build(),
            );
            Arc::new(
                ServiceClient::builder(
                    Url::new("backend.test", 80, path),
                    Arc::new(InProcTransport::new(dispatcher.clone())),
                )
                .registry(registry)
                .operations(ops)
                .cache(cache)
                .build(),
            )
        };
        MultiPortal::new(
            make_client(
                google::PATH,
                google::registry(),
                google::operations(),
                google::default_policy(),
            ),
            make_client(
                stock::PATH,
                stock::registry(),
                stock::operations(),
                stock::default_policy(),
            ),
            make_client(
                news::PATH,
                news::registry(),
                news::operations(),
                news::default_policy(),
            ),
        )
    }

    #[test]
    fn page_aggregates_all_three_services() {
        let p = portal();
        let resp = p.handle(&Request::get(
            "/home?q=caching&symbols=ibm,sun&topic=middleware",
        ));
        assert_eq!(resp.status, Status::OK);
        let html = resp
            .body_text()
            .expect("portal pages are utf-8")
            .to_string();
        assert!(html.contains("<section id=\"search\">"), "{html}");
        assert!(html.contains("<section id=\"ticker\">"));
        assert!(html.contains("<section id=\"news\">"));
        assert!(html.contains("IBM"));
        assert!(html.contains("middleware "));
    }

    #[test]
    fn each_backend_has_its_own_cache() {
        let p = portal();
        p.handle(&Request::get("/home?q=a&symbols=ibm&topic=t"));
        p.handle(&Request::get("/home?q=a&symbols=ibm&topic=t"));
        for client in p.clients() {
            let stats = client.cache().unwrap().stats();
            assert_eq!(stats.hits, 1, "{client:?}");
            assert_eq!(stats.misses, 1, "{client:?}");
        }
    }

    #[test]
    fn defaults_apply_when_params_missing() {
        let p = portal();
        let resp = p.handle(&Request::get("/home"));
        assert_eq!(resp.status, Status::OK);
        assert!(resp
            .body_text()
            .expect("portal pages are utf-8")
            .contains("IBM"));
    }

    #[test]
    fn post_is_rejected() {
        let p = portal();
        assert_eq!(
            p.handle(&Request::post("/home", "text/plain", vec![]))
                .status,
            Status::METHOD_NOT_ALLOWED
        );
    }
}

//! Wires the full portal scenario (Figure 2 of the paper): load simulator
//! → portal site → caching client middleware → dummy Google back-end.

use crate::loadgen::{run_load, LoadConfig, LoadReport, PortalConn, PortalTarget};
use crate::site::PortalSite;
use std::sync::Arc;
use std::time::Duration;
use wsrc_cache::{FixedSelector, KeyStrategy, ResponseCache, ValueRepresentation};
use wsrc_client::ServiceClient;
use wsrc_http::{
    Handler, HttpClient, InProcTransport, PoolConfig, Request, Server, Status, TcpTransport,
    Transport, Url,
};
use wsrc_services::google::{self, GoogleService};
use wsrc_services::SoapDispatcher;

/// Whether the scenario runs over real TCP sockets or in-process
/// dispatch (same code path above the transport; in-process is the
/// deterministic default for benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Loadgen→portal and portal→backend are direct calls.
    InProcess,
    /// Both legs cross real loopback TCP connections.
    Tcp,
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// The cache-value representation under test (one Figure 3/4 series).
    pub representation: ValueRepresentation,
    /// Target cache-hit ratio in `[0, 1]` (the Figure 3/4 x-axis).
    pub hit_ratio: f64,
    /// Closed-loop workers (1 for Figure 3, 25 for Figure 4).
    pub concurrency: usize,
    /// Measured requests.
    pub requests: usize,
    /// Transport mode.
    pub transport: TransportMode,
    /// Extra latency injected per back-end call (simulating the LAN
    /// between portal and service provider; only applied in-process —
    /// TCP mode has real network latency).
    pub backend_latency: Duration,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            representation: ValueRepresentation::XmlMessage,
            hit_ratio: 0.5,
            concurrency: 1,
            requests: 1000,
            transport: TransportMode::InProcess,
            backend_latency: Duration::ZERO,
        }
    }
}

/// What one scenario run measured.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioResult {
    /// The load report (throughput, mean response time).
    pub load: LoadReport,
    /// Hit ratio the cache actually observed.
    pub observed_hit_ratio: f64,
    /// Requests that reached the back-end service.
    pub backend_requests: u64,
}

/// Runs one (representation, hit-ratio, concurrency) point.
///
/// The paper: "We used the toString method approach for cache key
/// generation. We then compared each cache approach for cached data
/// retrieval and artificially changed the cache-hit ratio from 0% to
/// 100%."
pub fn run_portal_scenario(config: &ScenarioConfig) -> ScenarioResult {
    // --- back-end: the dummy Google service ---
    let dispatcher: Arc<dyn Handler> =
        Arc::new(SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new())));

    // Keep the TCP back-end server alive for the duration of the run.
    let mut backend_server = None;
    let mut backend_inproc = None;
    let backend_transport: Arc<dyn Transport> = match config.transport {
        TransportMode::InProcess => {
            let inproc = Arc::new(InProcTransport::new(dispatcher));
            backend_inproc = Some(inproc.clone());
            if config.backend_latency > Duration::ZERO {
                Arc::new(wsrc_http::LatencyTransport::new(
                    ArcTransport(inproc),
                    config.backend_latency,
                ))
            } else {
                inproc
            }
        }
        TransportMode::Tcp => {
            let server = Server::bind("127.0.0.1:0", dispatcher).expect("bind backend");
            backend_server = Some(server);
            Arc::new(TcpTransport::new())
        }
    };
    let backend_url = match &backend_server {
        Some(s) => Url::new("127.0.0.1", s.port(), google::PATH),
        None => Url::new("backend.test", 80, google::PATH),
    };

    // --- client middleware with the representation under test ---
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(google::default_policy())
            .key_strategy(KeyStrategy::ToString)
            .selector(FixedSelector(config.representation))
            .build(),
    );
    let client = Arc::new(
        ServiceClient::builder(backend_url, backend_transport)
            .registry(google::registry())
            .operations(google::operations())
            .cache(cache.clone())
            .build(),
    );

    // --- the portal site ---
    let portal = Arc::new(PortalSite::new(client));
    let load_config = LoadConfig {
        concurrency: config.concurrency,
        requests: config.requests,
        hit_ratio: config.hit_ratio,
        hot_queries: 8,
    };
    let load = match config.transport {
        TransportMode::InProcess => {
            let target = InProcPortal {
                portal: portal.clone(),
            };
            run_load(&target, &load_config)
        }
        TransportMode::Tcp => {
            let server = Server::bind("127.0.0.1:0", portal.clone() as Arc<dyn Handler>)
                .expect("bind portal");
            let pool = PoolConfig {
                max_per_authority: config.concurrency.max(1),
                ..PoolConfig::default()
            };
            let target = TcpPortal {
                url: Url::new("127.0.0.1", server.port(), "/portal"),
                client: Arc::new(HttpClient::with_pool(pool)),
            };
            let report = run_load(&target, &load_config);
            drop(server);
            report
        }
    };
    let stats = cache.stats();
    let backend_requests = backend_inproc
        .map(|t| t.requests_served())
        .or_else(|| backend_server.as_ref().map(|s| s.requests_served()))
        .unwrap_or(0);
    ScenarioResult {
        load,
        observed_hit_ratio: stats.hit_ratio(),
        backend_requests,
    }
}

/// Sweeps hit ratios for one representation (one figure series).
pub fn sweep_hit_ratios(base: &ScenarioConfig, ratios: &[f64]) -> Vec<(f64, ScenarioResult)> {
    ratios
        .iter()
        .map(|&r| {
            let config = ScenarioConfig {
                hit_ratio: r,
                ..*base
            };
            (r, run_portal_scenario(&config))
        })
        .collect()
}

/// Adapter: `Arc<InProcTransport>` as an owned `Transport` for wrapping.
struct ArcTransport(Arc<InProcTransport>);

impl Transport for ArcTransport {
    fn execute(
        &self,
        url: &Url,
        request: &Request,
    ) -> Result<wsrc_http::Response, wsrc_http::HttpError> {
        self.0.execute(url, request)
    }
}

struct InProcPortal {
    portal: Arc<PortalSite>,
}

struct InProcConn {
    portal: Arc<PortalSite>,
}

impl PortalConn for InProcConn {
    fn fetch(&mut self, query: &str) -> Result<(), String> {
        let response = self
            .portal
            .handle(&Request::get(format!("/portal?q={query}")));
        if response.status == Status::OK {
            Ok(())
        } else {
            Err(format!("portal returned {}", response.status))
        }
    }
}

impl PortalTarget for InProcPortal {
    type Conn = InProcConn;
    fn connect(&self) -> InProcConn {
        InProcConn {
            portal: self.portal.clone(),
        }
    }
}

struct TcpPortal {
    url: Url,
    /// One pooled client shared by every load-generator connection, so
    /// the generator exercises (and benefits from) the client-side
    /// connection pool instead of dialing a socket per worker.
    client: Arc<HttpClient>,
}

struct TcpConn {
    client: Arc<HttpClient>,
    url: Url,
}

impl PortalConn for TcpConn {
    fn fetch(&mut self, query: &str) -> Result<(), String> {
        let url = self.url.with_path(format!("/portal?q={query}"));
        match self.client.get(&url) {
            Ok(resp) if resp.status == Status::OK => Ok(()),
            Ok(resp) => Err(format!("portal returned {}", resp.status)),
            Err(e) => Err(e.to_string()),
        }
    }
}

impl PortalTarget for TcpPortal {
    type Conn = TcpConn;
    fn connect(&self) -> TcpConn {
        TcpConn {
            client: self.client.clone(),
            url: self.url.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(repr: ValueRepresentation, ratio: f64, concurrency: usize) -> ScenarioResult {
        run_portal_scenario(&ScenarioConfig {
            representation: repr,
            hit_ratio: ratio,
            concurrency,
            requests: 300,
            transport: TransportMode::InProcess,
            backend_latency: Duration::ZERO,
        })
    }

    #[test]
    fn observed_hit_ratio_tracks_target() {
        for target in [0.0, 0.5, 1.0] {
            let result = quick(ValueRepresentation::XmlMessage, target, 1);
            assert!(
                (result.observed_hit_ratio - target).abs() < 0.05,
                "target {target}, observed {}",
                result.observed_hit_ratio
            );
        }
    }

    #[test]
    fn full_hit_ratio_stops_backend_traffic() {
        let result = quick(ValueRepresentation::CloneCopy, 1.0, 1);
        // Only the priming requests reach the backend.
        assert!(
            result.backend_requests <= 16,
            "backend saw {} requests",
            result.backend_requests
        );
        assert_eq!(result.load.errors, 0);
    }

    #[test]
    fn zero_hit_ratio_sends_everything_to_backend() {
        let result = quick(ValueRepresentation::CloneCopy, 0.0, 1);
        assert!(
            result.backend_requests >= 300,
            "backend saw only {} requests",
            result.backend_requests
        );
        assert_eq!(result.load.completed, 300);
    }

    #[test]
    fn every_representation_completes_under_concurrency() {
        for repr in ValueRepresentation::ALL {
            let result = quick(repr, 0.5, 4);
            assert_eq!(result.load.errors, 0, "{repr}");
            assert_eq!(result.load.completed, 300, "{repr}");
        }
    }

    #[test]
    fn tcp_mode_works_end_to_end() {
        let result = run_portal_scenario(&ScenarioConfig {
            representation: ValueRepresentation::SaxEvents,
            hit_ratio: 0.5,
            concurrency: 2,
            requests: 100,
            transport: TransportMode::Tcp,
            backend_latency: Duration::ZERO,
        });
        assert_eq!(result.load.errors, 0);
        assert_eq!(result.load.completed, 100);
        assert!((result.observed_hit_ratio - 0.5).abs() < 0.1);
    }

    #[test]
    fn sweep_produces_one_result_per_ratio() {
        let base = ScenarioConfig {
            requests: 60,
            ..ScenarioConfig::default()
        };
        let points = sweep_hit_ratios(&base, &[0.0, 0.5, 1.0]);
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|(_, r)| r.load.completed == 60));
    }
}

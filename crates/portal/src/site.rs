//! The portal web site: an HTTP handler whose pages are built from
//! back-end Web service results fetched through the caching client.

use std::sync::Arc;
use wsrc_client::ServiceClient;
use wsrc_http::{Handler, Method, Request, Response, Status};
use wsrc_model::Value;
use wsrc_services::google;
use wsrc_soap::rpc::RpcRequest;

/// The portal site handler. `GET /portal?q=<query>` renders an HTML page
/// of search results obtained via `doGoogleSearch` on the back-end.
pub struct PortalSite {
    client: Arc<ServiceClient>,
}

impl std::fmt::Debug for PortalSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PortalSite(backend={})", self.client.endpoint_url())
    }
}

impl PortalSite {
    /// Creates the portal over a configured (usually caching) client.
    pub fn new(client: Arc<ServiceClient>) -> Self {
        PortalSite { client }
    }

    /// The backing client (for inspecting cache statistics in tests).
    pub fn client(&self) -> &Arc<ServiceClient> {
        &self.client
    }

    fn search_request(query: &str) -> RpcRequest {
        RpcRequest::new(google::NAMESPACE, "doGoogleSearch")
            .with_param("key", "demo-key")
            .with_param("q", query)
            .with_param("start", 0)
            .with_param("maxResults", 10)
            .with_param("filter", true)
            .with_param("restrict", "")
            .with_param("safeSearch", false)
            .with_param("lr", "")
            .with_param("ie", "utf-8")
            .with_param("oe", "utf-8")
    }

    fn render(query: &str, result: &Value) -> String {
        let mut html = String::with_capacity(4096);
        html.push_str("<html><head><title>Portal search</title></head><body>");
        html.push_str(&format!(
            "<h1>Results for {}</h1>",
            wsrc_xml::escape::escape_text(query)
        ));
        let Some(s) = result.as_struct() else {
            html.push_str("<p>no results</p></body></html>");
            return html;
        };
        let estimated = s
            .get("estimatedTotalResultsCount")
            .and_then(Value::as_int)
            .unwrap_or(0);
        let time = s
            .get("searchTime")
            .and_then(Value::as_double)
            .unwrap_or(0.0);
        html.push_str(&format!(
            "<p>about {estimated} results ({time:.6}s)</p><ol>"
        ));
        if let Some(elements) = s.get("resultElements").and_then(Value::as_array) {
            for e in elements {
                let Some(e) = e.as_struct() else { continue };
                let url = e.get("URL").and_then(Value::as_str).unwrap_or("#");
                let title = e
                    .get("title")
                    .and_then(Value::as_str)
                    .unwrap_or("(untitled)");
                let snippet = e.get("snippet").and_then(Value::as_str).unwrap_or("");
                html.push_str(&format!(
                    "<li><a href=\"{}\">{}</a><br/>{}</li>",
                    wsrc_xml::escape::escape_attribute(url),
                    wsrc_xml::escape::escape_text(title),
                    snippet // snippet already carries markup from the service
                ));
            }
        }
        html.push_str("</ol></body></html>");
        html
    }
}

impl Handler for PortalSite {
    fn handle(&self, request: &Request) -> Response {
        if request.method != Method::Get {
            return Response::error(Status::METHOD_NOT_ALLOWED, "GET only");
        }
        let query = request
            .target
            .split_once("q=")
            .map(|(_, q)| q.split('&').next().unwrap_or(q))
            .unwrap_or("");
        if query.is_empty() {
            return Response::error(Status::BAD_REQUEST, "missing q parameter");
        }
        match self.client.invoke(&Self::search_request(query)) {
            Ok((handle, _disposition)) => {
                let html = Self::render(query, handle.as_value());
                Response::ok("text/html; charset=utf-8", html.into_bytes())
            }
            Err(e) => Response::error(
                Status::INTERNAL_SERVER_ERROR,
                &format!("backend error: {e}"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrc_cache::{KeyStrategy, ResponseCache};
    use wsrc_http::{InProcTransport, Url};
    use wsrc_services::google::GoogleService;
    use wsrc_services::SoapDispatcher;

    fn portal() -> PortalSite {
        let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
        let transport = Arc::new(InProcTransport::new(Arc::new(dispatcher)));
        let cache = Arc::new(
            ResponseCache::builder(google::registry())
                .policy(google::default_policy())
                .key_strategy(KeyStrategy::ToString)
                .build(),
        );
        let client = Arc::new(
            ServiceClient::builder(Url::new("backend.test", 80, google::PATH), transport)
                .registry(google::registry())
                .operations(google::operations())
                .cache(cache)
                .build(),
        );
        PortalSite::new(client)
    }

    #[test]
    fn renders_search_results() {
        let p = portal();
        let resp = p.handle(&Request::get("/portal?q=rust+caching"));
        assert_eq!(resp.status, Status::OK);
        let html = resp
            .body_text()
            .expect("portal pages are utf-8")
            .to_string();
        assert!(html.contains("<h1>Results for rust+caching</h1>"), "{html}");
        assert!(html.matches("<li>").count() == 10, "ten result items");
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let p = portal();
        p.handle(&Request::get("/portal?q=same"));
        p.handle(&Request::get("/portal?q=same"));
        let stats = p.client().cache().unwrap().stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn identical_html_from_hit_and_miss() {
        let p = portal();
        let first = p.handle(&Request::get("/portal?q=abc"));
        let second = p.handle(&Request::get("/portal?q=abc"));
        assert_eq!(first.body, second.body, "cache must be transparent");
    }

    #[test]
    fn bad_requests_are_rejected() {
        let p = portal();
        assert_eq!(
            p.handle(&Request::get("/portal")).status,
            Status::BAD_REQUEST
        );
        assert_eq!(
            p.handle(&Request::post("/portal?q=x", "text/plain", vec![]))
                .status,
            Status::METHOD_NOT_ALLOWED
        );
    }

    #[test]
    fn query_extraction_handles_extra_params() {
        let p = portal();
        let resp = p.handle(&Request::get("/portal?q=zig&page=2"));
        assert!(resp
            .body_text()
            .expect("portal pages are utf-8")
            .contains("Results for zig"));
    }
}

//! The dummy Amazon Web service — paper Table 1's operation inventory.
//!
//! Twenty search operations (cacheable) and six shopping-cart operations
//! (uncacheable, because they read or mutate per-cart server state). The
//! cart operations are genuinely stateful here, so tests can demonstrate
//! why caching them would be wrong.

use crate::dispatch::SoapService;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;
use wsrc_cache::policy::{CachePolicy, OperationPolicy};
use wsrc_model::typeinfo::{FieldDescriptor, FieldType, TypeDescriptor, TypeRegistry};
use wsrc_model::value::{StructValue, Value};
use wsrc_soap::rpc::{OperationDescriptor, RpcRequest};
use wsrc_soap::SoapFault;

/// The service namespace.
pub const NAMESPACE: &str = "urn:AmazonSearch";
/// Conventional mount path on the dispatcher.
pub const PATH: &str = "/soap/amazon";

/// The 20 search operations of paper Table 1 (upper part).
pub const SEARCH_OPERATIONS: [&str; 20] = [
    "KeywordSearch",
    "TextStreamSearch",
    "PowerSearch",
    "BrowseNodeSearch",
    "AsinSearch",
    "BlendedSearch",
    "UpcSearch",
    "SkuSearch",
    "AuthorSearch",
    "ArtistSearch",
    "ActorSearch",
    "ManufacturerSearch",
    "DirectorSearch",
    "ListManiaSearch",
    "WishlistSearch",
    "ExchangeSearch",
    "MarketplaceSearch",
    "SellerProfileSearch",
    "SellerSearch",
    "SimilaritySearch",
];

/// The 6 shopping-cart operations of paper Table 1 (lower part).
pub const CART_OPERATIONS: [&str; 6] = [
    "GetShoppingCart",
    "ClearShoppingCart",
    "AddShoppingCartItems",
    "RemoveShoppingCartItems",
    "ModifyShoppingCartItems",
    "GetTransactionDetails",
];

/// The registry for Amazon responses.
pub fn registry() -> TypeRegistry {
    TypeRegistry::builder()
        .register(TypeDescriptor::new(
            "ProductInfo",
            vec![
                FieldDescriptor::new("asin", FieldType::String),
                FieldDescriptor::new("productName", FieldType::String),
                FieldDescriptor::new("ourPrice", FieldType::String),
            ],
        ))
        .register(TypeDescriptor::new(
            "SearchResultPage",
            vec![
                FieldDescriptor::new("totalResults", FieldType::Int),
                FieldDescriptor::new(
                    "details",
                    FieldType::ArrayOf(Box::new(FieldType::Struct("ProductInfo".into()))),
                ),
            ],
        ))
        .register(TypeDescriptor::new(
            "ShoppingCart",
            vec![
                FieldDescriptor::new("cartId", FieldType::String),
                FieldDescriptor::new("items", FieldType::ArrayOf(Box::new(FieldType::String))),
            ],
        ))
        .build()
}

/// Operation descriptors for all 26 operations.
pub fn operations() -> Vec<OperationDescriptor> {
    let mut ops: Vec<OperationDescriptor> = SEARCH_OPERATIONS
        .iter()
        .map(|name| {
            OperationDescriptor::new(
                NAMESPACE,
                *name,
                vec![
                    FieldDescriptor::new("keyword", FieldType::String),
                    FieldDescriptor::new("page", FieldType::Int),
                ],
                FieldType::Struct("SearchResultPage".into()),
            )
        })
        .collect();
    for name in CART_OPERATIONS {
        let mut params = vec![FieldDescriptor::new("cartId", FieldType::String)];
        if name.contains("Items") {
            params.push(FieldDescriptor::new("item", FieldType::String));
        }
        ops.push(OperationDescriptor::new(
            NAMESPACE,
            name,
            params,
            FieldType::Struct("ShoppingCart".into()),
        ));
    }
    ops
}

/// The paper's suggested policy: "20 search operations … are cacheable
/// and the 6 shopping cart operations … are uncacheable" (§3.2).
pub fn default_policy() -> CachePolicy {
    let mut policy = CachePolicy::new();
    for op in SEARCH_OPERATIONS {
        policy.set(op, OperationPolicy::cacheable(Duration::from_secs(3600)));
    }
    for op in CART_OPERATIONS {
        policy.set(op, OperationPolicy::uncacheable());
    }
    policy
}

/// The dummy Amazon service: deterministic searches, stateful carts.
#[derive(Debug, Default)]
pub struct AmazonService {
    carts: Mutex<HashMap<String, Vec<String>>>,
}

impl AmazonService {
    /// A fresh service with no carts.
    pub fn new() -> Self {
        AmazonService::default()
    }

    fn search(&self, operation: &str, keyword: &str, page: i32) -> Value {
        // Deterministic page of 5 products derived from the inputs.
        let mut details = Vec::with_capacity(5);
        for i in 0..5 {
            let asin = stable_hash(&format!("{operation}|{keyword}|{page}|{i}"));
            details.push(Value::Struct(
                StructValue::new("ProductInfo")
                    .with("asin", format!("B{asin:010}"))
                    .with(
                        "productName",
                        format!("{keyword} ({operation} result {})", page * 5 + i),
                    )
                    .with("ourPrice", format!("${}.{:02}", 5 + asin % 95, asin % 100)),
            ));
        }
        Value::Struct(
            StructValue::new("SearchResultPage")
                .with("totalResults", 500 + (stable_hash(keyword) % 10_000) as i32)
                .with("details", Value::Array(details)),
        )
    }

    fn cart_value(&self, cart_id: &str, items: &[String]) -> Value {
        Value::Struct(
            StructValue::new("ShoppingCart")
                .with("cartId", cart_id)
                .with(
                    "items",
                    Value::Array(items.iter().map(Value::string).collect()),
                ),
        )
    }
}

fn stable_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h % 1_000_000_007
}

impl SoapService for AmazonService {
    fn namespace(&self) -> &str {
        NAMESPACE
    }

    fn operations(&self) -> Vec<OperationDescriptor> {
        operations()
    }

    fn registry(&self) -> TypeRegistry {
        registry()
    }

    fn call(&self, request: &RpcRequest) -> Result<Value, SoapFault> {
        let op = request.operation.as_str();
        if SEARCH_OPERATIONS.contains(&op) {
            let keyword = request
                .param("keyword")
                .and_then(Value::as_str)
                .ok_or_else(|| SoapFault::client("missing 'keyword'"))?;
            let page = request.param("page").and_then(Value::as_int).unwrap_or(1);
            return Ok(self.search(op, keyword, page));
        }
        let cart_id = request
            .param("cartId")
            .and_then(Value::as_str)
            .ok_or_else(|| SoapFault::client("missing 'cartId'"))?
            .to_string();
        let item = request
            .param("item")
            .and_then(Value::as_str)
            .map(str::to_string);
        let mut carts = self.carts.lock().unwrap();
        let items = carts.entry(cart_id.clone()).or_default();
        match op {
            "GetShoppingCart" | "GetTransactionDetails" => {}
            "ClearShoppingCart" => items.clear(),
            "AddShoppingCartItems" => {
                items.push(item.ok_or_else(|| SoapFault::client("missing 'item'"))?);
            }
            "RemoveShoppingCartItems" => {
                let target = item.ok_or_else(|| SoapFault::client("missing 'item'"))?;
                items.retain(|i| *i != target);
            }
            "ModifyShoppingCartItems" => {
                let target = item.ok_or_else(|| SoapFault::client("missing 'item'"))?;
                if let Some(first) = items.first_mut() {
                    *first = target;
                }
            }
            other => return Err(SoapFault::client(format!("unknown operation '{other}'"))),
        }
        let snapshot = items.clone();
        drop(carts);
        Ok(self.cart_value(&cart_id, &snapshot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn search_req(op: &str, kw: &str) -> RpcRequest {
        RpcRequest::new(NAMESPACE, op)
            .with_param("keyword", kw)
            .with_param("page", 1)
    }

    fn cart_req(op: &str, cart: &str, item: Option<&str>) -> RpcRequest {
        let mut r = RpcRequest::new(NAMESPACE, op).with_param("cartId", cart);
        if let Some(i) = item {
            r = r.with_param("item", i);
        }
        r
    }

    #[test]
    fn table1_inventory_is_complete() {
        assert_eq!(SEARCH_OPERATIONS.len(), 20);
        assert_eq!(CART_OPERATIONS.len(), 6);
        assert_eq!(operations().len(), 26);
    }

    #[test]
    fn default_policy_splits_as_the_paper_suggests() {
        let p = default_policy();
        for op in SEARCH_OPERATIONS {
            assert!(p.for_operation(op).cacheable, "{op} should be cacheable");
        }
        for op in CART_OPERATIONS {
            assert!(!p.for_operation(op).cacheable, "{op} should be uncacheable");
        }
    }

    #[test]
    fn searches_are_deterministic_and_distinct() {
        let svc = AmazonService::new();
        let a = svc.call(&search_req("KeywordSearch", "rust")).unwrap();
        let b = svc.call(&search_req("KeywordSearch", "rust")).unwrap();
        assert_eq!(a, b);
        let c = svc.call(&search_req("KeywordSearch", "java")).unwrap();
        assert_ne!(a, c);
        let d = svc.call(&search_req("AuthorSearch", "rust")).unwrap();
        assert_ne!(a, d, "same keyword, different operation");
    }

    #[test]
    fn every_search_operation_answers() {
        let svc = AmazonService::new();
        for op in SEARCH_OPERATIONS {
            let v = svc.call(&search_req(op, "x")).unwrap();
            let page = v.as_struct().unwrap();
            assert_eq!(page.type_name(), "SearchResultPage");
            assert_eq!(page.get("details").unwrap().as_array().unwrap().len(), 5);
        }
    }

    #[test]
    fn cart_operations_are_stateful() {
        let svc = AmazonService::new();
        let empty = svc.call(&cart_req("GetShoppingCart", "c1", None)).unwrap();
        assert_eq!(
            empty
                .as_struct()
                .unwrap()
                .get("items")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            0
        );
        svc.call(&cart_req("AddShoppingCartItems", "c1", Some("book")))
            .unwrap();
        svc.call(&cart_req("AddShoppingCartItems", "c1", Some("cd")))
            .unwrap();
        let two = svc.call(&cart_req("GetShoppingCart", "c1", None)).unwrap();
        assert_eq!(
            two.as_struct()
                .unwrap()
                .get("items")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
        // The same GetShoppingCart request now returns something different
        // from before — this is exactly why the paper marks cart
        // operations uncacheable.
        assert_ne!(empty, two);
        svc.call(&cart_req("RemoveShoppingCartItems", "c1", Some("book")))
            .unwrap();
        svc.call(&cart_req("ModifyShoppingCartItems", "c1", Some("dvd")))
            .unwrap();
        let modified = svc.call(&cart_req("GetShoppingCart", "c1", None)).unwrap();
        let items = modified
            .as_struct()
            .unwrap()
            .get("items")
            .unwrap()
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(items, vec![Value::string("dvd")]);
        svc.call(&cart_req("ClearShoppingCart", "c1", None))
            .unwrap();
        let cleared = svc.call(&cart_req("GetShoppingCart", "c1", None)).unwrap();
        assert_eq!(
            cleared
                .as_struct()
                .unwrap()
                .get("items")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn carts_are_isolated_by_id() {
        let svc = AmazonService::new();
        svc.call(&cart_req("AddShoppingCartItems", "a", Some("x")))
            .unwrap();
        let b = svc.call(&cart_req("GetShoppingCart", "b", None)).unwrap();
        assert_eq!(
            b.as_struct()
                .unwrap()
                .get("items")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn missing_parameters_fault() {
        let svc = AmazonService::new();
        assert!(svc
            .call(&RpcRequest::new(NAMESPACE, "KeywordSearch"))
            .is_err());
        assert!(svc
            .call(&RpcRequest::new(NAMESPACE, "AddShoppingCartItems").with_param("cartId", "c"))
            .is_err());
    }
}

//! SOAP dispatcher: hosts [`SoapService`] implementations on the HTTP
//! server, handling envelope parsing, routing and fault serialization.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, SystemTime};
use wsrc_http::cache_control::{not_modified_since, stamp_validators};
use wsrc_http::{Handler, Method, Request, Response, Status};
use wsrc_model::typeinfo::TypeRegistry;
use wsrc_model::Value;
use wsrc_soap::deserializer::parse_request;
use wsrc_soap::rpc::{OperationDescriptor, RpcRequest};
use wsrc_soap::serializer::{serialize_fault, serialize_response};
use wsrc_soap::{SoapError, SoapFault};

/// A SOAP service implementation.
pub trait SoapService: Send + Sync + 'static {
    /// The service namespace URI.
    fn namespace(&self) -> &str;

    /// The operations this service implements.
    fn operations(&self) -> Vec<OperationDescriptor>;

    /// The registry typing this service's messages.
    fn registry(&self) -> TypeRegistry;

    /// Executes one call.
    ///
    /// # Errors
    ///
    /// Returns a fault to be serialized back to the caller.
    fn call(&self, request: &RpcRequest) -> Result<Value, SoapFault>;
}

struct Route {
    service: Arc<dyn SoapService>,
    operations: Vec<OperationDescriptor>,
    registry: TypeRegistry,
}

/// Routes SOAP POSTs by request path to registered services.
pub struct SoapDispatcher {
    routes: HashMap<String, Route>,
    /// When set, responses carry `Last-Modified`/`Cache-Control`
    /// validators and conditional requests are answered with `304 Not
    /// Modified` (paper §3.2's HTTP consistency mechanism). The time is
    /// mutable so tests and demos can simulate back-end data changing.
    validation: Option<Validation>,
}

struct Validation {
    last_modified: Mutex<SystemTime>,
    max_age: Duration,
}

impl std::fmt::Debug for SoapDispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SoapDispatcher({} routes)", self.routes.len())
    }
}

impl SoapDispatcher {
    /// An empty dispatcher.
    pub fn new() -> Self {
        SoapDispatcher {
            routes: HashMap::new(),
            validation: None,
        }
    }

    /// Enables HTTP validators: responses are stamped with
    /// `Last-Modified` (initially `last_modified`) and
    /// `Cache-Control: max-age`, and `If-Modified-Since` requests get
    /// `304 Not Modified` while the data is unchanged.
    pub fn with_validation(mut self, last_modified: SystemTime, max_age: Duration) -> Self {
        self.validation = Some(Validation {
            last_modified: Mutex::new(last_modified),
            max_age,
        });
        self
    }

    /// Marks the hosted data as modified `now` — subsequent conditional
    /// requests receive full responses again.
    pub fn touch(&self, now: SystemTime) {
        if let Some(v) = &self.validation {
            *v.last_modified.lock().unwrap() = now;
        }
    }

    /// Mounts a service at `path` (e.g. `/soap/google`).
    pub fn mount(mut self, path: impl Into<String>, service: Arc<dyn SoapService>) -> Self {
        let operations = service.operations();
        let registry = service.registry();
        self.routes.insert(
            path.into(),
            Route {
                service,
                operations,
                registry,
            },
        );
        self
    }

    fn dispatch(&self, request: &Request) -> Response {
        if request.method != Method::Post {
            return Response::error(Status::METHOD_NOT_ALLOWED, "SOAP requires POST");
        }
        let path = request.target.split('?').next().unwrap_or(&request.target);
        let Some(route) = self.routes.get(path) else {
            return Response::error(Status::NOT_FOUND, "no service at this path");
        };
        // The §3.2 conditional-request handshake: unchanged data answers
        // `304 Not Modified` without executing the service at all.
        if let Some(v) = &self.validation {
            let last_modified = *v.last_modified.lock().unwrap();
            if not_modified_since(request, last_modified) {
                return Response::not_modified();
            }
        }
        let body = match request.body_text() {
            Ok(b) => b,
            Err(_) => return Response::error(Status::BAD_REQUEST, "request body is not utf-8"),
        };
        let rpc = match parse_request(body, &route.operations, &route.registry) {
            Ok(r) => r,
            Err(e) => return fault_response(&client_fault(e)),
        };
        let descriptor = route
            .operations
            .iter()
            .find(|o| o.name == rpc.operation)
            .expect("parse_request only accepts known operations");
        match route.service.call(&rpc) {
            Ok(value) => {
                match serialize_response(
                    route.service.namespace(),
                    &descriptor.name,
                    &descriptor.return_name,
                    &value,
                    &route.registry,
                ) {
                    Ok(xml) => {
                        let resp =
                            Response::ok(wsrc_soap::envelope::CONTENT_TYPE, xml.into_bytes());
                        match &self.validation {
                            Some(v) => stamp_validators(
                                resp,
                                *v.last_modified.lock().unwrap(),
                                Some(v.max_age),
                            ),
                            None => resp,
                        }
                    }
                    Err(e) => fault_response(&SoapFault::server(format!(
                        "response serialization failed: {e}"
                    ))),
                }
            }
            Err(fault) => fault_response(&fault),
        }
    }
}

impl Default for SoapDispatcher {
    fn default() -> Self {
        SoapDispatcher::new()
    }
}

impl Handler for SoapDispatcher {
    fn handle(&self, request: &Request) -> Response {
        self.dispatch(request)
    }
}

fn client_fault(e: SoapError) -> SoapFault {
    SoapFault::client(e.to_string())
}

fn fault_response(fault: &SoapFault) -> Response {
    let xml = serialize_fault(fault).unwrap_or_else(|_| String::from("<fault/>"));
    Response::new(
        Status::INTERNAL_SERVER_ERROR,
        wsrc_soap::envelope::CONTENT_TYPE,
        xml.into_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrc_model::typeinfo::{FieldDescriptor, FieldType};
    use wsrc_soap::serializer::serialize_request;

    struct Adder;

    impl SoapService for Adder {
        fn namespace(&self) -> &str {
            "urn:Adder"
        }
        fn operations(&self) -> Vec<OperationDescriptor> {
            vec![OperationDescriptor::new(
                "urn:Adder",
                "add",
                vec![
                    FieldDescriptor::new("a", FieldType::Int),
                    FieldDescriptor::new("b", FieldType::Int),
                ],
                FieldType::Int,
            )]
        }
        fn registry(&self) -> TypeRegistry {
            TypeRegistry::new()
        }
        fn call(&self, request: &RpcRequest) -> Result<Value, SoapFault> {
            let a = request.param("a").and_then(Value::as_int).unwrap_or(0);
            let b = request.param("b").and_then(Value::as_int).unwrap_or(0);
            a.checked_add(b)
                .map(Value::Int)
                .ok_or_else(|| SoapFault::server("integer overflow"))
        }
    }

    fn dispatcher() -> SoapDispatcher {
        SoapDispatcher::new().mount("/soap/adder", Arc::new(Adder))
    }

    fn soap_post(path: &str, xml: String) -> Request {
        Request::post(path, wsrc_soap::envelope::CONTENT_TYPE, xml.into_bytes())
    }

    #[test]
    fn routes_and_executes() {
        let d = dispatcher();
        let req = RpcRequest::new("urn:Adder", "add")
            .with_param("a", 2)
            .with_param("b", 3);
        let xml = serialize_request(&req, &TypeRegistry::new()).unwrap();
        let resp = d.handle(&soap_post("/soap/adder", xml));
        assert_eq!(resp.status, Status::OK);
        assert!(resp
            .body_text()
            .expect("soap bodies are utf-8")
            .contains(">5</return>"));
    }

    #[test]
    fn unknown_paths_404() {
        let d = dispatcher();
        let resp = d.handle(&soap_post("/soap/nope", "<x/>".into()));
        assert_eq!(resp.status, Status::NOT_FOUND);
    }

    #[test]
    fn get_is_rejected() {
        let d = dispatcher();
        let resp = d.handle(&Request::get("/soap/adder"));
        assert_eq!(resp.status, Status::METHOD_NOT_ALLOWED);
    }

    #[test]
    fn malformed_envelopes_fault_with_client_code() {
        let d = dispatcher();
        let resp = d.handle(&soap_post("/soap/adder", "garbage".into()));
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
        assert!(resp
            .body_text()
            .expect("soap bodies are utf-8")
            .contains("soapenv:Client"));
    }

    #[test]
    fn unknown_operations_fault() {
        let d = dispatcher();
        let req = RpcRequest::new("urn:Adder", "subtract").with_param("a", 1);
        let xml = serialize_request(&req, &TypeRegistry::new()).unwrap();
        let resp = d.handle(&soap_post("/soap/adder", xml));
        assert!(resp
            .body_text()
            .expect("soap bodies are utf-8")
            .contains("unknown operation"));
    }

    #[test]
    fn service_faults_are_serialized() {
        let d = dispatcher();
        let req = RpcRequest::new("urn:Adder", "add")
            .with_param("a", i32::MAX)
            .with_param("b", 1);
        let xml = serialize_request(&req, &TypeRegistry::new()).unwrap();
        let resp = d.handle(&soap_post("/soap/adder", xml));
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
        assert!(resp
            .body_text()
            .expect("soap bodies are utf-8")
            .contains("integer overflow"));
        assert!(resp
            .body_text()
            .expect("soap bodies are utf-8")
            .contains("soapenv:Server"));
    }

    #[test]
    fn validation_stamps_and_answers_conditionals() {
        let t0 = SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000_000);
        let d = SoapDispatcher::new()
            .mount("/soap/adder", Arc::new(Adder))
            .with_validation(t0, Duration::from_secs(60));
        let req = RpcRequest::new("urn:Adder", "add")
            .with_param("a", 1)
            .with_param("b", 2);
        let xml = serialize_request(&req, &TypeRegistry::new()).unwrap();
        let resp = d.handle(&soap_post("/soap/adder", xml.clone()));
        assert_eq!(resp.status, Status::OK);
        let lm = resp
            .headers
            .get("Last-Modified")
            .expect("stamped")
            .to_string();
        assert!(resp
            .headers
            .get("Cache-Control")
            .unwrap()
            .contains("max-age=60"));
        // Conditional request with the same validator → 304, no body.
        let cond =
            soap_post("/soap/adder", xml.clone()).with_header("If-Modified-Since", lm.clone());
        let resp = d.handle(&cond);
        assert_eq!(resp.status, Status::NOT_MODIFIED);
        assert!(resp.body.is_empty());
        // Data changes → full response again.
        d.touch(t0 + Duration::from_secs(10));
        let resp = d.handle(&soap_post("/soap/adder", xml).with_header("If-Modified-Since", lm));
        assert_eq!(resp.status, Status::OK);
        assert!(resp
            .body_text()
            .expect("soap bodies are utf-8")
            .contains(">3</return>"));
    }

    #[test]
    fn query_strings_are_ignored_in_routing() {
        let d = dispatcher();
        let req = RpcRequest::new("urn:Adder", "add")
            .with_param("a", 1)
            .with_param("b", 1);
        let xml = serialize_request(&req, &TypeRegistry::new()).unwrap();
        let resp = d.handle(&soap_post("/soap/adder?debug=1", xml));
        assert_eq!(resp.status, Status::OK);
    }
}

//! Deterministic synthetic corpus for the dummy Google service.
//!
//! Every response is a pure function of the request parameters, like the
//! paper's dummy services that "return the same response XML messages
//! every time". Sizes are tuned so that on the wire the three operations
//! land near the paper's Table 9 (CachedPage and GoogleSearch responses
//! around 5 KB of XML, SpellingSuggestion around 0.5 KB).

use wsrc_model::value::{StructValue, Value};

/// Deterministic response generator.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Target size of cached-page payloads in bytes (pre-base64).
    pub page_bytes: usize,
    /// Result elements per search page when the caller asks for more.
    pub max_page_size: i32,
}

impl Default for Corpus {
    fn default() -> Self {
        Corpus {
            page_bytes: 3600,
            max_page_size: 10,
        }
    }
}

const WORDS: [&str; 32] = [
    "distributed",
    "caching",
    "middleware",
    "response",
    "latency",
    "throughput",
    "envelope",
    "serialization",
    "reflection",
    "portal",
    "service",
    "interface",
    "protocol",
    "transparent",
    "consistency",
    "replication",
    "endpoint",
    "registry",
    "deployment",
    "optimal",
    "dynamic",
    "immutable",
    "representation",
    "benchmark",
    "cluster",
    "gateway",
    "schema",
    "transport",
    "pipeline",
    "overhead",
    "scalable",
    "lease",
];

const DOMAINS: [&str; 8] = [
    "example.org",
    "research.test",
    "infra.test",
    "papers.test",
    "archive.test",
    "web.test",
    "portal.test",
    "cache.test",
];

const CATEGORIES: [&str; 6] = [
    "Top/Computers/Distributed_Computing",
    "Top/Computers/Internet/Protocols",
    "Top/Computers/Software/Middleware",
    "Top/Science/Computer_Science",
    "Top/Computers/Data_Formats/XML",
    "Top/Computers/Performance",
];

/// SplitMix64: tiny, deterministic, seedable — responses must be a pure
/// function of the request across runs and platforms.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn seeded(text: &str) -> Rng {
        // FNV-1a over the text gives a stable seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Rng(h)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn word(&mut self) -> &'static str {
        WORDS[self.below(WORDS.len() as u64) as usize]
    }

    fn sentence(&mut self, words: usize) -> String {
        let mut out = String::with_capacity(words * 9);
        for i in 0..words {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.word());
        }
        out
    }
}

impl Corpus {
    /// `doSpellingSuggestion`: a deterministic "correction" of the phrase.
    /// Small and simple (a single string).
    pub fn spelling_suggestion(&self, phrase: &str) -> Value {
        let mut rng = Rng::seeded(phrase);
        // Deterministically "fix" the phrase by doubling a vowel-less
        // word's first letter or appending a dictionary word.
        let corrected = if phrase.is_empty() {
            rng.word().to_string()
        } else {
            format!("{} {}", phrase.trim(), rng.word())
        };
        Value::string(corrected)
    }

    /// `doGetCachedPage`: a deterministic HTML page of ~`page_bytes`
    /// bytes. Large and simple (one byte array).
    pub fn cached_page(&self, url: &str) -> Vec<u8> {
        let mut rng = Rng::seeded(url);
        let mut html = String::with_capacity(self.page_bytes + 256);
        html.push_str("<html><head><title>");
        html.push_str(&rng.sentence(4));
        html.push_str("</title></head><body>");
        while html.len() < self.page_bytes {
            html.push_str("<p>");
            html.push_str(&rng.sentence(12));
            html.push_str("</p>");
        }
        html.push_str("</body></html>");
        html.into_bytes()
    }

    /// `doGoogleSearch`: a deterministic, fully-populated
    /// `GoogleSearchResult`. Large and complex.
    pub fn search_result(&self, q: &str, start: i32, max_results: i32) -> StructValue {
        let mut rng = Rng::seeded(q);
        let count = max_results.clamp(0, self.max_page_size);
        let estimated = 1_000 + rng.below(1_000_000) as i32;
        let mut elements = Vec::with_capacity(count as usize);
        for i in 0..count {
            elements.push(Value::Struct(self.result_element(&mut rng, q, start + i)));
        }
        let mut categories = Vec::new();
        for _ in 0..2 {
            categories.push(Value::Struct(directory_category(&mut rng)));
        }
        StructValue::new("GoogleSearchResult")
            .with("documentFiltering", rng.below(2) == 0)
            .with("searchComments", "")
            .with("estimatedTotalResultsCount", estimated)
            .with("estimateIsExact", false)
            .with("resultElements", Value::Array(elements))
            .with("searchQuery", q)
            .with("startIndex", start)
            .with("endIndex", start + count)
            .with("searchTips", "")
            .with("directoryCategories", Value::Array(categories))
            .with("searchTime", (rng.below(400_000) as f64) / 1_000_000.0)
    }

    fn result_element(&self, rng: &mut Rng, q: &str, rank: i32) -> StructValue {
        let domain = DOMAINS[rng.below(DOMAINS.len() as u64) as usize];
        let slug = rng.sentence(2).replace(' ', "-");
        StructValue::new("ResultElement")
            .with("summary", rng.sentence(5))
            .with("URL", format!("http://{domain}/{slug}?r={rank}"))
            .with(
                "snippet",
                format!("...{} <b>{}</b> {}...", rng.sentence(3), q, rng.sentence(3)),
            )
            .with("title", rng.sentence(3))
            .with("cachedSize", format!("{}k", 1 + rng.below(90)))
            .with("relatedInformationPresent", rng.below(2) == 0)
            .with("hostName", domain)
            .with("directoryCategory", Value::Struct(directory_category(rng)))
            .with("directoryTitle", rng.sentence(2))
            .with("language", "en")
    }
}

fn directory_category(rng: &mut Rng) -> StructValue {
    StructValue::new("DirectoryCategory")
        .with(
            "fullViewableName",
            CATEGORIES[rng.below(CATEGORIES.len() as u64) as usize],
        )
        .with("specialEncoding", "")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrc_model::sizeof::deep_size;

    #[test]
    fn responses_are_pure_functions_of_inputs() {
        let c = Corpus::default();
        assert_eq!(c.spelling_suggestion("teh"), c.spelling_suggestion("teh"));
        assert_eq!(c.cached_page("http://a/"), c.cached_page("http://a/"));
        assert_eq!(
            Value::Struct(c.search_result("q", 0, 10)),
            Value::Struct(c.search_result("q", 0, 10))
        );
    }

    #[test]
    fn different_inputs_differ() {
        let c = Corpus::default();
        assert_ne!(c.cached_page("http://a/"), c.cached_page("http://b/"));
        assert_ne!(
            Value::Struct(c.search_result("x", 0, 10)),
            Value::Struct(c.search_result("y", 0, 10))
        );
    }

    #[test]
    fn page_size_is_near_target() {
        let c = Corpus::default();
        let page = c.cached_page("http://example.test/");
        assert!(page.len() >= c.page_bytes, "page is {}", page.len());
        assert!(page.len() < c.page_bytes + 300);
    }

    #[test]
    fn search_result_is_fully_populated() {
        let c = Corpus::default();
        let r = c.search_result("rust soap", 0, 10);
        assert_eq!(r.len(), 11, "all eleven fields set");
        let elements = r.get("resultElements").unwrap().as_array().unwrap();
        assert_eq!(elements.len(), 10);
        for e in elements {
            let e = e.as_struct().unwrap();
            assert_eq!(e.len(), 10, "all ten ResultElement fields set");
            assert!(e
                .get("URL")
                .unwrap()
                .as_str()
                .unwrap()
                .starts_with("http://"));
            assert_eq!(
                e.get("directoryCategory")
                    .unwrap()
                    .as_struct()
                    .unwrap()
                    .type_name(),
                "DirectoryCategory"
            );
        }
    }

    #[test]
    fn max_results_is_clamped() {
        let c = Corpus::default();
        let r = c.search_result("q", 0, 100);
        assert_eq!(
            r.get("resultElements").unwrap().as_array().unwrap().len(),
            10
        );
        let r = c.search_result("q", 0, 3);
        assert_eq!(
            r.get("resultElements").unwrap().as_array().unwrap().len(),
            3
        );
        let r = c.search_result("q", 0, -5);
        assert_eq!(
            r.get("resultElements").unwrap().as_array().unwrap().len(),
            0
        );
    }

    #[test]
    fn relative_sizes_match_table5_classification() {
        let c = Corpus::default();
        let small = c.spelling_suggestion("helo");
        let large_simple = Value::Bytes(c.cached_page("http://x/"));
        let large_complex = Value::Struct(c.search_result("q", 0, 10));
        assert!(deep_size(&small) < 200);
        assert!(deep_size(&large_simple) > 3000);
        assert!(deep_size(&large_complex) > 3000);
        // Complex has far more nodes than the flat page despite similar size.
        assert!(large_complex.node_count() > 100);
        assert_eq!(large_simple.node_count(), 1);
    }
}

//! The dummy Google Web service — the paper's evaluation workload.
//!
//! Types, operations and the WSDL match the historical GoogleSearch API
//! the paper used (§5.1, Table 5):
//!
//! - `doSpellingSuggestion(key, phrase) → String` — small and simple.
//! - `doGetCachedPage(key, url) → base64` — large and simple.
//! - `doGoogleSearch(key, q, start, maxResults, filter, restrict,
//!   safeSearch, lr, ie, oe) → GoogleSearchResult` — large and complex:
//!   eleven fields, nine simple plus a `ResultElement[]` and a
//!   `DirectoryCategory[]`.

pub mod data;

use crate::dispatch::SoapService;
use data::Corpus;
use wsrc_model::typeinfo::{
    Capabilities, FieldDescriptor, FieldType, TypeDescriptor, TypeRegistry,
};
use wsrc_model::Value;
use wsrc_soap::rpc::{OperationDescriptor, RpcRequest};
use wsrc_soap::SoapFault;
use wsrc_wsdl::model as wm;

/// The service namespace.
pub const NAMESPACE: &str = "urn:GoogleSearch";
/// Conventional mount path on the dispatcher.
pub const PATH: &str = "/soap/google";

/// The type registry for the Google service, as the WSDL compiler would
/// generate it — with the paper's modification: "we modified the
/// GoogleSearchResult objects so that all of the methods could be
/// applied" (serializable, bean, deep clone, toString).
pub fn registry() -> TypeRegistry {
    let all = Capabilities::all();
    TypeRegistry::builder()
        .register(
            TypeDescriptor::new(
                "DirectoryCategory",
                vec![
                    FieldDescriptor::new("fullViewableName", FieldType::String),
                    FieldDescriptor::new("specialEncoding", FieldType::String),
                ],
            )
            .with_capabilities(all),
        )
        .register(
            TypeDescriptor::new(
                "ResultElement",
                vec![
                    FieldDescriptor::new("summary", FieldType::String),
                    FieldDescriptor::new("URL", FieldType::String),
                    FieldDescriptor::new("snippet", FieldType::String),
                    FieldDescriptor::new("title", FieldType::String),
                    FieldDescriptor::new("cachedSize", FieldType::String),
                    FieldDescriptor::new("relatedInformationPresent", FieldType::Bool),
                    FieldDescriptor::new("hostName", FieldType::String),
                    FieldDescriptor::new(
                        "directoryCategory",
                        FieldType::Struct("DirectoryCategory".into()),
                    ),
                    FieldDescriptor::new("directoryTitle", FieldType::String),
                    FieldDescriptor::new("language", FieldType::String),
                ],
            )
            .with_capabilities(all),
        )
        .register(
            TypeDescriptor::new(
                "GoogleSearchResult",
                vec![
                    FieldDescriptor::new("documentFiltering", FieldType::Bool),
                    FieldDescriptor::new("searchComments", FieldType::String),
                    FieldDescriptor::new("estimatedTotalResultsCount", FieldType::Int),
                    FieldDescriptor::new("estimateIsExact", FieldType::Bool),
                    FieldDescriptor::new(
                        "resultElements",
                        FieldType::ArrayOf(Box::new(FieldType::Struct("ResultElement".into()))),
                    ),
                    FieldDescriptor::new("searchQuery", FieldType::String),
                    FieldDescriptor::new("startIndex", FieldType::Int),
                    FieldDescriptor::new("endIndex", FieldType::Int),
                    FieldDescriptor::new("searchTips", FieldType::String),
                    FieldDescriptor::new(
                        "directoryCategories",
                        FieldType::ArrayOf(Box::new(FieldType::Struct("DirectoryCategory".into()))),
                    ),
                    FieldDescriptor::new("searchTime", FieldType::Double),
                ],
            )
            .with_capabilities(all),
        )
        .build()
}

/// The three operation descriptors (paper Table 5's parameter shapes).
pub fn operations() -> Vec<OperationDescriptor> {
    vec![
        OperationDescriptor::new(
            NAMESPACE,
            "doSpellingSuggestion",
            vec![
                FieldDescriptor::new("key", FieldType::String),
                FieldDescriptor::new("phrase", FieldType::String),
            ],
            FieldType::String,
        ),
        OperationDescriptor::new(
            NAMESPACE,
            "doGetCachedPage",
            vec![
                FieldDescriptor::new("key", FieldType::String),
                FieldDescriptor::new("url", FieldType::String),
            ],
            FieldType::Bytes,
        ),
        OperationDescriptor::new(
            NAMESPACE,
            "doGoogleSearch",
            vec![
                FieldDescriptor::new("key", FieldType::String),
                FieldDescriptor::new("q", FieldType::String),
                FieldDescriptor::new("start", FieldType::Int),
                FieldDescriptor::new("maxResults", FieldType::Int),
                FieldDescriptor::new("filter", FieldType::Bool),
                FieldDescriptor::new("restrict", FieldType::String),
                FieldDescriptor::new("safeSearch", FieldType::Bool),
                FieldDescriptor::new("lr", FieldType::String),
                FieldDescriptor::new("ie", FieldType::String),
                FieldDescriptor::new("oe", FieldType::String),
            ],
            FieldType::Struct("GoogleSearchResult".into()),
        ),
    ]
}

/// The paper's cache-policy for Google: "all the three operations in
/// Google Web services are cacheable" with a one-hour TTL (§3.2).
pub fn default_policy() -> wsrc_cache::CachePolicy {
    use std::time::Duration;
    use wsrc_cache::policy::{CachePolicy, OperationPolicy};
    CachePolicy::new()
        .with(
            "doSpellingSuggestion",
            OperationPolicy::cacheable(Duration::from_secs(3600)),
        )
        .with(
            "doGetCachedPage",
            OperationPolicy::cacheable(Duration::from_secs(3600)),
        )
        .with(
            "doGoogleSearch",
            OperationPolicy::cacheable(Duration::from_secs(3600)),
        )
}

/// The GoogleSearch WSDL document (authored in the model, emitted and
/// re-parsed in tests).
pub fn wsdl(endpoint_url: &str) -> wm::Definitions {
    use wm::{
        ComplexType, Message, Part, PortType, Schema, SchemaField, Service, TypeRef, WsdlOperation,
        XsdType,
    };
    let s = |x: XsdType| TypeRef::Xsd(x);
    wm::Definitions {
        name: "GoogleSearch".into(),
        target_namespace: NAMESPACE.into(),
        schema: Schema {
            target_namespace: NAMESPACE.into(),
            types: vec![
                ComplexType::new(
                    "DirectoryCategory",
                    vec![
                        SchemaField::new("fullViewableName", s(XsdType::String)),
                        SchemaField::new("specialEncoding", s(XsdType::String)),
                    ],
                ),
                ComplexType::new(
                    "ResultElement",
                    vec![
                        SchemaField::new("summary", s(XsdType::String)),
                        SchemaField::new("URL", s(XsdType::String)),
                        SchemaField::new("snippet", s(XsdType::String)),
                        SchemaField::new("title", s(XsdType::String)),
                        SchemaField::new("cachedSize", s(XsdType::String)),
                        SchemaField::new("relatedInformationPresent", s(XsdType::Boolean)),
                        SchemaField::new("hostName", s(XsdType::String)),
                        SchemaField::new(
                            "directoryCategory",
                            TypeRef::Complex("DirectoryCategory".into()),
                        ),
                        SchemaField::new("directoryTitle", s(XsdType::String)),
                        SchemaField::new("language", s(XsdType::String)),
                    ],
                ),
                ComplexType::new(
                    "GoogleSearchResult",
                    vec![
                        SchemaField::new("documentFiltering", s(XsdType::Boolean)),
                        SchemaField::new("searchComments", s(XsdType::String)),
                        SchemaField::new("estimatedTotalResultsCount", s(XsdType::Int)),
                        SchemaField::new("estimateIsExact", s(XsdType::Boolean)),
                        SchemaField::new(
                            "resultElements",
                            TypeRef::Complex("ResultElement".into()).array(),
                        ),
                        SchemaField::new("searchQuery", s(XsdType::String)),
                        SchemaField::new("startIndex", s(XsdType::Int)),
                        SchemaField::new("endIndex", s(XsdType::Int)),
                        SchemaField::new("searchTips", s(XsdType::String)),
                        SchemaField::new(
                            "directoryCategories",
                            TypeRef::Complex("DirectoryCategory".into()).array(),
                        ),
                        SchemaField::new("searchTime", s(XsdType::Double)),
                    ],
                ),
            ],
        },
        messages: vec![
            Message {
                name: "doSpellingSuggestion".into(),
                parts: vec![
                    Part::new("key", s(XsdType::String)),
                    Part::new("phrase", s(XsdType::String)),
                ],
            },
            Message {
                name: "doSpellingSuggestionResponse".into(),
                parts: vec![Part::new("return", s(XsdType::String))],
            },
            Message {
                name: "doGetCachedPage".into(),
                parts: vec![
                    Part::new("key", s(XsdType::String)),
                    Part::new("url", s(XsdType::String)),
                ],
            },
            Message {
                name: "doGetCachedPageResponse".into(),
                parts: vec![Part::new("return", s(XsdType::Base64Binary))],
            },
            Message {
                name: "doGoogleSearch".into(),
                parts: vec![
                    Part::new("key", s(XsdType::String)),
                    Part::new("q", s(XsdType::String)),
                    Part::new("start", s(XsdType::Int)),
                    Part::new("maxResults", s(XsdType::Int)),
                    Part::new("filter", s(XsdType::Boolean)),
                    Part::new("restrict", s(XsdType::String)),
                    Part::new("safeSearch", s(XsdType::Boolean)),
                    Part::new("lr", s(XsdType::String)),
                    Part::new("ie", s(XsdType::String)),
                    Part::new("oe", s(XsdType::String)),
                ],
            },
            Message {
                name: "doGoogleSearchResponse".into(),
                parts: vec![Part::new(
                    "return",
                    TypeRef::Complex("GoogleSearchResult".into()),
                )],
            },
        ],
        port_type: PortType {
            name: "GoogleSearchPort".into(),
            operations: vec![
                WsdlOperation {
                    name: "doSpellingSuggestion".into(),
                    input_message: "doSpellingSuggestion".into(),
                    output_message: "doSpellingSuggestionResponse".into(),
                },
                WsdlOperation {
                    name: "doGetCachedPage".into(),
                    input_message: "doGetCachedPage".into(),
                    output_message: "doGetCachedPageResponse".into(),
                },
                WsdlOperation {
                    name: "doGoogleSearch".into(),
                    input_message: "doGoogleSearch".into(),
                    output_message: "doGoogleSearchResponse".into(),
                },
            ],
        },
        service: Service {
            name: "GoogleSearchService".into(),
            port_name: "GoogleSearchPort".into(),
            endpoint_url: endpoint_url.into(),
        },
    }
}

/// The dummy Google service: deterministic synthetic responses.
#[derive(Debug, Default)]
pub struct GoogleService {
    corpus: Corpus,
}

impl GoogleService {
    /// A service with the default corpus parameters.
    pub fn new() -> Self {
        GoogleService::default()
    }
}

impl SoapService for GoogleService {
    fn namespace(&self) -> &str {
        NAMESPACE
    }

    fn operations(&self) -> Vec<OperationDescriptor> {
        operations()
    }

    fn registry(&self) -> TypeRegistry {
        registry()
    }

    fn call(&self, request: &RpcRequest) -> Result<Value, SoapFault> {
        let str_param = |name: &str| -> Result<&str, SoapFault> {
            request
                .param(name)
                .and_then(Value::as_str)
                .ok_or_else(|| SoapFault::client(format!("missing string parameter '{name}'")))
        };
        match request.operation.as_str() {
            "doSpellingSuggestion" => Ok(self.corpus.spelling_suggestion(str_param("phrase")?)),
            "doGetCachedPage" => Ok(Value::Bytes(self.corpus.cached_page(str_param("url")?))),
            "doGoogleSearch" => {
                let q = str_param("q")?;
                let start = request.param("start").and_then(Value::as_int).unwrap_or(0);
                let max = request
                    .param("maxResults")
                    .and_then(Value::as_int)
                    .unwrap_or(10);
                Ok(Value::Struct(self.corpus.search_result(q, start, max)))
            }
            other => Err(SoapFault::client(format!("unknown operation '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_shape() {
        let r = registry();
        let gsr = r.get("GoogleSearchResult").unwrap();
        assert_eq!(gsr.fields.len(), 11);
        let simple = gsr
            .fields
            .iter()
            .filter(|f| !matches!(f.field_type, FieldType::ArrayOf(_)))
            .count();
        assert_eq!(simple, 9, "nine simple fields plus two arrays");
        let re = r.get("ResultElement").unwrap();
        assert_eq!(re.fields.len(), 10);
        let re_simple = re
            .fields
            .iter()
            .filter(|f| !matches!(f.field_type, FieldType::Struct(_)))
            .count();
        assert_eq!(
            re_simple, 9,
            "nine simple fields plus one DirectoryCategory"
        );
        let dc = r.get("DirectoryCategory").unwrap();
        assert_eq!(dc.fields.len(), 2);
        // The paper modified these types so every method applies.
        assert!(
            gsr.capabilities.cloneable && gsr.capabilities.serializable && gsr.capabilities.bean
        );
    }

    #[test]
    fn operations_match_table5_parameter_shapes() {
        let ops = operations();
        let spell = &ops[0];
        assert!(spell
            .params
            .iter()
            .all(|p| p.field_type == FieldType::String));
        assert_eq!(spell.params.len(), 2);
        let page = &ops[1];
        assert_eq!(page.params.len(), 2);
        assert_eq!(page.return_type, FieldType::Bytes);
        let search = &ops[2];
        let strings = search
            .params
            .iter()
            .filter(|p| p.field_type == FieldType::String)
            .count();
        let ints = search
            .params
            .iter()
            .filter(|p| p.field_type == FieldType::Int)
            .count();
        let bools = search
            .params
            .iter()
            .filter(|p| p.field_type == FieldType::Bool)
            .count();
        assert_eq!(
            (strings, ints, bools),
            (6, 2, 2),
            "String x6, int x2, boolean x2"
        );
    }

    #[test]
    fn service_answers_all_three_operations() {
        let svc = GoogleService::new();
        let spell = RpcRequest::new(NAMESPACE, "doSpellingSuggestion")
            .with_param("key", "k")
            .with_param("phrase", "helo wrld");
        assert!(svc.call(&spell).unwrap().as_str().is_some());

        let page = RpcRequest::new(NAMESPACE, "doGetCachedPage")
            .with_param("key", "k")
            .with_param("url", "http://example.test/page");
        let bytes = svc.call(&page).unwrap();
        assert!(bytes.as_bytes().unwrap().len() > 3000, "large and simple");

        let search = RpcRequest::new(NAMESPACE, "doGoogleSearch")
            .with_param("key", "k")
            .with_param("q", "distributed caching")
            .with_param("start", 0)
            .with_param("maxResults", 10)
            .with_param("filter", true)
            .with_param("restrict", "")
            .with_param("safeSearch", false)
            .with_param("lr", "")
            .with_param("ie", "utf-8")
            .with_param("oe", "utf-8");
        let result = svc.call(&search).unwrap();
        let s = result.as_struct().unwrap();
        assert_eq!(s.type_name(), "GoogleSearchResult");
        assert_eq!(
            s.get("resultElements").unwrap().as_array().unwrap().len(),
            10
        );
    }

    #[test]
    fn search_responses_conform_to_the_registry() {
        let svc = GoogleService::new();
        let search = RpcRequest::new(NAMESPACE, "doGoogleSearch")
            .with_param("key", "k")
            .with_param("q", "conformance")
            .with_param("start", 0)
            .with_param("maxResults", 10)
            .with_param("filter", true)
            .with_param("restrict", "")
            .with_param("safeSearch", false)
            .with_param("lr", "")
            .with_param("ie", "utf-8")
            .with_param("oe", "utf-8");
        let value = svc.call(&search).unwrap();
        wsrc_model::bean::validate(
            &value,
            &FieldType::Struct("GoogleSearchResult".into()),
            &registry(),
        )
        .expect("dummy responses must be well-typed beans");
    }

    #[test]
    fn responses_are_deterministic() {
        let svc = GoogleService::new();
        let req = RpcRequest::new(NAMESPACE, "doGoogleSearch")
            .with_param("key", "k")
            .with_param("q", "same query")
            .with_param("start", 0)
            .with_param("maxResults", 10)
            .with_param("filter", true)
            .with_param("restrict", "")
            .with_param("safeSearch", false)
            .with_param("lr", "")
            .with_param("ie", "utf-8")
            .with_param("oe", "utf-8");
        assert_eq!(svc.call(&req).unwrap(), svc.call(&req).unwrap());
    }

    #[test]
    fn missing_parameters_fault() {
        let svc = GoogleService::new();
        let bad = RpcRequest::new(NAMESPACE, "doSpellingSuggestion").with_param("key", "k");
        assert!(svc.call(&bad).is_err());
        let unknown = RpcRequest::new(NAMESPACE, "doTeleport");
        assert!(svc.call(&unknown).is_err());
    }

    #[test]
    fn wsdl_roundtrips_and_compiles_to_the_same_registry() {
        let defs = wsdl("http://google.test/soap/google");
        let xml = wsrc_wsdl::writer::write_wsdl(&defs).unwrap();
        let parsed = wsrc_wsdl::parser::parse_wsdl(&xml).unwrap();
        assert_eq!(parsed, defs);
        let compiled = wsrc_wsdl::compile(&parsed, wsrc_wsdl::CompileOptions::default()).unwrap();
        assert_eq!(compiled.namespace, NAMESPACE);
        assert_eq!(compiled.operations.len(), 3);
        // The compiled registry has the same field layout as the
        // hand-maintained one.
        let hand = registry();
        for name in ["GoogleSearchResult", "ResultElement", "DirectoryCategory"] {
            let a = compiled.registry.get(name).unwrap();
            let b = hand.get(name).unwrap();
            assert_eq!(a.fields, b.fields, "{name}");
        }
    }

    #[test]
    fn default_policy_caches_all_three() {
        let p = default_policy();
        for op in ["doSpellingSuggestion", "doGetCachedPage", "doGoogleSearch"] {
            assert!(p.for_operation(op).cacheable, "{op}");
        }
        assert!(!p.for_operation("somethingElse").cacheable);
    }
}

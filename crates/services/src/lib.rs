#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Dummy back-end Web services for the evaluation.
//!
//! The paper's portal experiment uses "dummy Google Web services [that]
//! actually return the same response XML messages every time" — the real
//! Google SOAP API has been defunct since 2006, so this crate *is* the
//! faithful substitute (see DESIGN.md). It provides:
//!
//! - [`google`] — the three Google operations with the exact response
//!   shapes of paper Table 5 (`doSpellingSuggestion` → small simple
//!   string; `doGetCachedPage` → large simple byte array;
//!   `doGoogleSearch` → large complex `GoogleSearchResult`), generated
//!   deterministically per query.
//! - [`amazon`] — the 26 Amazon operations of paper Table 1 (20 cacheable
//!   search operations, 6 stateful shopping-cart operations).
//! - [`stock`], [`news`] — the other two back-end services of the
//!   introduction's portal scenario (stock quotes with a short TTL,
//!   news headlines with a medium TTL).
//! - [`dispatch`] — a SOAP dispatcher that hosts any [`SoapService`] on
//!   the `wsrc-http` server.

pub mod amazon;
pub mod dispatch;
pub mod google;
pub mod news;
pub mod stock;

pub use dispatch::{SoapDispatcher, SoapService};

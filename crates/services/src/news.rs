//! A dummy news Web service — the third back-end of the paper's
//! motivating portal scenario.

use crate::dispatch::SoapService;
use std::time::Duration;
use wsrc_cache::policy::{CachePolicy, OperationPolicy};
use wsrc_model::typeinfo::{FieldDescriptor, FieldType, TypeDescriptor, TypeRegistry};
use wsrc_model::value::{StructValue, Value};
use wsrc_soap::rpc::{OperationDescriptor, RpcRequest};
use wsrc_soap::SoapFault;

/// The service namespace.
pub const NAMESPACE: &str = "urn:NewsFeed";
/// Conventional mount path on the dispatcher.
pub const PATH: &str = "/soap/news";

/// Registry for headline responses.
pub fn registry() -> TypeRegistry {
    TypeRegistry::builder()
        .register(TypeDescriptor::new(
            "Headline",
            vec![
                FieldDescriptor::new("title", FieldType::String),
                FieldDescriptor::new("source", FieldType::String),
                FieldDescriptor::new("ageMinutes", FieldType::Int),
                FieldDescriptor::new("url", FieldType::String),
            ],
        ))
        .build()
}

/// The single operation: `getHeadlines(topic, max)`.
pub fn operations() -> Vec<OperationDescriptor> {
    vec![OperationDescriptor::new(
        NAMESPACE,
        "getHeadlines",
        vec![
            FieldDescriptor::new("topic", FieldType::String),
            FieldDescriptor::new("max", FieldType::Int),
        ],
        FieldType::ArrayOf(Box::new(FieldType::Struct("Headline".into()))),
    )]
}

/// Headlines stay fresh for five minutes.
pub fn default_policy() -> CachePolicy {
    CachePolicy::new().with(
        "getHeadlines",
        OperationPolicy::cacheable(Duration::from_secs(300)),
    )
}

const SOURCES: [&str; 5] = [
    "wire.test",
    "daily.test",
    "herald.test",
    "gazette.test",
    "tribune.test",
];
const VERBS: [&str; 8] = [
    "announces",
    "ships",
    "delays",
    "acquires",
    "standardizes",
    "deprecates",
    "benchmarks",
    "caches",
];
const OBJECTS: [&str; 8] = [
    "new middleware",
    "response cache",
    "SOAP toolkit",
    "portal platform",
    "WSDL compiler",
    "XML accelerator",
    "interop profile",
    "web services suite",
];

/// The dummy news service.
#[derive(Debug, Default)]
pub struct NewsService;

impl NewsService {
    /// Creates the service.
    pub fn new() -> Self {
        NewsService
    }
}

impl SoapService for NewsService {
    fn namespace(&self) -> &str {
        NAMESPACE
    }

    fn operations(&self) -> Vec<OperationDescriptor> {
        operations()
    }

    fn registry(&self) -> TypeRegistry {
        registry()
    }

    fn call(&self, request: &RpcRequest) -> Result<Value, SoapFault> {
        if request.operation != "getHeadlines" {
            return Err(SoapFault::client(format!(
                "unknown operation '{}'",
                request.operation
            )));
        }
        let topic = request
            .param("topic")
            .and_then(Value::as_str)
            .ok_or_else(|| SoapFault::client("missing 'topic'"))?;
        let max = request
            .param("max")
            .and_then(Value::as_int)
            .unwrap_or(5)
            .clamp(0, 20);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in topic.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let headlines: Vec<Value> = (0..max)
            .map(|i| {
                let k = h.wrapping_add(i as u64 * 0x9e37_79b9);
                let verb = VERBS[(k % VERBS.len() as u64) as usize];
                let object = OBJECTS[((k >> 8) % OBJECTS.len() as u64) as usize];
                let source = SOURCES[((k >> 16) % SOURCES.len() as u64) as usize];
                Value::Struct(
                    StructValue::new("Headline")
                        .with("title", format!("{topic} {verb} {object}"))
                        .with("source", source)
                        .with("ageMinutes", ((k >> 24) % 600) as i32)
                        .with("url", format!("http://{source}/story/{}", k % 100_000)),
                )
            })
            .collect();
        Ok(Value::Array(headlines))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn headlines(topic: &str, max: i32) -> Vec<Value> {
        let svc = NewsService::new();
        let req = RpcRequest::new(NAMESPACE, "getHeadlines")
            .with_param("topic", topic)
            .with_param("max", max);
        svc.call(&req).unwrap().as_array().unwrap().to_vec()
    }

    #[test]
    fn headlines_are_deterministic_and_shaped() {
        assert_eq!(headlines("rust", 5), headlines("rust", 5));
        assert_ne!(headlines("rust", 5), headlines("java", 5));
        let hs = headlines("rust", 3);
        assert_eq!(hs.len(), 3);
        for h in &hs {
            let s = h.as_struct().unwrap();
            assert_eq!(s.type_name(), "Headline");
            assert!(s
                .get("title")
                .unwrap()
                .as_str()
                .unwrap()
                .starts_with("rust "));
            assert!(s
                .get("url")
                .unwrap()
                .as_str()
                .unwrap()
                .starts_with("http://"));
        }
    }

    #[test]
    fn max_is_clamped() {
        assert_eq!(headlines("t", 100).len(), 20);
        assert_eq!(headlines("t", -3).len(), 0);
    }

    #[test]
    fn bad_requests_fault() {
        let svc = NewsService::new();
        assert!(svc
            .call(&RpcRequest::new(NAMESPACE, "getHeadlines"))
            .is_err());
        assert!(svc.call(&RpcRequest::new(NAMESPACE, "publish")).is_err());
    }

    #[test]
    fn policy_is_five_minutes() {
        assert_eq!(
            default_policy().for_operation("getHeadlines").ttl,
            Duration::from_secs(300)
        );
    }
}

//! A dummy stock-quote Web service — one of the back-end services the
//! paper's introduction puts behind the portal ("stock quote services,
//! search services, and news services").
//!
//! Quotes are a deterministic function of (symbol, time bucket): the
//! price drifts every `tick` seconds, so short TTLs genuinely matter —
//! the natural demonstration of per-operation TTL policy.

use crate::dispatch::SoapService;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wsrc_cache::policy::{CachePolicy, OperationPolicy};
use wsrc_model::typeinfo::{FieldDescriptor, FieldType, TypeDescriptor, TypeRegistry};
use wsrc_model::value::{StructValue, Value};
use wsrc_soap::rpc::{OperationDescriptor, RpcRequest};
use wsrc_soap::SoapFault;

/// The service namespace.
pub const NAMESPACE: &str = "urn:StockQuote";
/// Conventional mount path on the dispatcher.
pub const PATH: &str = "/soap/stock";

/// Registry for quote responses.
pub fn registry() -> TypeRegistry {
    TypeRegistry::builder()
        .register(TypeDescriptor::new(
            "Quote",
            vec![
                FieldDescriptor::new("symbol", FieldType::String),
                FieldDescriptor::new("price", FieldType::Double),
                FieldDescriptor::new("change", FieldType::Double),
                FieldDescriptor::new("volume", FieldType::Long),
                FieldDescriptor::new("tick", FieldType::Long),
            ],
        ))
        .build()
}

/// The operations: `getQuote(symbol)` and `getQuotes(symbols…)` via a
/// comma-separated list (SOAP-RPC keeps parameters scalar here).
pub fn operations() -> Vec<OperationDescriptor> {
    vec![
        OperationDescriptor::new(
            NAMESPACE,
            "getQuote",
            vec![FieldDescriptor::new("symbol", FieldType::String)],
            FieldType::Struct("Quote".into()),
        ),
        OperationDescriptor::new(
            NAMESPACE,
            "getQuotes",
            vec![FieldDescriptor::new("symbols", FieldType::String)],
            FieldType::ArrayOf(Box::new(FieldType::Struct("Quote".into()))),
        ),
    ]
}

/// A short-TTL policy: quotes stay fresh for 15 seconds — "The TTL
/// should be short enough to avoid consistency problems, which is
/// dependent on the service's semantics" (paper §3.2).
pub fn default_policy() -> CachePolicy {
    CachePolicy::new()
        .with(
            "getQuote",
            OperationPolicy::cacheable(Duration::from_secs(15)),
        )
        .with(
            "getQuotes",
            OperationPolicy::cacheable(Duration::from_secs(15)),
        )
}

/// The dummy stock-quote service. `advance_tick` moves the synthetic
/// market forward, changing subsequent quotes.
#[derive(Debug, Default)]
pub struct StockQuoteService {
    tick: AtomicU64,
}

impl StockQuoteService {
    /// A service at market tick 0.
    pub fn new() -> Self {
        StockQuoteService::default()
    }

    /// Moves the synthetic market forward one tick: prices change.
    pub fn advance_tick(&self) {
        self.tick.fetch_add(1, Ordering::SeqCst);
    }

    /// Current tick.
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::SeqCst)
    }

    fn quote(&self, symbol: &str) -> StructValue {
        let tick = self.tick();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in symbol.bytes().chain(tick.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let base = 10.0 + (h % 99_000) as f64 / 100.0;
        let change = ((h >> 16) % 2001) as f64 / 100.0 - 10.0;
        StructValue::new("Quote")
            .with("symbol", symbol.to_uppercase())
            .with("price", (base * 100.0).round() / 100.0)
            .with("change", (change * 100.0).round() / 100.0)
            .with("volume", ((h >> 8) % 10_000_000) as i64)
            .with("tick", tick as i64)
    }
}

impl SoapService for StockQuoteService {
    fn namespace(&self) -> &str {
        NAMESPACE
    }

    fn operations(&self) -> Vec<OperationDescriptor> {
        operations()
    }

    fn registry(&self) -> TypeRegistry {
        registry()
    }

    fn call(&self, request: &RpcRequest) -> Result<Value, SoapFault> {
        match request.operation.as_str() {
            "getQuote" => {
                let symbol = request
                    .param("symbol")
                    .and_then(Value::as_str)
                    .ok_or_else(|| SoapFault::client("missing 'symbol'"))?;
                if symbol.is_empty() {
                    return Err(SoapFault::client("empty symbol"));
                }
                Ok(Value::Struct(self.quote(symbol)))
            }
            "getQuotes" => {
                let symbols = request
                    .param("symbols")
                    .and_then(Value::as_str)
                    .ok_or_else(|| SoapFault::client("missing 'symbols'"))?;
                let quotes: Vec<Value> = symbols
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|s| Value::Struct(self.quote(s)))
                    .collect();
                Ok(Value::Array(quotes))
            }
            other => Err(SoapFault::client(format!("unknown operation '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get_quote(svc: &StockQuoteService, sym: &str) -> StructValue {
        let req = RpcRequest::new(NAMESPACE, "getQuote").with_param("symbol", sym);
        svc.call(&req).unwrap().as_struct().unwrap().clone()
    }

    #[test]
    fn quotes_are_deterministic_within_a_tick() {
        let svc = StockQuoteService::new();
        assert_eq!(get_quote(&svc, "ibm"), get_quote(&svc, "ibm"));
        assert_ne!(get_quote(&svc, "ibm"), get_quote(&svc, "sun"));
    }

    #[test]
    fn ticks_move_the_market() {
        let svc = StockQuoteService::new();
        let before = get_quote(&svc, "ibm");
        svc.advance_tick();
        let after = get_quote(&svc, "ibm");
        assert_ne!(before, after);
        assert_eq!(after.get("tick"), Some(&Value::Long(1)));
    }

    #[test]
    fn symbols_are_normalized() {
        let svc = StockQuoteService::new();
        assert_eq!(
            get_quote(&svc, "ibm").get("symbol"),
            Some(&Value::string("IBM"))
        );
    }

    #[test]
    fn batch_quotes_parse_the_list() {
        let svc = StockQuoteService::new();
        let req = RpcRequest::new(NAMESPACE, "getQuotes").with_param("symbols", "ibm, sun,, hp ");
        let v = svc.call(&req).unwrap();
        let quotes = v.as_array().unwrap();
        assert_eq!(quotes.len(), 3);
    }

    #[test]
    fn bad_requests_fault() {
        let svc = StockQuoteService::new();
        assert!(svc.call(&RpcRequest::new(NAMESPACE, "getQuote")).is_err());
        assert!(svc
            .call(&RpcRequest::new(NAMESPACE, "getQuote").with_param("symbol", ""))
            .is_err());
        assert!(svc.call(&RpcRequest::new(NAMESPACE, "shortSell")).is_err());
    }

    #[test]
    fn policy_uses_a_short_ttl() {
        let p = default_policy();
        assert_eq!(p.for_operation("getQuote").ttl, Duration::from_secs(15));
        assert!(p.for_operation("getQuote").cacheable);
        assert!(!p.for_operation("somethingElse").cacheable);
    }
}

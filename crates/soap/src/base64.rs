//! Base64 (RFC 4648, standard alphabet) — used for `xsd:base64Binary`
//! payloads such as the `doGetCachedPage` response.

use crate::error::SoapError;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes to a padded base64 string.
///
/// ```
/// assert_eq!(wsrc_soap::base64::encode(b"Man"), "TWFu");
/// assert_eq!(wsrc_soap::base64::encode(b"Ma"), "TWE=");
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes a base64 string, tolerating embedded ASCII whitespace (XML
/// canonical form allows line breaks inside base64 content).
///
/// # Errors
///
/// Returns an encoding error for illegal characters, bad padding or a
/// truncated final quantum.
pub fn decode(text: &str) -> Result<Vec<u8>, SoapError> {
    let mut out = Vec::with_capacity(text.len() / 4 * 3);
    let mut quad = [0u8; 4];
    let mut filled = 0;
    let mut pad = 0;
    for c in text.chars() {
        if c.is_ascii_whitespace() {
            continue;
        }
        let v = match c {
            'A'..='Z' => c as u8 - b'A',
            'a'..='z' => c as u8 - b'a' + 26,
            '0'..='9' => c as u8 - b'0' + 52,
            '+' => 62,
            '/' => 63,
            '=' => {
                pad += 1;
                if pad > 2 {
                    return Err(SoapError::encoding("too much base64 padding"));
                }
                quad[filled] = 0;
                filled += 1;
                if filled == 4 {
                    flush(&quad, pad, &mut out)?;
                    filled = 0;
                }
                continue;
            }
            other => {
                return Err(SoapError::encoding(format!(
                    "invalid base64 character '{other}'"
                )));
            }
        };
        if pad > 0 {
            return Err(SoapError::encoding("base64 data after padding"));
        }
        quad[filled] = v;
        filled += 1;
        if filled == 4 {
            flush(&quad, 0, &mut out)?;
            filled = 0;
        }
    }
    if filled != 0 {
        return Err(SoapError::encoding("truncated base64 quantum"));
    }
    Ok(out)
}

fn flush(quad: &[u8; 4], pad: usize, out: &mut Vec<u8>) -> Result<(), SoapError> {
    let triple = ((quad[0] as u32) << 18)
        | ((quad[1] as u32) << 12)
        | ((quad[2] as u32) << 6)
        | quad[3] as u32;
    out.push((triple >> 16) as u8);
    if pad < 2 {
        out.push((triple >> 8) as u8);
    }
    if pad < 1 {
        out.push(triple as u8);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let vectors: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, enc) in vectors {
            assert_eq!(encode(raw), *enc);
            assert_eq!(decode(enc).unwrap(), *raw);
        }
    }

    #[test]
    fn binary_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn whitespace_is_tolerated() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
        assert_eq!(decode("  Zg = = ".replace(' ', "").as_str()).unwrap(), b"f");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        for bad in ["Zg=", "Z", "Zg===", "Zg==Zg==X", "!@#$", "Z===", "=Zg="] {
            assert!(decode(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn large_payload_roundtrip() {
        let data = vec![0xA5u8; 5000];
        let enc = encode(&data);
        assert_eq!(enc.len(), data.len().div_ceil(3) * 4);
        assert_eq!(decode(&enc).unwrap(), data);
    }
}

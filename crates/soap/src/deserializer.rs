//! Deserialization of SOAP envelopes back into application objects.
//!
//! [`ResponseReader`] is a SAX [`ContentHandler`]: it can be fed either by
//! the XML parser (cache-miss path; [`read_response_xml`]) or by replaying
//! a recorded event sequence (cache-hit path for the post-parsing
//! representation; [`read_response_events`]). The cost difference between
//! those two entry points is the paper's first optimization.
//!
//! Server-side request parsing ([`parse_request`]) is DOM-based: it is not
//! on the latency-critical client path.

use crate::base64;
use crate::envelope;
use crate::error::SoapError;
use crate::fault::SoapFault;
use crate::rpc::{OperationDescriptor, RpcOutcome, RpcRequest};
use wsrc_model::typeinfo::{FieldType, TypeRegistry};
use wsrc_model::value::{StructValue, Value};
use wsrc_xml::event::SaxEventSequence;
use wsrc_xml::sax::ContentHandler;
use wsrc_xml::{Attributes, QName, Symbol, XmlReader};

/// Reads a response envelope (parse + deserialize).
///
/// # Errors
///
/// Returns XML errors for malformed documents and encoding errors for
/// well-formed documents that are not valid responses. A SOAP fault is
/// *not* an error — it is returned as [`RpcOutcome::Fault`].
pub fn read_response_xml(
    xml: &str,
    expected: &FieldType,
    registry: &TypeRegistry,
) -> Result<RpcOutcome, SoapError> {
    let mut reader = ResponseReader::new(expected.clone(), registry.clone());
    XmlReader::new(xml)
        .parse_into(&mut reader)
        .map_err(flatten_parse_error)?;
    reader.finish()
}

/// Reads a response from a recorded SAX event sequence (deserialize only —
/// no XML parsing happens).
///
/// # Errors
///
/// Same conditions as [`read_response_xml`], minus XML syntax errors.
pub fn read_response_events(
    events: &SaxEventSequence,
    expected: &FieldType,
    registry: &TypeRegistry,
) -> Result<RpcOutcome, SoapError> {
    let mut reader = ResponseReader::new(expected.clone(), registry.clone());
    events.replay(&mut reader)?;
    reader.finish()
}

/// Reads a response envelope while also producing its SAX event
/// sequence, so a cache miss pays for only one parse.
///
/// The parse records borrowed payloads straight into the arena sequence
/// ([`XmlReader::read_sequence`]) — no owned intermediate events exist —
/// and the deserializer then replays the arena, which is the same cheap
/// walk the cache-hit path uses.
///
/// # Errors
///
/// Same conditions as [`read_response_xml`].
pub fn read_response_xml_recording(
    xml: &str,
    expected: &FieldType,
    registry: &TypeRegistry,
) -> Result<(RpcOutcome, SaxEventSequence), SoapError> {
    let events = XmlReader::new(xml)
        .read_sequence()
        .map_err(SoapError::Xml)?;
    let outcome = read_response_events(&events, expected, registry)?;
    Ok((outcome, events))
}

/// [`read_response_xml_recording`] over raw body bytes (the transport's
/// shared `Arc<[u8]>` payload): the reader UTF-8-validates the whole
/// buffer once up front and parses without a `&str` round-trip.
///
/// # Errors
///
/// Same conditions as [`read_response_xml_recording`], plus an XML error
/// when the bytes are not valid UTF-8.
pub fn read_response_bytes_recording(
    bytes: &[u8],
    expected: &FieldType,
    registry: &TypeRegistry,
) -> Result<(RpcOutcome, SaxEventSequence), SoapError> {
    let events = XmlReader::from_bytes(bytes)
        .and_then(XmlReader::read_sequence)
        .map_err(SoapError::Xml)?;
    let outcome = read_response_events(&events, expected, registry)?;
    Ok((outcome, events))
}

fn flatten_parse_error(e: wsrc_xml::reader::ParseIntoError<SoapError>) -> SoapError {
    match e {
        wsrc_xml::reader::ParseIntoError::Parse(xe) => SoapError::Xml(xe),
        wsrc_xml::reader::ParseIntoError::Handler(se) => se,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    BeforeEnvelope,
    InEnvelope,
    InBody,
    InWrapper,
    InValue,
    AfterValue,
    InFault,
    AfterBody,
    Done,
}

#[derive(Debug)]
struct Frame {
    /// Element local name as written (field xml name / `item`). An
    /// interned symbol shared with the event that delivered it — frames
    /// on the replay hit path allocate nothing for names.
    name: Symbol,
    expected: Option<FieldType>,
    xsi_type_local: Option<String>,
    nil: bool,
    text: String,
    strukt: Option<StructValue>,
    items: Option<Vec<Value>>,
}

impl Frame {
    fn is_container(&self) -> bool {
        self.strukt.is_some() || self.items.is_some()
    }
}

/// A streaming deserializer for RPC response envelopes.
///
/// Feed it SAX events (from a parser or a replayed recording), then call
/// [`finish`](ResponseReader::finish).
#[derive(Debug)]
pub struct ResponseReader {
    registry: TypeRegistry,
    expected: FieldType,
    state: State,
    frames: Vec<Frame>,
    result: Option<Value>,
    skipping: usize,
    fault_code: String,
    fault_string: String,
    fault_detail: Option<String>,
    fault_field: Option<&'static str>,
    saw_fault: bool,
    fault_depth: usize,
}

impl ResponseReader {
    /// Creates a reader expecting a return value of `expected` type.
    pub fn new(expected: FieldType, registry: TypeRegistry) -> Self {
        ResponseReader {
            registry,
            expected,
            state: State::BeforeEnvelope,
            frames: Vec::new(),
            result: None,
            skipping: 0,
            fault_code: String::new(),
            fault_string: String::new(),
            fault_detail: None,
            fault_field: None,
            saw_fault: false,
            fault_depth: 0,
        }
    }

    /// Consumes the reader, yielding the outcome.
    ///
    /// # Errors
    ///
    /// Returns an encoding error when no complete response was seen.
    pub fn finish(self) -> Result<RpcOutcome, SoapError> {
        if self.saw_fault {
            return Ok(RpcOutcome::Fault(SoapFault {
                code: self.fault_code,
                string: self.fault_string,
                detail: self.fault_detail,
            }));
        }
        if self.state != State::Done {
            return Err(SoapError::encoding("incomplete response envelope"));
        }
        // A void operation has no return element.
        Ok(RpcOutcome::Return(self.result.unwrap_or(Value::Null)))
    }

    fn push_value_frame(
        &mut self,
        name: &QName,
        attributes: Attributes<'_>,
        expected: Option<FieldType>,
    ) {
        let mut nil = false;
        let mut xsi_type_local = None;
        for a in attributes {
            match a.name.local_part() {
                "nil" | "null" => {
                    nil = a.value == "true" || a.value == "1";
                }
                "type" if !a.name.prefix().is_empty() || a.name.local_part() == "type" => {
                    // Keep only the local part of the QName value
                    // ("xsd:int" → "int", "ns1:Pt" → "Pt").
                    let local = a.value.split_once(':').map(|(_, l)| l).unwrap_or(a.value);
                    xsi_type_local = Some(local.to_string());
                }
                _ => {}
            }
        }
        self.frames.push(Frame {
            name: name.local_symbol().clone(),
            expected,
            xsi_type_local,
            nil,
            text: String::new(),
            strukt: None,
            items: None,
        });
    }

    /// Expected type for a child element of the current frame.
    fn child_expectation(&mut self, child: &QName) -> Option<FieldType> {
        let frame = self.frames.last_mut()?;
        // Materialize the container on first child.
        if !frame.is_container() {
            let effective = frame
                .expected
                .clone()
                .or_else(|| type_from_xsi(frame.xsi_type_local.as_deref()));
            match effective {
                Some(FieldType::ArrayOf(inner)) => {
                    frame.items = Some(Vec::new());
                    frame.expected = Some(FieldType::ArrayOf(inner));
                }
                Some(FieldType::Struct(type_name)) => {
                    frame.strukt = Some(StructValue::new(type_name.clone()));
                    frame.expected = Some(FieldType::Struct(type_name));
                }
                _ => {
                    // Untyped: arrays are recognized by the SOAP-ENC Array
                    // xsi:type or by `item` children; anything else becomes
                    // a dynamic struct named after its xsi:type or element.
                    let is_array = frame
                        .xsi_type_local
                        .as_deref()
                        .map(|t| t == "Array")
                        .unwrap_or(child.local_part() == "item");
                    if is_array {
                        frame.items = Some(Vec::new());
                    } else {
                        let type_name = frame
                            .xsi_type_local
                            .clone()
                            .unwrap_or_else(|| frame.name.as_str().to_string());
                        frame.strukt = Some(StructValue::new(type_name));
                    }
                }
            }
        }
        if frame.items.is_some() {
            if let Some(FieldType::ArrayOf(inner)) = &frame.expected {
                return Some((**inner).clone());
            }
            return None;
        }
        if let Some(s) = &frame.strukt {
            let type_name = s.type_name().to_string();
            return self
                .registry
                .get(&type_name)
                .and_then(|d| d.field_by_xml_name(child.local_part()))
                .map(|f| f.field_type.clone());
        }
        None
    }

    fn finalize_frame(&mut self, frame: Frame) -> Result<Value, SoapError> {
        if frame.nil {
            return Ok(Value::Null);
        }
        if let Some(items) = frame.items {
            return Ok(Value::Array(items));
        }
        if let Some(s) = frame.strukt {
            return Ok(Value::Struct(s));
        }
        // Scalar: decide the lexical type.
        let effective = frame
            .expected
            .clone()
            .or_else(|| type_from_xsi(frame.xsi_type_local.as_deref()));
        parse_scalar(&frame.text, effective.as_ref(), frame.name.as_str())
    }

    fn attach(&mut self, value: Value, name: &str) -> Result<(), SoapError> {
        let Some(parent) = self.frames.last_mut() else {
            self.result = Some(value);
            return Ok(());
        };
        if let Some(items) = &mut parent.items {
            items.push(value);
            return Ok(());
        }
        if let Some(s) = &mut parent.strukt {
            let type_name = s.type_name().to_string();
            let field_name = self
                .registry
                .get(&type_name)
                .and_then(|d| d.field_by_xml_name(name))
                .map(|f| f.name.clone())
                .unwrap_or_else(|| name.to_string());
            s.set(field_name, value);
            return Ok(());
        }
        Err(SoapError::encoding(format!(
            "element <{name}> nested inside a scalar value"
        )))
    }
}

/// Maps an `xsi:type` local name to a field type.
fn type_from_xsi(local: Option<&str>) -> Option<FieldType> {
    match local? {
        "string" => Some(FieldType::String),
        "int" | "integer" | "short" | "byte" => Some(FieldType::Int),
        "long" => Some(FieldType::Long),
        "double" | "float" | "decimal" => Some(FieldType::Double),
        "boolean" => Some(FieldType::Bool),
        "base64Binary" | "base64" => Some(FieldType::Bytes),
        _ => None,
    }
}

fn parse_scalar(text: &str, ty: Option<&FieldType>, element: &str) -> Result<Value, SoapError> {
    let bad =
        |what: &str| SoapError::encoding(format!("invalid {what} value '{text}' in <{element}>"));
    match ty {
        Some(FieldType::Bool) => match text.trim() {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(bad("boolean")),
        },
        Some(FieldType::Int) => text
            .trim()
            .parse::<i32>()
            .map(Value::Int)
            .map_err(|_| bad("int")),
        Some(FieldType::Long) => text
            .trim()
            .parse::<i64>()
            .map(Value::Long)
            .map_err(|_| bad("long")),
        Some(FieldType::Double) => match text.trim() {
            "INF" => Ok(Value::Double(f64::INFINITY)),
            "-INF" => Ok(Value::Double(f64::NEG_INFINITY)),
            "NaN" => Ok(Value::Double(f64::NAN)),
            t => t
                .parse::<f64>()
                .map(Value::Double)
                .map_err(|_| bad("double")),
        },
        Some(FieldType::Bytes) => base64::decode(text.trim()).map(Value::Bytes),
        // Empty element of struct/array type is an empty instance.
        Some(FieldType::Struct(name)) if text.trim().is_empty() => {
            Ok(Value::Struct(StructValue::new(name.clone())))
        }
        Some(FieldType::ArrayOf(_)) if text.trim().is_empty() => Ok(Value::Array(Vec::new())),
        Some(FieldType::String) | None => Ok(Value::string(text)),
        Some(other) => Err(SoapError::encoding(format!(
            "scalar text in <{element}> where {other} was expected"
        ))),
    }
}

impl ContentHandler for ResponseReader {
    type Error = SoapError;

    fn start_element(&mut self, name: &QName, attributes: Attributes<'_>) -> Result<(), SoapError> {
        if self.skipping > 0 {
            self.skipping += 1;
            return Ok(());
        }
        match self.state {
            State::BeforeEnvelope => {
                if !envelope::is_envelope(name) {
                    return Err(SoapError::encoding(format!(
                        "expected <Envelope>, found <{name}>"
                    )));
                }
                self.state = State::InEnvelope;
            }
            State::InEnvelope => {
                if envelope::is_header(name) {
                    self.skipping = 1;
                } else if envelope::is_body(name) {
                    self.state = State::InBody;
                } else {
                    return Err(SoapError::encoding(format!(
                        "unexpected <{name}> inside Envelope"
                    )));
                }
            }
            State::InBody => {
                if envelope::is_fault(name) {
                    self.state = State::InFault;
                    self.saw_fault = true;
                    self.fault_depth = 1;
                } else {
                    self.state = State::InWrapper;
                }
            }
            State::InWrapper => {
                self.push_value_frame(name, attributes, Some(self.expected.clone()));
                self.state = State::InValue;
            }
            State::InValue => {
                let expected = self.child_expectation(name);
                self.push_value_frame(name, attributes, expected);
            }
            State::AfterValue => {
                return Err(SoapError::encoding(format!(
                    "unexpected second return element <{name}>"
                )));
            }
            State::InFault => {
                self.fault_depth += 1;
                self.fault_field = match name.local_part() {
                    "faultcode" => Some("code"),
                    "faultstring" => Some("string"),
                    "detail" => Some("detail"),
                    _ => self.fault_field,
                };
            }
            State::AfterBody | State::Done => {
                return Err(SoapError::encoding(format!(
                    "unexpected <{name}> after Body"
                )));
            }
        }
        Ok(())
    }

    fn end_element(&mut self, _name: &QName) -> Result<(), SoapError> {
        if self.skipping > 0 {
            self.skipping -= 1;
            return Ok(());
        }
        match self.state {
            State::InValue => {
                let frame = self.frames.pop().expect("InValue implies a frame");
                let element_name = frame.name.clone();
                let value = self.finalize_frame(frame)?;
                if self.frames.is_empty() {
                    self.result = Some(value);
                    self.state = State::AfterValue;
                } else {
                    self.attach(value, element_name.as_str())?;
                }
            }
            State::AfterValue | State::InWrapper => {
                // closing the opResponse wrapper
                self.state = State::InBody;
            }
            State::InFault => {
                self.fault_depth -= 1;
                if self.fault_depth == 0 {
                    self.state = State::InBody;
                }
                self.fault_field = None;
            }
            State::InBody => {
                // closing Body
                self.state = State::AfterBody;
            }
            State::AfterBody => {
                // closing Envelope
                self.state = State::Done;
            }
            State::InEnvelope | State::BeforeEnvelope | State::Done => {
                return Err(SoapError::encoding("unbalanced end element"));
            }
        }
        Ok(())
    }

    fn characters(&mut self, text: &str) -> Result<(), SoapError> {
        if self.skipping > 0 {
            return Ok(());
        }
        match self.state {
            State::InValue => {
                let frame = self.frames.last_mut().expect("InValue implies a frame");
                if frame.is_container() {
                    if !text.trim().is_empty() {
                        return Err(SoapError::encoding(format!(
                            "mixed content in <{}>",
                            frame.name
                        )));
                    }
                } else {
                    frame.text.push_str(text);
                }
            }
            State::InFault => match self.fault_field {
                Some("code") => self.fault_code.push_str(text),
                Some("string") => self.fault_string.push_str(text),
                Some("detail") => {
                    self.fault_detail
                        .get_or_insert_with(String::new)
                        .push_str(text);
                }
                _ => {}
            },
            _ => {
                if !text.trim().is_empty() {
                    return Err(SoapError::encoding("unexpected character data"));
                }
            }
        }
        Ok(())
    }
}

/// Reads a response from a parsed DOM tree — the paper's *other*
/// post-parsing representation ("If the parser is a DOM parser, a DOM
/// tree object, as the post-parsing representation, is created", §3.3).
/// No XML parsing happens; the tree is walked directly.
///
/// # Errors
///
/// Returns encoding errors for documents that are not valid responses.
pub fn read_response_dom(
    document: &wsrc_xml::Document,
    expected: &FieldType,
    registry: &TypeRegistry,
) -> Result<RpcOutcome, SoapError> {
    let root = &document.root;
    if !envelope::is_envelope(&root.name) {
        return Err(SoapError::encoding("root element is not Envelope"));
    }
    let body = root
        .child_elements()
        .find(|e| envelope::is_body(&e.name))
        .ok_or_else(|| SoapError::encoding("missing Body"))?;
    let first = body
        .child_elements()
        .next()
        .ok_or_else(|| SoapError::encoding("empty Body"))?;
    if envelope::is_fault(&first.name) {
        let text_of = |name: &str| {
            first
                .child_elements()
                .find(|e| e.name.local_part() == name)
                .map(|e| e.text())
        };
        return Ok(RpcOutcome::Fault(SoapFault {
            code: text_of("faultcode").unwrap_or_default(),
            string: text_of("faultstring").unwrap_or_default(),
            detail: text_of("detail"),
        }));
    }
    // The opResponse wrapper's first child element is the return value.
    match first.child_elements().next() {
        Some(ret) => Ok(RpcOutcome::Return(element_to_value(
            ret,
            Some(expected),
            registry,
        )?)),
        None => Ok(RpcOutcome::Return(Value::Null)),
    }
}

/// Parses a request envelope on the server side, matching it against the
/// service's operations.
///
/// # Errors
///
/// Returns XML errors for malformed documents, and encoding errors when
/// the body is missing, the operation is unknown, or a parameter fails to
/// parse under its declared type.
pub fn parse_request(
    xml: &str,
    operations: &[OperationDescriptor],
    registry: &TypeRegistry,
) -> Result<RpcRequest, SoapError> {
    let doc = wsrc_xml::Document::parse(xml)?;
    if !envelope::is_envelope(&doc.root.name) {
        return Err(SoapError::encoding("root element is not Envelope"));
    }
    let body = doc
        .root
        .child_elements()
        .find(|e| envelope::is_body(&e.name))
        .ok_or_else(|| SoapError::encoding("missing Body"))?;
    let call = body
        .child_elements()
        .next()
        .ok_or_else(|| SoapError::encoding("empty Body"))?;
    let op_name = call.name.local_part();
    let descriptor = operations
        .iter()
        .find(|o| o.name == op_name)
        .ok_or_else(|| SoapError::encoding(format!("unknown operation '{op_name}'")))?;
    let mut request = RpcRequest::new(descriptor.namespace.clone(), descriptor.name.clone());
    for param_elem in call.child_elements() {
        let pname = param_elem.name.local_part();
        let expected = descriptor.param(pname).map(|p| p.field_type.clone());
        let value = element_to_value(param_elem, expected.as_ref(), registry)?;
        request.params.push((pname.to_string(), value));
    }
    descriptor.check_request(&request)?;
    Ok(request)
}

/// Converts a DOM element into a value under an optional expected type —
/// shared by request parsing and tests.
///
/// # Errors
///
/// Returns encoding errors for text that does not parse under the
/// effective type.
pub fn element_to_value(
    elem: &wsrc_xml::Element,
    expected: Option<&FieldType>,
    registry: &TypeRegistry,
) -> Result<Value, SoapError> {
    let nil = elem.attributes.iter().any(|a| {
        matches!(a.name.local_part(), "nil" | "null") && (a.value == "true" || a.value == "1")
    });
    if nil {
        return Ok(Value::Null);
    }
    let xsi_local = elem
        .attributes
        .iter()
        .find(|a| a.name.local_part() == "type")
        .map(|a| {
            a.value
                .split_once(':')
                .map(|(_, l)| l)
                .unwrap_or(&a.value)
                .to_string()
        });
    let effective = expected
        .cloned()
        .or_else(|| type_from_xsi(xsi_local.as_deref()));
    let children: Vec<_> = elem.child_elements().collect();
    if children.is_empty() {
        return match effective {
            Some(ft) => parse_scalar(&elem.text(), Some(&ft), elem.name.local_part()),
            None => {
                // Untyped empty-ish element: Array xsi:type means empty array.
                if xsi_local.as_deref() == Some("Array") {
                    Ok(Value::Array(Vec::new()))
                } else {
                    parse_scalar(&elem.text(), None, elem.name.local_part())
                }
            }
        };
    }
    match effective {
        Some(FieldType::ArrayOf(inner)) => {
            let mut items = Vec::with_capacity(children.len());
            for c in children {
                items.push(element_to_value(c, Some(&inner), registry)?);
            }
            Ok(Value::Array(items))
        }
        Some(FieldType::Struct(type_name)) => {
            let mut s = StructValue::new(type_name.clone());
            let descriptor = registry.get(&type_name);
            for c in children {
                let xml_name = c.name.local_part();
                let field = descriptor.and_then(|d| d.field_by_xml_name(xml_name));
                let fv = element_to_value(c, field.map(|f| &f.field_type), registry)?;
                let fname = field
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| xml_name.to_string());
                s.set(fname, fv);
            }
            Ok(Value::Struct(s))
        }
        _ => {
            // Untyped with children: array when they are all <item>,
            // dynamic struct otherwise.
            if children.iter().all(|c| c.name.local_part() == "item")
                && (xsi_local.as_deref() == Some("Array") || !children.is_empty())
            {
                let mut items = Vec::with_capacity(children.len());
                for c in children {
                    items.push(element_to_value(c, None, registry)?);
                }
                Ok(Value::Array(items))
            } else {
                let type_name = xsi_local.unwrap_or_else(|| elem.name.local_part().to_string());
                let mut s = StructValue::new(type_name);
                for c in children {
                    let fv = element_to_value(c, None, registry)?;
                    s.set(c.name.local_part().to_string(), fv);
                }
                Ok(Value::Struct(s))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serializer::{serialize_fault, serialize_request, serialize_response};
    use wsrc_model::typeinfo::{FieldDescriptor, TypeDescriptor};

    fn registry() -> TypeRegistry {
        TypeRegistry::builder()
            .register(TypeDescriptor::new(
                "Pt",
                vec![
                    FieldDescriptor::new("x", FieldType::Int),
                    FieldDescriptor::new("y", FieldType::Int),
                ],
            ))
            .register(TypeDescriptor::new(
                "Box",
                vec![
                    FieldDescriptor::new("label", FieldType::String),
                    FieldDescriptor::new(
                        "corners",
                        FieldType::ArrayOf(Box::new(FieldType::Struct("Pt".into()))),
                    ),
                    FieldDescriptor::new("payload", FieldType::Bytes),
                ],
            ))
            .build()
    }

    fn roundtrip(value: &Value, expected: &FieldType) -> Value {
        let r = registry();
        let xml = serialize_response("urn:t", "op", "return", value, &r).unwrap();
        match read_response_xml(&xml, expected, &r).unwrap() {
            RpcOutcome::Return(v) => v,
            RpcOutcome::Fault(f) => panic!("unexpected fault {f}"),
        }
    }

    #[test]
    fn scalar_responses_roundtrip() {
        assert_eq!(
            roundtrip(&Value::string("hello world"), &FieldType::String),
            Value::string("hello world")
        );
        assert_eq!(
            roundtrip(&Value::Int(-42), &FieldType::Int),
            Value::Int(-42)
        );
        assert_eq!(
            roundtrip(&Value::Long(1i64 << 40), &FieldType::Long),
            Value::Long(1i64 << 40)
        );
        assert_eq!(
            roundtrip(&Value::Bool(true), &FieldType::Bool),
            Value::Bool(true)
        );
        assert_eq!(
            roundtrip(&Value::Double(2.5), &FieldType::Double),
            Value::Double(2.5)
        );
        assert_eq!(roundtrip(&Value::Null, &FieldType::String), Value::Null);
        assert_eq!(
            roundtrip(&Value::Bytes(vec![0, 1, 254, 255]), &FieldType::Bytes),
            Value::Bytes(vec![0, 1, 254, 255])
        );
    }

    #[test]
    fn empty_string_and_whitespace_are_preserved() {
        assert_eq!(
            roundtrip(&Value::string(""), &FieldType::String),
            Value::string("")
        );
        assert_eq!(
            roundtrip(&Value::string("  padded  "), &FieldType::String),
            Value::string("  padded  ")
        );
    }

    #[test]
    fn struct_responses_roundtrip() {
        let v = Value::Struct(
            StructValue::new("Box")
                .with("label", "b1")
                .with(
                    "corners",
                    vec![
                        Value::Struct(StructValue::new("Pt").with("x", 1).with("y", 2)),
                        Value::Struct(StructValue::new("Pt").with("x", 3).with("y", 4)),
                    ],
                )
                .with("payload", vec![9u8, 8, 7]),
        );
        assert_eq!(roundtrip(&v, &FieldType::Struct("Box".into())), v);
    }

    #[test]
    fn nested_nulls_roundtrip() {
        let v = Value::Struct(StructValue::new("Box").with("label", Value::Null));
        assert_eq!(roundtrip(&v, &FieldType::Struct("Box".into())), v);
    }

    #[test]
    fn arrays_of_scalars_roundtrip() {
        let v = Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(
            roundtrip(&v, &FieldType::ArrayOf(Box::new(FieldType::Int))),
            v
        );
        let empty = Value::Array(vec![]);
        assert_eq!(
            roundtrip(&empty, &FieldType::ArrayOf(Box::new(FieldType::Int))),
            empty
        );
    }

    #[test]
    fn untyped_deserialization_uses_xsi_type() {
        // Reading with an untyped expectation recovers types from xsi:type.
        let r = registry();
        let xml = serialize_response(
            "urn:t",
            "op",
            "return",
            &Value::Array(vec![Value::Int(7), Value::string("s")]),
            &r,
        )
        .unwrap();
        // Expected type String is wrong-but-permissive only for scalars;
        // use the dynamic path by expecting a struct-free "anyType":
        let out =
            read_response_xml(&xml, &FieldType::ArrayOf(Box::new(FieldType::String)), &r).unwrap();
        // With expected=array-of-string, the int lexical "7" is a string.
        assert_eq!(
            out.as_return().unwrap(),
            &Value::Array(vec![Value::string("7"), Value::string("s")])
        );
    }

    #[test]
    fn events_path_equals_xml_path() {
        let r = registry();
        let v = Value::Struct(StructValue::new("Box").with("label", "xyz").with(
            "corners",
            vec![Value::Struct(
                StructValue::new("Pt").with("x", 5).with("y", 6),
            )],
        ));
        let expected = FieldType::Struct("Box".into());
        let xml = serialize_response("urn:t", "op", "return", &v, &r).unwrap();
        let (from_xml, events) = read_response_xml_recording(&xml, &expected, &r).unwrap();
        let from_events = read_response_events(&events, &expected, &r).unwrap();
        assert_eq!(from_xml, from_events);
        assert_eq!(from_xml.as_return().unwrap(), &v);
        // The recorded sequence is the full document's events.
        assert!(events.len() > 10);
    }

    #[test]
    fn dom_path_equals_sax_path() {
        let r = registry();
        let v = Value::Struct(
            StructValue::new("Box")
                .with("label", "dom")
                .with(
                    "corners",
                    vec![Value::Struct(
                        StructValue::new("Pt").with("x", 1).with("y", 2),
                    )],
                )
                .with("payload", vec![1u8, 2]),
        );
        let expected = FieldType::Struct("Box".into());
        let xml = serialize_response("urn:t", "op", "return", &v, &r).unwrap();
        let document = wsrc_xml::Document::parse(&xml).unwrap();
        let from_dom = read_response_dom(&document, &expected, &r).unwrap();
        let from_xml = read_response_xml(&xml, &expected, &r).unwrap();
        assert_eq!(from_dom, from_xml);
        assert_eq!(from_dom.as_return().unwrap(), &v);
        // Faults read through the DOM too.
        let fault_xml =
            crate::serializer::serialize_fault(&SoapFault::server("dom fault").with_detail("d"))
                .unwrap();
        let fault_doc = wsrc_xml::Document::parse(&fault_xml).unwrap();
        match read_response_dom(&fault_doc, &expected, &r).unwrap() {
            RpcOutcome::Fault(f) => assert_eq!(f.string, "dom fault"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn fault_responses_are_outcomes_not_errors() {
        let r = registry();
        let fault = SoapFault::server("backend exploded").with_detail("lp0 on fire");
        let xml = serialize_fault(&fault).unwrap();
        match read_response_xml(&xml, &FieldType::String, &r).unwrap() {
            RpcOutcome::Fault(f) => {
                assert_eq!(f.string, "backend exploded");
                assert_eq!(f.code, "soapenv:Server");
                assert_eq!(f.detail.as_deref(), Some("lp0 on fire"));
            }
            RpcOutcome::Return(v) => panic!("expected fault, got {v:?}"),
        }
    }

    #[test]
    fn header_elements_are_skipped() {
        let r = registry();
        let xml = "<soapenv:Envelope xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\">\
                   <soapenv:Header><auth><token>t</token></auth></soapenv:Header>\
                   <soapenv:Body><opResponse><return xsi:type=\"xsd:string\" xmlns:xsi=\"x\" xmlns:xsd=\"y\">ok</return></opResponse></soapenv:Body>\
                   </soapenv:Envelope>";
        let out = read_response_xml(xml, &FieldType::String, &r).unwrap();
        assert_eq!(out.as_return().unwrap(), &Value::string("ok"));
    }

    #[test]
    fn malformed_envelopes_are_rejected() {
        let r = registry();
        for xml in [
            "<notsoap/>",
            "<soapenv:Envelope xmlns:soapenv=\"e\"><soapenv:Body></soapenv:Body>", // truncated
            "<Envelope><Wrong/></Envelope>",
        ] {
            assert!(
                read_response_xml(xml, &FieldType::String, &r).is_err(),
                "expected error for {xml:?}"
            );
        }
    }

    #[test]
    fn type_mismatches_are_encoding_errors() {
        let r = registry();
        let xml = serialize_response("urn:t", "op", "return", &Value::string("not-a-number"), &r)
            .unwrap();
        let e = read_response_xml(&xml, &FieldType::Int, &r).unwrap_err();
        assert!(matches!(e, SoapError::Encoding(_)), "{e}");
        let e = read_response_xml(&xml, &FieldType::Bool, &r).unwrap_err();
        assert!(matches!(e, SoapError::Encoding(_)), "{e}");
    }

    #[test]
    fn void_responses_return_null() {
        let r = registry();
        let xml = "<soapenv:Envelope xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\">\
                   <soapenv:Body><opResponse/></soapenv:Body></soapenv:Envelope>";
        let out = read_response_xml(xml, &FieldType::String, &r).unwrap();
        assert_eq!(out.as_return().unwrap(), &Value::Null);
    }

    #[test]
    fn second_return_element_is_rejected() {
        let r = registry();
        let xml = "<Envelope><Body><opResponse>\
                   <return xsi:type=\"xsd:string\" xmlns:xsi=\"x\" xmlns:xsd=\"y\">a</return>\
                   <return2>b</return2>\
                   </opResponse></Body></Envelope>";
        assert!(read_response_xml(xml, &FieldType::String, &r).is_err());
    }

    #[test]
    fn request_parsing_matches_serialization() {
        let r = registry();
        let ops = vec![OperationDescriptor::new(
            "urn:t",
            "doThing",
            vec![
                FieldDescriptor::new("q", FieldType::String),
                FieldDescriptor::new("max", FieldType::Int),
                FieldDescriptor::new("flag", FieldType::Bool),
            ],
            FieldType::String,
        )];
        let req = RpcRequest::new("urn:t", "doThing")
            .with_param("q", "search terms")
            .with_param("max", 10)
            .with_param("flag", false);
        let xml = serialize_request(&req, &r).unwrap();
        let parsed = parse_request(&xml, &ops, &r).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_with_struct_param_roundtrips() {
        let r = registry();
        let ops = vec![OperationDescriptor::new(
            "urn:t",
            "plot",
            vec![FieldDescriptor::new("at", FieldType::Struct("Pt".into()))],
            FieldType::String,
        )];
        let req = RpcRequest::new("urn:t", "plot").with_param(
            "at",
            Value::Struct(StructValue::new("Pt").with("x", 7).with("y", 8)),
        );
        let xml = serialize_request(&req, &r).unwrap();
        assert_eq!(parse_request(&xml, &ops, &r).unwrap(), req);
    }

    #[test]
    fn unknown_operations_and_missing_params_are_rejected() {
        let r = registry();
        let ops = vec![OperationDescriptor::new(
            "urn:t",
            "doThing",
            vec![FieldDescriptor::new("q", FieldType::String)],
            FieldType::String,
        )];
        let unknown = serialize_request(&RpcRequest::new("urn:t", "doOther"), &r).unwrap();
        assert!(parse_request(&unknown, &ops, &r).is_err());
        let missing = serialize_request(&RpcRequest::new("urn:t", "doThing"), &r).unwrap();
        assert!(parse_request(&missing, &ops, &r).is_err());
    }

    #[test]
    fn garbage_xml_is_rejected_as_xml_error() {
        let r = registry();
        let e = read_response_xml("<<<", &FieldType::String, &r).unwrap_err();
        assert!(matches!(e, SoapError::Xml(_)));
        assert!(parse_request("<<<", &[], &r).is_err());
    }
}

//! SOAP 1.1 envelope constants and recognition helpers.

use wsrc_xml::QName;

/// SOAP 1.1 envelope namespace.
pub const SOAP_ENV_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";
/// SOAP 1.1 encoding namespace (`SOAP-ENC`).
pub const SOAP_ENC_NS: &str = "http://schemas.xmlsoap.org/soap/encoding/";
/// XML Schema datatypes namespace.
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema";
/// XML Schema instance namespace (`xsi:type`, `xsi:nil`).
pub const XSI_NS: &str = "http://www.w3.org/2001/XMLSchema-instance";

/// Prefix conventions used by our writer (readers accept any prefix).
pub const PREFIX_ENV: &str = "soapenv";
/// Writer prefix for the encoding namespace.
pub const PREFIX_ENC: &str = "soapenc";
/// Writer prefix for XML Schema datatypes.
pub const PREFIX_XSD: &str = "xsd";
/// Writer prefix for the schema-instance namespace.
pub const PREFIX_XSI: &str = "xsi";
/// Writer prefix for the service namespace.
pub const PREFIX_SERVICE: &str = "ns1";

/// The MIME type of SOAP 1.1 messages.
pub const CONTENT_TYPE: &str = "text/xml; charset=utf-8";

// Precomputed qualified names for the writer's fixed vocabulary. The
// serializer used to assemble each of these with `format!` on every
// element it wrote; they are spelled out once here instead (a test
// asserts they stay in sync with the PREFIX_* constants above).

/// `soapenv:Envelope` element name.
pub const QN_ENVELOPE: &str = "soapenv:Envelope";
/// `soapenv:Body` element name.
pub const QN_BODY: &str = "soapenv:Body";
/// `soapenv:Fault` element name.
pub const QN_FAULT: &str = "soapenv:Fault";
/// `soapenv:encodingStyle` attribute name.
pub const QN_ENCODING_STYLE: &str = "soapenv:encodingStyle";
/// `xsi:type` attribute name.
pub const QN_XSI_TYPE: &str = "xsi:type";
/// `xsi:nil` attribute name.
pub const QN_XSI_NIL: &str = "xsi:nil";
/// `xsd:boolean` type name.
pub const QN_XSD_BOOLEAN: &str = "xsd:boolean";
/// `xsd:int` type name.
pub const QN_XSD_INT: &str = "xsd:int";
/// `xsd:long` type name.
pub const QN_XSD_LONG: &str = "xsd:long";
/// `xsd:double` type name.
pub const QN_XSD_DOUBLE: &str = "xsd:double";
/// `xsd:string` type name.
pub const QN_XSD_STRING: &str = "xsd:string";
/// `xsd:base64Binary` type name.
pub const QN_XSD_BASE64: &str = "xsd:base64Binary";
/// `soapenc:Array` type name.
pub const QN_ENC_ARRAY: &str = "soapenc:Array";
/// `soapenc:arrayType` attribute name.
pub const QN_ENC_ARRAY_TYPE: &str = "soapenc:arrayType";

/// Whether `name` is the envelope's `Envelope` element (any prefix).
pub fn is_envelope(name: &QName) -> bool {
    name.local_part() == "Envelope"
}

/// Whether `name` is the `Body` element (any prefix).
pub fn is_body(name: &QName) -> bool {
    name.local_part() == "Body"
}

/// Whether `name` is the `Header` element (any prefix).
pub fn is_header(name: &QName) -> bool {
    name.local_part() == "Header"
}

/// Whether `name` is the `Fault` element (any prefix).
pub fn is_fault(name: &QName) -> bool {
    name.local_part() == "Fault"
}

/// The conventional response wrapper name for an operation
/// (`doGoogleSearch` → `doGoogleSearchResponse`).
pub fn response_wrapper(operation: &str) -> String {
    format!("{operation}Response")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognition_ignores_prefixes() {
        assert!(is_envelope(&QName::parse("soapenv:Envelope")));
        assert!(is_envelope(&QName::parse("SOAP-ENV:Envelope")));
        assert!(is_envelope(&QName::parse("Envelope")));
        assert!(!is_envelope(&QName::parse("Body")));
        assert!(is_body(&QName::parse("s:Body")));
        assert!(is_header(&QName::parse("s:Header")));
        assert!(is_fault(&QName::parse("s:Fault")));
    }

    #[test]
    fn response_wrapper_convention() {
        assert_eq!(response_wrapper("doGoogleSearch"), "doGoogleSearchResponse");
    }

    #[test]
    fn precomputed_names_match_prefixes() {
        for (qn, prefix, local) in [
            (QN_ENVELOPE, PREFIX_ENV, "Envelope"),
            (QN_BODY, PREFIX_ENV, "Body"),
            (QN_FAULT, PREFIX_ENV, "Fault"),
            (QN_ENCODING_STYLE, PREFIX_ENV, "encodingStyle"),
            (QN_XSI_TYPE, PREFIX_XSI, "type"),
            (QN_XSI_NIL, PREFIX_XSI, "nil"),
            (QN_XSD_BOOLEAN, PREFIX_XSD, "boolean"),
            (QN_XSD_INT, PREFIX_XSD, "int"),
            (QN_XSD_LONG, PREFIX_XSD, "long"),
            (QN_XSD_DOUBLE, PREFIX_XSD, "double"),
            (QN_XSD_STRING, PREFIX_XSD, "string"),
            (QN_XSD_BASE64, PREFIX_XSD, "base64Binary"),
            (QN_ENC_ARRAY, PREFIX_ENC, "Array"),
            (QN_ENC_ARRAY_TYPE, PREFIX_ENC, "arrayType"),
        ] {
            assert_eq!(qn, format!("{prefix}:{local}"));
        }
    }
}

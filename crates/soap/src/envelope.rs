//! SOAP 1.1 envelope constants and recognition helpers.

use wsrc_xml::QName;

/// SOAP 1.1 envelope namespace.
pub const SOAP_ENV_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";
/// SOAP 1.1 encoding namespace (`SOAP-ENC`).
pub const SOAP_ENC_NS: &str = "http://schemas.xmlsoap.org/soap/encoding/";
/// XML Schema datatypes namespace.
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema";
/// XML Schema instance namespace (`xsi:type`, `xsi:nil`).
pub const XSI_NS: &str = "http://www.w3.org/2001/XMLSchema-instance";

/// Prefix conventions used by our writer (readers accept any prefix).
pub const PREFIX_ENV: &str = "soapenv";
/// Writer prefix for the encoding namespace.
pub const PREFIX_ENC: &str = "soapenc";
/// Writer prefix for XML Schema datatypes.
pub const PREFIX_XSD: &str = "xsd";
/// Writer prefix for the schema-instance namespace.
pub const PREFIX_XSI: &str = "xsi";
/// Writer prefix for the service namespace.
pub const PREFIX_SERVICE: &str = "ns1";

/// The MIME type of SOAP 1.1 messages.
pub const CONTENT_TYPE: &str = "text/xml; charset=utf-8";

/// Whether `name` is the envelope's `Envelope` element (any prefix).
pub fn is_envelope(name: &QName) -> bool {
    name.local_part() == "Envelope"
}

/// Whether `name` is the `Body` element (any prefix).
pub fn is_body(name: &QName) -> bool {
    name.local_part() == "Body"
}

/// Whether `name` is the `Header` element (any prefix).
pub fn is_header(name: &QName) -> bool {
    name.local_part() == "Header"
}

/// Whether `name` is the `Fault` element (any prefix).
pub fn is_fault(name: &QName) -> bool {
    name.local_part() == "Fault"
}

/// The conventional response wrapper name for an operation
/// (`doGoogleSearch` → `doGoogleSearchResponse`).
pub fn response_wrapper(operation: &str) -> String {
    format!("{operation}Response")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognition_ignores_prefixes() {
        assert!(is_envelope(&QName::parse("soapenv:Envelope")));
        assert!(is_envelope(&QName::parse("SOAP-ENV:Envelope")));
        assert!(is_envelope(&QName::parse("Envelope")));
        assert!(!is_envelope(&QName::parse("Body")));
        assert!(is_body(&QName::parse("s:Body")));
        assert!(is_header(&QName::parse("s:Header")));
        assert!(is_fault(&QName::parse("s:Fault")));
    }

    #[test]
    fn response_wrapper_convention() {
        assert_eq!(response_wrapper("doGoogleSearch"), "doGoogleSearchResponse");
    }
}

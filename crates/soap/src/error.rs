//! Error type for the SOAP layer.

use crate::fault::SoapFault;
use std::error::Error;
use std::fmt;

/// An error from SOAP encoding or decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum SoapError {
    /// The XML was malformed.
    Xml(wsrc_xml::XmlError),
    /// The XML was well-formed but not a valid SOAP message for the
    /// expected shape.
    Encoding(String),
    /// The peer returned a SOAP fault.
    Fault(SoapFault),
    /// A model-layer problem (unknown type, type mismatch, …).
    Model(wsrc_model::ModelError),
}

impl SoapError {
    /// Convenience constructor for encoding violations.
    pub fn encoding(msg: impl Into<String>) -> Self {
        SoapError::Encoding(msg.into())
    }
}

impl fmt::Display for SoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoapError::Xml(e) => write!(f, "{e}"),
            SoapError::Encoding(m) => write!(f, "soap encoding error: {m}"),
            SoapError::Fault(fault) => write!(f, "soap fault: {fault}"),
            SoapError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SoapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SoapError::Xml(e) => Some(e),
            SoapError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wsrc_xml::XmlError> for SoapError {
    fn from(e: wsrc_xml::XmlError) -> Self {
        SoapError::Xml(e)
    }
}

impl From<wsrc_model::ModelError> for SoapError {
    fn from(e: wsrc_model::ModelError) -> Self {
        SoapError::Model(e)
    }
}

impl From<SoapFault> for SoapError {
    fn from(f: SoapFault) -> Self {
        SoapError::Fault(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: SoapError = wsrc_xml::XmlError::new("bad").into();
        assert!(e.to_string().contains("bad"));
        let e = SoapError::encoding("missing Body");
        assert!(e.to_string().contains("missing Body"));
        let e: SoapError = SoapFault::server("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: SoapError = wsrc_model::ModelError::UnknownType("T".into()).into();
        assert!(e.to_string().contains("'T'"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + Error>() {}
        assert_bounds::<SoapError>();
    }
}

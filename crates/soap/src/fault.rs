//! SOAP 1.1 faults.

use std::fmt;

/// A SOAP 1.1 fault, as carried in `<soapenv:Fault>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapFault {
    /// `faultcode`, e.g. `soapenv:Server` or `soapenv:Client`.
    pub code: String,
    /// `faultstring` — human-readable explanation.
    pub string: String,
    /// Optional `detail` text.
    pub detail: Option<String>,
}

impl SoapFault {
    /// A `Server` fault (problem processing the call).
    pub fn server(message: impl Into<String>) -> Self {
        SoapFault {
            code: "soapenv:Server".into(),
            string: message.into(),
            detail: None,
        }
    }

    /// A `Client` fault (malformed or unsupported request).
    pub fn client(message: impl Into<String>) -> Self {
        SoapFault {
            code: "soapenv:Client".into(),
            string: message.into(),
            detail: None,
        }
    }

    /// Builder-style detail setter.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// Whether this is a client-side fault.
    pub fn is_client_fault(&self) -> bool {
        self.code.ends_with("Client")
    }
}

impl fmt::Display for SoapFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.string)?;
        if let Some(d) = &self.detail {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

impl std::error::Error for SoapFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let f = SoapFault::server("backend died").with_detail("stack trace");
        assert_eq!(f.code, "soapenv:Server");
        assert!(!f.is_client_fault());
        assert_eq!(f.to_string(), "soapenv:Server: backend died (stack trace)");
        let c = SoapFault::client("no such operation");
        assert!(c.is_client_fault());
        assert_eq!(c.to_string(), "soapenv:Client: no such operation");
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! SOAP 1.1 layer: envelopes, RPC-style typed encoding, faults.
//!
//! The client middleware serializes request application objects into SOAP
//! envelopes ([`serializer`]) and turns response envelopes back into
//! application objects ([`deserializer`]). Deserialization has two entry
//! points with very different costs — the distinction the paper's first
//! optimization exploits:
//!
//! - [`deserializer::read_response_xml`]: XML parsing **plus**
//!   deserialization (the cache-miss path, and the cache-hit path when
//!   the cache stores raw XML messages);
//! - [`deserializer::read_response_events`]: deserialization only, by
//!   replaying a recorded SAX event sequence (the cache-hit path when the
//!   cache stores the post-parsing representation).

pub mod base64;
pub mod deserializer;
pub mod envelope;
pub mod error;
pub mod fault;
pub mod rpc;
pub mod serializer;

pub use error::SoapError;
pub use fault::SoapFault;
pub use rpc::{OperationDescriptor, RpcOutcome, RpcRequest};

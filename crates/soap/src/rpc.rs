//! RPC-style call model: requests, outcomes and operation descriptors.

use crate::fault::SoapFault;
use wsrc_model::typeinfo::{FieldDescriptor, FieldType};
use wsrc_model::Value;

/// One RPC invocation: operation, service namespace, named parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcRequest {
    /// Service namespace URI, e.g. `urn:GoogleSearch`.
    pub namespace: String,
    /// Operation (method) name, e.g. `doGoogleSearch`.
    pub operation: String,
    /// Parameters in call order.
    pub params: Vec<(String, Value)>,
}

impl RpcRequest {
    /// Creates a request with no parameters.
    pub fn new(namespace: impl Into<String>, operation: impl Into<String>) -> Self {
        RpcRequest {
            namespace: namespace.into(),
            operation: operation.into(),
            params: Vec::new(),
        }
    }

    /// Builder-style parameter appender.
    pub fn with_param(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.params.push((name.into(), value.into()));
        self
    }

    /// Looks a parameter up by name.
    pub fn param(&self, name: &str) -> Option<&Value> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// The result of an RPC exchange: a return value or a fault.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcOutcome {
    /// Normal completion with the (possibly `Null`) return value.
    Return(Value),
    /// The server signalled a fault.
    Fault(SoapFault),
}

impl RpcOutcome {
    /// Unwraps the return value, converting faults into errors.
    ///
    /// # Errors
    ///
    /// Returns the fault as a [`crate::SoapError::Fault`].
    pub fn into_return(self) -> Result<Value, crate::SoapError> {
        match self {
            RpcOutcome::Return(v) => Ok(v),
            RpcOutcome::Fault(f) => Err(f.into()),
        }
    }

    /// The return value if this is a normal completion.
    pub fn as_return(&self) -> Option<&Value> {
        match self {
            RpcOutcome::Return(v) => Some(v),
            RpcOutcome::Fault(_) => None,
        }
    }
}

/// Static description of one service operation: the information a WSDL
/// `portType`/`binding` pair carries, used by the serializer (parameter
/// order/types), the deserializer (return type) and the server dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationDescriptor {
    /// Operation name.
    pub name: String,
    /// Service namespace URI.
    pub namespace: String,
    /// `SOAPAction` header value.
    pub soap_action: String,
    /// Declared parameters in call order.
    pub params: Vec<FieldDescriptor>,
    /// Declared return type.
    pub return_type: FieldType,
    /// Name of the return element (`return` by convention).
    pub return_name: String,
}

impl OperationDescriptor {
    /// Creates a descriptor with the conventional empty `SOAPAction` and
    /// `return` element name.
    pub fn new(
        namespace: impl Into<String>,
        name: impl Into<String>,
        params: Vec<FieldDescriptor>,
        return_type: FieldType,
    ) -> Self {
        let name = name.into();
        OperationDescriptor {
            soap_action: format!("urn:{name}"),
            name,
            namespace: namespace.into(),
            params,
            return_type,
            return_name: "return".into(),
        }
    }

    /// Looks up a parameter descriptor by name.
    pub fn param(&self, name: &str) -> Option<&FieldDescriptor> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Validates that a request matches this descriptor (same operation,
    /// every declared parameter present).
    ///
    /// # Errors
    ///
    /// Returns an encoding error naming the first missing parameter.
    pub fn check_request(&self, request: &RpcRequest) -> Result<(), crate::SoapError> {
        if request.operation != self.name {
            return Err(crate::SoapError::encoding(format!(
                "request is for '{}', descriptor is '{}'",
                request.operation, self.name
            )));
        }
        for p in &self.params {
            if request.param(&p.name).is_none() {
                return Err(crate::SoapError::encoding(format!(
                    "missing parameter '{}' for operation '{}'",
                    p.name, self.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor() -> OperationDescriptor {
        OperationDescriptor::new(
            "urn:GoogleSearch",
            "doSpellingSuggestion",
            vec![
                FieldDescriptor::new("key", FieldType::String),
                FieldDescriptor::new("phrase", FieldType::String),
            ],
            FieldType::String,
        )
    }

    #[test]
    fn request_builder_and_lookup() {
        let r = RpcRequest::new("urn:GoogleSearch", "doSpellingSuggestion")
            .with_param("key", "k")
            .with_param("phrase", "helo wrld");
        assert_eq!(r.param("phrase").and_then(Value::as_str), Some("helo wrld"));
        assert!(r.param("missing").is_none());
    }

    #[test]
    fn outcome_unwrapping() {
        let ok = RpcOutcome::Return(Value::Int(1));
        assert_eq!(ok.as_return(), Some(&Value::Int(1)));
        assert_eq!(ok.into_return().unwrap(), Value::Int(1));
        let fault = RpcOutcome::Fault(SoapFault::server("x"));
        assert!(fault.as_return().is_none());
        assert!(fault.into_return().is_err());
    }

    #[test]
    fn check_request_validates_parameters() {
        let d = descriptor();
        let good = RpcRequest::new("urn:GoogleSearch", "doSpellingSuggestion")
            .with_param("key", "k")
            .with_param("phrase", "p");
        assert!(d.check_request(&good).is_ok());
        let missing =
            RpcRequest::new("urn:GoogleSearch", "doSpellingSuggestion").with_param("key", "k");
        assert!(d.check_request(&missing).is_err());
        let wrong_op = RpcRequest::new("urn:GoogleSearch", "doGoogleSearch");
        assert!(d.check_request(&wrong_op).is_err());
    }

    #[test]
    fn descriptor_defaults() {
        let d = descriptor();
        assert_eq!(d.soap_action, "urn:doSpellingSuggestion");
        assert_eq!(d.return_name, "return");
        assert!(d.param("key").is_some());
        assert!(d.param("zzz").is_none());
    }
}

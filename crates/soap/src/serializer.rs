//! Serialization of application objects into SOAP envelopes.

use crate::base64;
use crate::envelope::*;
use crate::error::SoapError;
use crate::fault::SoapFault;
use crate::rpc::RpcRequest;
use wsrc_model::typeinfo::TypeRegistry;
use wsrc_model::Value;
use wsrc_xml::XmlWriter;

/// Serializes an RPC request into a SOAP 1.1 envelope.
///
/// The registry supplies XML element names for struct fields; parameters
/// of unregistered struct types fall back to their field names.
///
/// # Errors
///
/// Propagates writer errors (which indicate a bug rather than bad input).
pub fn serialize_request(
    request: &RpcRequest,
    registry: &TypeRegistry,
) -> Result<String, SoapError> {
    let mut w = XmlWriter::with_declaration();
    start_envelope(&mut w)?;
    w.start(QN_BODY)?;
    w.start(format!("{PREFIX_SERVICE}:{}", request.operation))?;
    w.attr(QN_ENCODING_STYLE, SOAP_ENC_NS)?;
    w.namespace(PREFIX_SERVICE, &request.namespace)?;
    for (name, value) in &request.params {
        write_value(&mut w, name, value, registry)?;
    }
    w.end()?; // operation
    w.end()?; // Body
    w.end()?; // Envelope
    Ok(w.finish()?)
}

/// Serializes a normal RPC response (`<opResponse><return>…`).
///
/// # Errors
///
/// Propagates writer errors.
pub fn serialize_response(
    namespace: &str,
    operation: &str,
    return_name: &str,
    value: &Value,
    registry: &TypeRegistry,
) -> Result<String, SoapError> {
    let mut w = XmlWriter::with_declaration();
    start_envelope(&mut w)?;
    w.start(QN_BODY)?;
    w.start(format!("{PREFIX_SERVICE}:{}", response_wrapper(operation)))?;
    w.attr(QN_ENCODING_STYLE, SOAP_ENC_NS)?;
    w.namespace(PREFIX_SERVICE, namespace)?;
    write_value(&mut w, return_name, value, registry)?;
    w.end()?; // wrapper
    w.end()?; // Body
    w.end()?; // Envelope
    Ok(w.finish()?)
}

/// Serializes a fault envelope.
///
/// # Errors
///
/// Propagates writer errors.
pub fn serialize_fault(fault: &SoapFault) -> Result<String, SoapError> {
    let mut w = XmlWriter::with_declaration();
    start_envelope(&mut w)?;
    w.start(QN_BODY)?;
    w.start(QN_FAULT)?;
    w.element_with_text("faultcode", &fault.code)?;
    w.element_with_text("faultstring", &fault.string)?;
    if let Some(detail) = &fault.detail {
        w.element_with_text("detail", detail)?;
    }
    w.end()?; // Fault
    w.end()?; // Body
    w.end()?; // Envelope
    Ok(w.finish()?)
}

fn start_envelope(w: &mut XmlWriter) -> Result<(), SoapError> {
    w.start(QN_ENVELOPE)?;
    w.namespace(PREFIX_ENV, SOAP_ENV_NS)?;
    w.namespace(PREFIX_ENC, SOAP_ENC_NS)?;
    w.namespace(PREFIX_XSD, XSD_NS)?;
    w.namespace(PREFIX_XSI, XSI_NS)?;
    Ok(())
}

/// Writes one value as `<name xsi:type="…">…</name>` per SOAP encoding.
pub(crate) fn write_value(
    w: &mut XmlWriter,
    name: &str,
    value: &Value,
    registry: &TypeRegistry,
) -> Result<(), SoapError> {
    write_value_typed(w, name, value, registry, None)
}

/// Writes one value. When `declared` names the element's schema type, the
/// `xsi:type` attribute is omitted — schema-aware SOAP encoding: a reader
/// that knows the WSDL recovers the type from the descriptor, and the
/// paper-scale responses stay near their published byte sizes instead of
/// being dominated by per-element type annotations.
fn write_value_typed(
    w: &mut XmlWriter,
    name: &str,
    value: &Value,
    registry: &TypeRegistry,
    declared: Option<&wsrc_model::typeinfo::FieldType>,
) -> Result<(), SoapError> {
    use wsrc_model::typeinfo::FieldType;
    let known = declared.is_some();
    w.start(name)?;
    match value {
        Value::Null => {
            w.attr(QN_XSI_NIL, "true")?;
        }
        Value::Bool(b) => {
            if !known {
                w.attr(QN_XSI_TYPE, QN_XSD_BOOLEAN)?;
            }
            w.text(if *b { "true" } else { "false" })?;
        }
        Value::Int(i) => {
            if !known {
                w.attr(QN_XSI_TYPE, QN_XSD_INT)?;
            }
            w.text(i.to_string())?;
        }
        Value::Long(l) => {
            if !known {
                w.attr(QN_XSI_TYPE, QN_XSD_LONG)?;
            }
            w.text(l.to_string())?;
        }
        Value::Double(d) => {
            if !known {
                w.attr(QN_XSI_TYPE, QN_XSD_DOUBLE)?;
            }
            w.text(format_double(*d))?;
        }
        Value::String(s) => {
            if !known {
                w.attr(QN_XSI_TYPE, QN_XSD_STRING)?;
            }
            w.text(s.as_ref())?;
        }
        Value::Bytes(b) => {
            if !known {
                w.attr(QN_XSI_TYPE, QN_XSD_BASE64)?;
            }
            w.text(base64::encode(b))?;
        }
        Value::Array(items) => {
            let item_type = match declared {
                Some(FieldType::ArrayOf(inner)) => Some(inner.as_ref()),
                _ => None,
            };
            if item_type.is_none() {
                w.attr(QN_XSI_TYPE, QN_ENC_ARRAY)?;
                w.attr(
                    QN_ENC_ARRAY_TYPE,
                    format!("{PREFIX_XSD}:anyType[{}]", items.len()),
                )?;
            }
            for item in items {
                write_value_typed(w, "item", item, registry, item_type)?;
            }
        }
        Value::Struct(s) => {
            if !known {
                w.attr(QN_XSI_TYPE, format!("{PREFIX_SERVICE}:{}", s.type_name()))?;
            }
            let descriptor = registry.get(s.type_name());
            for (field_name, field_value) in s.fields() {
                let field = descriptor.and_then(|d| d.field(field_name));
                let xml_name = field.map(|f| f.xml_name.as_str()).unwrap_or(field_name);
                write_value_typed(
                    w,
                    xml_name,
                    field_value,
                    registry,
                    field.map(|f| &f.field_type),
                )?;
            }
        }
    }
    w.end()?;
    Ok(())
}

/// Formats a double per XML Schema lexical rules (enough digits to
/// round-trip, `INF`/`-INF`/`NaN` spellings).
pub(crate) fn format_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_string()
    } else if d == f64::INFINITY {
        "INF".to_string()
    } else if d == f64::NEG_INFINITY {
        "-INF".to_string()
    } else {
        format!("{d:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrc_model::value::StructValue;

    fn registry() -> TypeRegistry {
        use wsrc_model::typeinfo::{FieldDescriptor, FieldType, TypeDescriptor};
        TypeRegistry::builder()
            .register(TypeDescriptor::new(
                "Pt",
                vec![
                    FieldDescriptor::new("x", FieldType::Int),
                    FieldDescriptor::new("y", FieldType::Int),
                ],
            ))
            .build()
    }

    #[test]
    fn request_envelope_shape() {
        let req = RpcRequest::new("urn:GoogleSearch", "doSpellingSuggestion")
            .with_param("key", "k")
            .with_param("phrase", "hel lo");
        let xml = serialize_request(&req, &registry()).unwrap();
        assert!(xml.starts_with("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"));
        assert!(xml.contains("<soapenv:Envelope"));
        assert!(xml.contains("xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\""));
        assert!(xml.contains("<ns1:doSpellingSuggestion"));
        assert!(xml.contains("xmlns:ns1=\"urn:GoogleSearch\""));
        assert!(xml.contains("<key xsi:type=\"xsd:string\">k</key>"));
        assert!(xml.contains("<phrase xsi:type=\"xsd:string\">hel lo</phrase>"));
    }

    #[test]
    fn response_envelope_shape() {
        let xml = serialize_response(
            "urn:GoogleSearch",
            "doSpellingSuggestion",
            "return",
            &Value::string("hello"),
            &registry(),
        )
        .unwrap();
        assert!(xml.contains("<ns1:doSpellingSuggestionResponse"));
        assert!(xml.contains("<return xsi:type=\"xsd:string\">hello</return>"));
    }

    #[test]
    fn all_scalars_serialize() {
        let req = RpcRequest::new("urn:t", "op")
            .with_param("b", true)
            .with_param("i", -5)
            .with_param("l", 5_000_000_000i64)
            .with_param("d", 2.5)
            .with_param("n", Value::Null)
            .with_param("raw", vec![1u8, 2, 3]);
        let xml = serialize_request(&req, &registry()).unwrap();
        assert!(xml.contains("<b xsi:type=\"xsd:boolean\">true</b>"));
        assert!(xml.contains("<i xsi:type=\"xsd:int\">-5</i>"));
        assert!(xml.contains("<l xsi:type=\"xsd:long\">5000000000</l>"));
        assert!(xml.contains("<d xsi:type=\"xsd:double\">2.5</d>"));
        assert!(xml.contains("<n xsi:nil=\"true\"/>"));
        assert!(xml.contains("<raw xsi:type=\"xsd:base64Binary\">AQID</raw>"));
    }

    #[test]
    fn arrays_and_structs_serialize() {
        let value = Value::Array(vec![
            Value::Struct(StructValue::new("Pt").with("x", 1).with("y", 2)),
            Value::Struct(StructValue::new("Pt").with("x", 3).with("y", 4)),
        ]);
        let xml = serialize_response("urn:t", "op", "return", &value, &registry()).unwrap();
        assert!(xml.contains("soapenc:arrayType=\"xsd:anyType[2]\""));
        // The array itself is untyped (top level), so items carry
        // xsi:type; fields of the registered Pt type do not.
        assert!(xml.contains("<item xsi:type=\"ns1:Pt\"><x>1</x>"), "{xml}");
    }

    #[test]
    fn fault_envelope_shape() {
        let xml = serialize_fault(&SoapFault::server("kaput").with_detail("d")).unwrap();
        assert!(xml.contains("<soapenv:Fault>"));
        assert!(xml.contains("<faultcode>soapenv:Server</faultcode>"));
        assert!(xml.contains("<faultstring>kaput</faultstring>"));
        assert!(xml.contains("<detail>d</detail>"));
    }

    #[test]
    fn text_is_escaped() {
        let req = RpcRequest::new("urn:t", "op").with_param("q", "<script>&\"");
        let xml = serialize_request(&req, &registry()).unwrap();
        assert!(xml.contains("&lt;script&gt;&amp;\""));
        // And the result is well-formed.
        assert!(wsrc_xml::Document::parse(&xml).is_ok());
    }

    #[test]
    fn special_doubles_use_xsd_lexicals() {
        assert_eq!(format_double(f64::NAN), "NaN");
        assert_eq!(format_double(f64::INFINITY), "INF");
        assert_eq!(format_double(f64::NEG_INFINITY), "-INF");
        assert_eq!(format_double(0.5), "0.5");
    }
}

//! Property tests: serialize→deserialize is the identity for typed
//! values, and the SAX-replay path always agrees with the XML-parse path.

use proptest::prelude::*;
use wsrc_model::typeinfo::{FieldDescriptor, FieldType, TypeDescriptor, TypeRegistry};
use wsrc_model::value::{StructValue, Value};
use wsrc_soap::deserializer::{
    read_response_events, read_response_xml, read_response_xml_recording,
};
use wsrc_soap::rpc::RpcOutcome;
use wsrc_soap::serializer::serialize_response;

fn registry() -> TypeRegistry {
    TypeRegistry::builder()
        .register(TypeDescriptor::new(
            "Node",
            vec![
                FieldDescriptor::new("label", FieldType::String),
                FieldDescriptor::new("weight", FieldType::Double),
                FieldDescriptor::new("count", FieldType::Int),
                FieldDescriptor::new("flag", FieldType::Bool),
                FieldDescriptor::new("blob", FieldType::Bytes),
                FieldDescriptor::new(
                    "children",
                    FieldType::ArrayOf(Box::new(FieldType::Struct("Node".into()))),
                ),
            ],
        ))
        .build()
}

/// A typed value together with its declared type.
fn arb_typed(depth: u32) -> BoxedStrategy<(Value, FieldType)> {
    if depth == 0 {
        arb_scalar().boxed()
    } else {
        prop_oneof![
            arb_scalar(),
            // Homogeneous arrays.
            (proptest::collection::vec(arb_typed(0), 0..5)).prop_filter_map("same type", |pairs| {
                let ty = pairs.first().map(|(_, t)| t.clone())?;
                if pairs.iter().all(|(_, t)| *t == ty) {
                    let values = pairs.into_iter().map(|(v, _)| v).collect();
                    Some((Value::Array(values), FieldType::ArrayOf(Box::new(ty))))
                } else {
                    None
                }
            }),
            arb_node(depth).prop_map(|v| (v, FieldType::Struct("Node".into()))),
        ]
        .boxed()
    }
}

fn arb_scalar() -> BoxedStrategy<(Value, FieldType)> {
    prop_oneof![
        "[ -~]{0,30}".prop_map(|s| (Value::string(s), FieldType::String)),
        any::<i32>().prop_map(|i| (Value::Int(i), FieldType::Int)),
        any::<i64>().prop_map(|l| (Value::Long(l), FieldType::Long)),
        any::<bool>().prop_map(|b| (Value::Bool(b), FieldType::Bool)),
        (-1.0e9..1.0e9f64).prop_map(|d| (
            Value::Double(if d == 0.0 { 0.0 } else { d }),
            FieldType::Double
        )),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|b| (Value::Bytes(b), FieldType::Bytes)),
        Just((Value::Null, FieldType::String)),
    ]
    .boxed()
}

fn arb_node(depth: u32) -> BoxedStrategy<Value> {
    let leaf = ("[ -~]{0,16}", any::<i32>(), any::<bool>()).prop_map(|(label, count, flag)| {
        Value::Struct(
            StructValue::new("Node")
                .with("label", label)
                .with("count", count)
                .with("flag", flag),
        )
    });
    if depth == 0 {
        leaf.boxed()
    } else {
        (leaf, proptest::collection::vec(arb_node(depth - 1), 0..3))
            .prop_map(|(base, kids)| {
                let mut s = match base {
                    Value::Struct(s) => s,
                    _ => unreachable!(),
                };
                s.set("children", Value::Array(kids));
                Value::Struct(s)
            })
            .boxed()
    }
}

fn unwrap_return(o: RpcOutcome) -> Value {
    match o {
        RpcOutcome::Return(v) => v,
        RpcOutcome::Fault(f) => panic!("unexpected fault {f}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn typed_roundtrip_is_identity((value, ty) in arb_typed(3)) {
        let r = registry();
        let xml = serialize_response("urn:p", "op", "return", &value, &r).unwrap();
        let back = unwrap_return(read_response_xml(&xml, &ty, &r).unwrap());
        prop_assert_eq!(back, value);
    }

    #[test]
    fn sax_replay_equals_direct_parse((value, ty) in arb_typed(3)) {
        let r = registry();
        let xml = serialize_response("urn:p", "op", "return", &value, &r).unwrap();
        let (direct, events) = read_response_xml_recording(&xml, &ty, &r).unwrap();
        let replayed = read_response_events(&events, &ty, &r).unwrap();
        prop_assert_eq!(direct, replayed);
    }

    #[test]
    fn reader_never_panics_on_arbitrary_wellformed_xml(
        tag in "[a-z]{1,8}", text in "[ -~]{0,30}"
    ) {
        let r = registry();
        let xml = format!("<{tag}>{}</{tag}>", wsrc_xml::escape::escape_text(&text));
        let _ = read_response_xml(&xml, &FieldType::String, &r);
    }

    #[test]
    fn reader_never_panics_on_garbage(s in "\\PC{0,160}") {
        let r = registry();
        let _ = read_response_xml(&s, &FieldType::String, &r);
    }
}

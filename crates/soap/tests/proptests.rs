//! Randomized tests: serialize→deserialize is the identity for typed
//! values, and the SAX-replay path always agrees with the XML-parse path.
//!
//! The build environment is offline (no `proptest`), so these use a
//! hand-rolled deterministic xorshift generator with fixed seeds.

use wsrc_model::typeinfo::{FieldDescriptor, FieldType, TypeDescriptor, TypeRegistry};
use wsrc_model::value::{StructValue, Value};
use wsrc_soap::deserializer::{
    read_response_events, read_response_xml, read_response_xml_recording,
};
use wsrc_soap::rpc::RpcOutcome;
use wsrc_soap::serializer::serialize_response;

const CASES: u64 = 192;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn bytes(&mut self, max: usize) -> Vec<u8> {
        let n = self.below(max);
        (0..n).map(|_| self.next() as u8).collect()
    }

    /// Printable ASCII (space through tilde).
    fn printable(&mut self, max: usize) -> String {
        let n = self.below(max + 1);
        (0..n)
            .map(|_| (b' ' + self.below(95) as u8) as char)
            .collect()
    }

    /// A finite double in ±1e9, never -0.0.
    fn double(&mut self) -> f64 {
        let d = ((self.next() % 2_000_001) as f64 / 1_000_000.0 - 1.0) * 1.0e9;
        if d == 0.0 {
            0.0
        } else {
            d
        }
    }
}

fn registry() -> TypeRegistry {
    TypeRegistry::builder()
        .register(TypeDescriptor::new(
            "Node",
            vec![
                FieldDescriptor::new("label", FieldType::String),
                FieldDescriptor::new("weight", FieldType::Double),
                FieldDescriptor::new("count", FieldType::Int),
                FieldDescriptor::new("flag", FieldType::Bool),
                FieldDescriptor::new("blob", FieldType::Bytes),
                FieldDescriptor::new(
                    "children",
                    FieldType::ArrayOf(Box::new(FieldType::Struct("Node".into()))),
                ),
            ],
        ))
        .build()
}

fn arb_scalar(rng: &mut Rng) -> (Value, FieldType) {
    match rng.below(7) {
        0 => (Value::string(rng.printable(30)), FieldType::String),
        1 => (Value::Int(rng.next() as i32), FieldType::Int),
        2 => (Value::Long(rng.next() as i64), FieldType::Long),
        3 => (Value::Bool(rng.bool()), FieldType::Bool),
        4 => (Value::Double(rng.double()), FieldType::Double),
        5 => (Value::Bytes(rng.bytes(64)), FieldType::Bytes),
        _ => (Value::Null, FieldType::String),
    }
}

/// A typed value together with its declared type.
fn arb_typed(rng: &mut Rng, depth: u32) -> (Value, FieldType) {
    if depth == 0 {
        return arb_scalar(rng);
    }
    match rng.below(3) {
        0 => arb_scalar(rng),
        1 => {
            // A homogeneous array: generate one element type, then more
            // elements until one comes out a different type.
            let (first, ty) = arb_scalar(rng);
            let mut values = vec![first];
            for _ in 0..rng.below(4) {
                let (v, t) = arb_scalar(rng);
                if t == ty {
                    values.push(v);
                }
            }
            (Value::Array(values), FieldType::ArrayOf(Box::new(ty)))
        }
        _ => (arb_node(rng, depth), FieldType::Struct("Node".into())),
    }
}

fn arb_node(rng: &mut Rng, depth: u32) -> Value {
    let mut s = StructValue::new("Node")
        .with("label", rng.printable(16))
        .with("count", rng.next() as i32)
        .with("flag", rng.bool());
    if depth > 0 {
        let kids: Vec<Value> = (0..rng.below(3))
            .map(|_| arb_node(rng, depth - 1))
            .collect();
        s.set("children", Value::Array(kids));
    }
    Value::Struct(s)
}

fn unwrap_return(o: RpcOutcome) -> Value {
    match o {
        RpcOutcome::Return(v) => v,
        RpcOutcome::Fault(f) => panic!("unexpected fault {f}"),
    }
}

#[test]
fn typed_roundtrip_is_identity() {
    let r = registry();
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let (value, ty) = arb_typed(&mut rng, 3);
        let xml = serialize_response("urn:p", "op", "return", &value, &r).unwrap();
        let back = unwrap_return(read_response_xml(&xml, &ty, &r).unwrap());
        assert_eq!(back, value, "seed {seed}");
    }
}

#[test]
fn sax_replay_equals_direct_parse() {
    let r = registry();
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 1000);
        let (value, ty) = arb_typed(&mut rng, 3);
        let xml = serialize_response("urn:p", "op", "return", &value, &r).unwrap();
        let (direct, events) = read_response_xml_recording(&xml, &ty, &r).unwrap();
        let replayed = read_response_events(&events, &ty, &r).unwrap();
        assert_eq!(direct, replayed, "seed {seed}");
    }
}

#[test]
fn reader_never_panics_on_arbitrary_wellformed_xml() {
    let r = registry();
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 2000);
        let tag: String = (0..1 + rng.below(8))
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        let text = rng.printable(30);
        let xml = format!("<{tag}>{}</{tag}>", wsrc_xml::escape::escape_text(&text));
        let _ = read_response_xml(&xml, &FieldType::String, &r);
    }
}

#[test]
fn reader_never_panics_on_garbage() {
    let r = registry();
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 3000);
        let n = rng.below(160);
        let s: String = (0..n)
            .map(|_| char::from_u32(rng.next() as u32 % 0x300).unwrap_or('?'))
            .collect();
        let _ = read_response_xml(&s, &FieldType::String, &r);
    }
}

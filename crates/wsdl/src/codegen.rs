//! Rust stub generation — the WSDL2Java analog.
//!
//! Emits a self-contained Rust module (as source text) with one struct
//! per complex type, `From`/`TryFrom` conversions to and from
//! [`wsrc_model::Value`], and a typed service stub with one method per
//! operation. The output is illustrative of what a build-script step
//! would write into `OUT_DIR`; the test suite asserts its shape.

use crate::model::{Definitions, TypeRef, XsdType};
use std::fmt::Write as _;

/// Generates Rust stub source for a service.
pub fn generate_rust_stub(defs: &Definitions) -> String {
    let mut out = String::with_capacity(4096);
    let _ = writeln!(
        out,
        "//! Generated from WSDL '{}' (targetNamespace {}). Do not edit.",
        defs.name, defs.target_namespace
    );
    let _ = writeln!(out, "use wsrc_model::value::{{StructValue, Value}};\n");

    for ct in &defs.schema.types {
        let _ = writeln!(out, "/// Generated from complexType `{}`.", ct.name);
        let _ = writeln!(out, "#[derive(Debug, Clone, PartialEq, Default)]");
        let _ = writeln!(out, "pub struct {} {{", ct.name);
        for f in &ct.fields {
            let _ = writeln!(
                out,
                "    pub {}: {},",
                rust_field_name(&f.name),
                rust_type(&f.type_ref)
            );
        }
        let _ = writeln!(out, "}}\n");

        // Into Value.
        let _ = writeln!(out, "impl From<{}> for Value {{", ct.name);
        let _ = writeln!(out, "    fn from(v: {}) -> Value {{", ct.name);
        let _ = writeln!(
            out,
            "        let mut s = StructValue::new(\"{}\");",
            ct.name
        );
        for f in &ct.fields {
            let field = rust_field_name(&f.name);
            match &f.type_ref {
                TypeRef::ArrayOf(_) => {
                    let _ = writeln!(
                        out,
                        "        s.set(\"{}\", Value::Array(v.{field}.into_iter().map(Value::from).collect()));",
                        f.name
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "        s.set(\"{}\", Value::from(v.{field}));",
                        f.name
                    );
                }
            }
        }
        let _ = writeln!(out, "        Value::Struct(s)");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "}}\n");
    }

    // Service stub.
    let stub = format!("{}Stub", defs.port_type.name.replace("Port", ""));
    let _ = writeln!(out, "/// Typed stub for service `{}`.", defs.service.name);
    let _ = writeln!(out, "pub struct {stub}<C> {{ pub call: C }}\n");
    let _ = writeln!(out, "impl<C: wsrc_client::TypedCall> {stub}<C> {{");
    for op in &defs.port_type.operations {
        let input = defs.message(&op.input_message).expect("validated");
        let mut params = String::new();
        let mut pushes = String::new();
        for p in &input.parts {
            let _ = write!(
                params,
                ", {}: {}",
                rust_field_name(&p.name),
                rust_type(&p.type_ref)
            );
            let _ = writeln!(
                pushes,
                "        req = req.with_param(\"{}\", Value::from({}));",
                p.name,
                rust_field_name(&p.name)
            );
        }
        let _ = writeln!(
            out,
            "    pub fn {}(&self{params}) -> Result<Value, C::Error> {{",
            rust_field_name(&op.name)
        );
        let _ = writeln!(
            out,
            "        let mut req = wsrc_soap::RpcRequest::new(\"{}\", \"{}\");",
            defs.target_namespace, op.name
        );
        let _ = write!(out, "{pushes}");
        let _ = writeln!(out, "        self.call.invoke(req)");
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "}}");
    out
}

fn rust_type(r: &TypeRef) -> String {
    match r {
        TypeRef::Xsd(XsdType::String) => "String".into(),
        TypeRef::Xsd(XsdType::Int) => "i32".into(),
        TypeRef::Xsd(XsdType::Long) => "i64".into(),
        TypeRef::Xsd(XsdType::Double) => "f64".into(),
        TypeRef::Xsd(XsdType::Boolean) => "bool".into(),
        TypeRef::Xsd(XsdType::Base64Binary) => "Vec<u8>".into(),
        TypeRef::Complex(n) => n.clone(),
        TypeRef::ArrayOf(inner) => format!("Vec<{}>", rust_type(inner)),
    }
}

/// Converts camelCase WSDL names to snake_case Rust names.
fn rust_field_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::tests_fixture;

    #[test]
    fn generates_structs_and_stub() {
        let src = generate_rust_stub(&tests_fixture());
        for needle in [
            "pub struct Hit {",
            "pub title: String,",
            "pub score: f64,",
            "pub struct SearchResult {",
            "pub hits: Vec<Hit>,",
            "impl From<Hit> for Value {",
            "pub struct TinySearchStub<C>",
            "pub fn do_search(&self, q: String, max: i32)",
            "RpcRequest::new(\"urn:TinySearch\", \"doSearch\")",
        ] {
            assert!(
                src.contains(needle),
                "missing {needle:?} in generated code:\n{src}"
            );
        }
    }

    #[test]
    fn name_conversion() {
        assert_eq!(rust_field_name("doGoogleSearch"), "do_google_search");
        assert_eq!(rust_field_name("snippet"), "snippet");
        assert_eq!(rust_field_name("URL"), "u_r_l");
    }

    #[test]
    fn generated_code_is_balanced() {
        let src = generate_rust_stub(&tests_fixture());
        let opens = src.matches('{').count();
        let closes = src.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in generated code");
    }
}

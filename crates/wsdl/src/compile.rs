//! The "WSDL compiler": turns a [`Definitions`] into runtime artifacts —
//! a [`TypeRegistry`] and [`OperationDescriptor`]s.
//!
//! Paper §4.2.3: "The WSDL compiler in Apache-Axis generates Java classes
//! for the data types … The generated classes are serializable and
//! bean-type. Although the current WSDL compiler does not add clone
//! methods, it should be easy for the WSDL compiler to add a proper deep
//! clone method." [`CompileOptions::generate_clone`] is that switch.

use crate::model::{Definitions, TypeRef, XsdType};
use wsrc_model::typeinfo::{
    Capabilities, FieldDescriptor, FieldType, TypeDescriptor, TypeRegistry,
};
use wsrc_soap::rpc::OperationDescriptor;

/// Compiler switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Emit the proposed deep `clone()` on generated types (sets the
    /// `cloneable` capability). Off reproduces the stock Axis compiler.
    pub generate_clone: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            generate_clone: true,
        }
    }
}

/// The compiler's output: everything a client or server needs to speak
/// the service.
#[derive(Debug, Clone)]
pub struct CompiledService {
    /// Service namespace (the WSDL target namespace).
    pub namespace: String,
    /// Declared endpoint URL.
    pub endpoint_url: String,
    /// Generated type descriptors.
    pub registry: TypeRegistry,
    /// One descriptor per operation.
    pub operations: Vec<OperationDescriptor>,
}

impl CompiledService {
    /// Looks up an operation by name.
    pub fn operation(&self, name: &str) -> Option<&OperationDescriptor> {
        self.operations.iter().find(|o| o.name == name)
    }
}

/// Compiles a WSDL document.
///
/// # Errors
///
/// Returns a message for structurally invalid documents (dangling
/// references or response messages without exactly one part).
pub fn compile(defs: &Definitions, options: CompileOptions) -> Result<CompiledService, String> {
    defs.validate()?;
    let capabilities = if options.generate_clone {
        Capabilities {
            cloneable: true,
            ..Capabilities::wsdl_generated()
        }
    } else {
        Capabilities::wsdl_generated()
    };
    let mut registry = TypeRegistry::builder();
    for ct in &defs.schema.types {
        let fields = ct
            .fields
            .iter()
            .map(|f| FieldDescriptor::new(f.name.clone(), field_type(&f.type_ref)))
            .collect();
        registry = registry
            .register(TypeDescriptor::new(ct.name.clone(), fields).with_capabilities(capabilities));
    }
    let registry = registry.build();

    let mut operations = Vec::new();
    for op in &defs.port_type.operations {
        let input = defs
            .message(&op.input_message)
            .ok_or_else(|| format!("missing input message '{}'", op.input_message))?;
        let output = defs
            .message(&op.output_message)
            .ok_or_else(|| format!("missing output message '{}'", op.output_message))?;
        if output.parts.len() > 1 {
            return Err(format!(
                "operation '{}': multiple output parts are not supported",
                op.name
            ));
        }
        let params = input
            .parts
            .iter()
            .map(|p| FieldDescriptor::new(p.name.clone(), field_type(&p.type_ref)))
            .collect();
        let (return_type, return_name) = match output.parts.first() {
            Some(part) => (field_type(&part.type_ref), part.name.clone()),
            None => (FieldType::String, "return".to_string()), // void → nil string
        };
        let mut descriptor = OperationDescriptor::new(
            defs.target_namespace.clone(),
            op.name.clone(),
            params,
            return_type,
        );
        descriptor.return_name = return_name;
        operations.push(descriptor);
    }
    Ok(CompiledService {
        namespace: defs.target_namespace.clone(),
        endpoint_url: defs.service.endpoint_url.clone(),
        registry,
        operations,
    })
}

fn field_type(r: &TypeRef) -> FieldType {
    match r {
        TypeRef::Xsd(XsdType::String) => FieldType::String,
        TypeRef::Xsd(XsdType::Int) => FieldType::Int,
        TypeRef::Xsd(XsdType::Long) => FieldType::Long,
        TypeRef::Xsd(XsdType::Double) => FieldType::Double,
        TypeRef::Xsd(XsdType::Boolean) => FieldType::Bool,
        TypeRef::Xsd(XsdType::Base64Binary) => FieldType::Bytes,
        TypeRef::Complex(name) => FieldType::Struct(name.clone()),
        TypeRef::ArrayOf(inner) => FieldType::ArrayOf(Box::new(field_type(inner))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::tests_fixture;

    #[test]
    fn compiles_types_with_generated_capabilities() {
        let c = compile(&tests_fixture(), CompileOptions::default()).unwrap();
        let hit = c.registry.get("Hit").expect("Hit registered");
        assert!(hit.capabilities.serializable);
        assert!(hit.capabilities.bean);
        assert!(hit.capabilities.cloneable); // clone generation on
        let sr = c.registry.get("SearchResult").unwrap();
        assert_eq!(
            sr.field("hits").unwrap().field_type,
            FieldType::ArrayOf(Box::new(FieldType::Struct("Hit".into())))
        );
    }

    #[test]
    fn stock_compiler_omits_clone() {
        let c = compile(
            &tests_fixture(),
            CompileOptions {
                generate_clone: false,
            },
        )
        .unwrap();
        assert!(!c.registry.get("Hit").unwrap().capabilities.cloneable);
        assert!(c.registry.get("Hit").unwrap().capabilities.serializable);
    }

    #[test]
    fn compiles_operations() {
        let c = compile(&tests_fixture(), CompileOptions::default()).unwrap();
        assert_eq!(c.namespace, "urn:TinySearch");
        assert_eq!(c.endpoint_url, "http://tiny.test/soap");
        let op = c.operation("doSearch").expect("operation exists");
        assert_eq!(op.params.len(), 2);
        assert_eq!(op.params[0].field_type, FieldType::String);
        assert_eq!(op.params[1].field_type, FieldType::Int);
        assert_eq!(op.return_type, FieldType::Struct("SearchResult".into()));
        assert_eq!(op.return_name, "return");
        assert!(c.operation("nope").is_none());
    }

    #[test]
    fn invalid_documents_fail() {
        let mut d = tests_fixture();
        d.messages.remove(0);
        assert!(compile(&d, CompileOptions::default()).is_err());
    }

    #[test]
    fn multi_part_outputs_are_rejected() {
        let mut d = tests_fixture();
        d.messages[1]
            .parts
            .push(crate::model::Part::new("extra", TypeRef::Xsd(XsdType::Int)));
        let err = compile(&d, CompileOptions::default()).unwrap_err();
        assert!(err.contains("multiple output parts"));
    }

    #[test]
    fn parse_compile_pipeline_from_emitted_wsdl() {
        let xml = crate::writer::write_wsdl(&tests_fixture()).unwrap();
        let parsed = crate::parser::parse_wsdl(&xml).unwrap();
        let c = compile(&parsed, CompileOptions::default()).unwrap();
        assert_eq!(c.operations.len(), 1);
        assert_eq!(c.registry.len(), 2);
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! WSDL 1.1 (with an XML Schema subset): model, writer, parser and the
//! "WSDL compiler".
//!
//! In the paper's stack, service interfaces are described in WSDL and the
//! Axis WSDL compiler generates the Java classes the cache later copies —
//! "the generated classes are serializable and bean-type" (§4.2.3). Our
//! compiler ([`compile`]) turns a [`model::Definitions`] into a
//! [`wsrc_model::TypeRegistry`] with exactly those capabilities (plus an
//! optional generated deep clone, which the paper proposes) and a set of
//! [`wsrc_soap::OperationDescriptor`]s for the client and server. The
//! [`codegen`] module additionally emits Rust stub source, mirroring
//! WSDL2Java.

pub mod codegen;
pub mod compile;
pub mod model;
pub mod parser;
pub mod writer;

pub use compile::{compile, CompileOptions, CompiledService};
pub use model::{
    ComplexType, Definitions, Message, Part, PortType, Schema, SchemaField, Service, TypeRef,
    WsdlOperation, XsdType,
};

//! The WSDL 1.1 document model (pragmatic subset).
//!
//! Supported: one inline `<types>` schema of named complex types whose
//! fields are XSD scalars, other complex types, or arrays (expressed with
//! `maxOccurs="unbounded"`); request/response `<message>`s with typed
//! parts; one `<portType>`; one `<service>` with a SOAP address. This is
//! exactly the shape of the GoogleSearch.wsdl the paper's evaluation uses.

use std::fmt;

/// The XSD scalar types the stack maps to [`wsrc_model::Value`] variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XsdType {
    /// `xsd:string`.
    String,
    /// `xsd:int`.
    Int,
    /// `xsd:long`.
    Long,
    /// `xsd:double`.
    Double,
    /// `xsd:boolean`.
    Boolean,
    /// `xsd:base64Binary`.
    Base64Binary,
}

impl XsdType {
    /// The `xsd:` local name.
    pub fn name(&self) -> &'static str {
        match self {
            XsdType::String => "string",
            XsdType::Int => "int",
            XsdType::Long => "long",
            XsdType::Double => "double",
            XsdType::Boolean => "boolean",
            XsdType::Base64Binary => "base64Binary",
        }
    }

    /// Parses an `xsd:` local name.
    pub fn parse(name: &str) -> Option<XsdType> {
        match name {
            "string" => Some(XsdType::String),
            "int" => Some(XsdType::Int),
            "long" => Some(XsdType::Long),
            "double" => Some(XsdType::Double),
            "boolean" => Some(XsdType::Boolean),
            "base64Binary" => Some(XsdType::Base64Binary),
            _ => None,
        }
    }
}

impl fmt::Display for XsdType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xsd:{}", self.name())
    }
}

/// A reference to a type: scalar, named complex type, or array thereof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRef {
    /// An XSD scalar.
    Xsd(XsdType),
    /// A named complex type from the inline schema.
    Complex(String),
    /// An array of the inner type.
    ArrayOf(Box<TypeRef>),
}

impl TypeRef {
    /// Convenience: `TypeRef::ArrayOf` of `self`.
    pub fn array(self) -> TypeRef {
        TypeRef::ArrayOf(Box::new(self))
    }
}

impl fmt::Display for TypeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeRef::Xsd(x) => write!(f, "{x}"),
            TypeRef::Complex(n) => write!(f, "tns:{n}"),
            TypeRef::ArrayOf(inner) => write!(f, "{inner}[]"),
        }
    }
}

/// One element of a complex type's sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaField {
    /// Element name.
    pub name: String,
    /// Element type.
    pub type_ref: TypeRef,
}

impl SchemaField {
    /// Creates a field.
    pub fn new(name: impl Into<String>, type_ref: TypeRef) -> Self {
        SchemaField {
            name: name.into(),
            type_ref,
        }
    }
}

/// A named complex type (a sequence of typed elements).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplexType {
    /// Type name.
    pub name: String,
    /// Sequence elements in order.
    pub fields: Vec<SchemaField>,
}

impl ComplexType {
    /// Creates a complex type.
    pub fn new(name: impl Into<String>, fields: Vec<SchemaField>) -> Self {
        ComplexType {
            name: name.into(),
            fields,
        }
    }
}

/// The inline `<types>` schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// Schema target namespace.
    pub target_namespace: String,
    /// Named complex types.
    pub types: Vec<ComplexType>,
}

impl Schema {
    /// Looks up a complex type by name.
    pub fn complex_type(&self, name: &str) -> Option<&ComplexType> {
        self.types.iter().find(|t| t.name == name)
    }
}

/// One typed part of a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    /// Part (parameter) name.
    pub name: String,
    /// Part type.
    pub type_ref: TypeRef,
}

impl Part {
    /// Creates a part.
    pub fn new(name: impl Into<String>, type_ref: TypeRef) -> Self {
        Part {
            name: name.into(),
            type_ref,
        }
    }
}

/// A `<message>`: a named list of typed parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Message name.
    pub name: String,
    /// Parts in declaration order.
    pub parts: Vec<Part>,
}

/// One `<operation>` inside a port type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsdlOperation {
    /// Operation name.
    pub name: String,
    /// Name of the input message.
    pub input_message: String,
    /// Name of the output message.
    pub output_message: String,
}

/// A `<portType>`: the abstract interface.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PortType {
    /// Port type name.
    pub name: String,
    /// Operations in declaration order.
    pub operations: Vec<WsdlOperation>,
}

/// A `<service>` with its SOAP address.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Service {
    /// Service name.
    pub name: String,
    /// Port name.
    pub port_name: String,
    /// The `soap:address location` endpoint URL.
    pub endpoint_url: String,
}

/// A whole WSDL document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Definitions {
    /// `definitions/@name`.
    pub name: String,
    /// Target namespace (also the service namespace for RPC calls).
    pub target_namespace: String,
    /// Inline schema.
    pub schema: Schema,
    /// Messages.
    pub messages: Vec<Message>,
    /// The port type.
    pub port_type: PortType,
    /// The service.
    pub service: Service,
}

impl Definitions {
    /// Looks up a message by name.
    pub fn message(&self, name: &str) -> Option<&Message> {
        self.messages.iter().find(|m| m.name == name)
    }

    /// Checks referential integrity: every operation's messages exist,
    /// every complex-type reference resolves.
    ///
    /// # Errors
    ///
    /// Returns a description of the first dangling reference.
    pub fn validate(&self) -> Result<(), String> {
        for op in &self.port_type.operations {
            for msg_name in [&op.input_message, &op.output_message] {
                let msg = self.message(msg_name).ok_or_else(|| {
                    format!(
                        "operation '{}' references missing message '{msg_name}'",
                        op.name
                    )
                })?;
                for part in &msg.parts {
                    self.check_type_ref(&part.type_ref).map_err(|t| {
                        format!(
                            "part '{}' of message '{msg_name}' references missing type '{t}'",
                            part.name
                        )
                    })?;
                }
            }
        }
        for ct in &self.schema.types {
            for field in &ct.fields {
                self.check_type_ref(&field.type_ref).map_err(|t| {
                    format!(
                        "field '{}' of type '{}' references missing type '{t}'",
                        field.name, ct.name
                    )
                })?;
            }
        }
        Ok(())
    }

    fn check_type_ref(&self, r: &TypeRef) -> Result<(), String> {
        match r {
            TypeRef::Xsd(_) => Ok(()),
            TypeRef::Complex(name) => {
                if self.schema.complex_type(name).is_some() {
                    Ok(())
                } else {
                    Err(name.clone())
                }
            }
            TypeRef::ArrayOf(inner) => self.check_type_ref(inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature service used across the wsdl crate's tests.
    pub(crate) fn tiny_service() -> Definitions {
        Definitions {
            name: "TinySearch".into(),
            target_namespace: "urn:TinySearch".into(),
            schema: Schema {
                target_namespace: "urn:TinySearch".into(),
                types: vec![
                    ComplexType::new(
                        "Hit",
                        vec![
                            SchemaField::new("title", TypeRef::Xsd(XsdType::String)),
                            SchemaField::new("score", TypeRef::Xsd(XsdType::Double)),
                        ],
                    ),
                    ComplexType::new(
                        "SearchResult",
                        vec![
                            SchemaField::new("count", TypeRef::Xsd(XsdType::Int)),
                            SchemaField::new("hits", TypeRef::Complex("Hit".into()).array()),
                        ],
                    ),
                ],
            },
            messages: vec![
                Message {
                    name: "doSearchRequest".into(),
                    parts: vec![
                        Part::new("q", TypeRef::Xsd(XsdType::String)),
                        Part::new("max", TypeRef::Xsd(XsdType::Int)),
                    ],
                },
                Message {
                    name: "doSearchResponse".into(),
                    parts: vec![Part::new("return", TypeRef::Complex("SearchResult".into()))],
                },
            ],
            port_type: PortType {
                name: "TinySearchPort".into(),
                operations: vec![WsdlOperation {
                    name: "doSearch".into(),
                    input_message: "doSearchRequest".into(),
                    output_message: "doSearchResponse".into(),
                }],
            },
            service: Service {
                name: "TinySearchService".into(),
                port_name: "TinySearchPort".into(),
                endpoint_url: "http://tiny.test/soap".into(),
            },
        }
    }

    #[test]
    fn valid_document_validates() {
        assert_eq!(tiny_service().validate(), Ok(()));
    }

    #[test]
    fn dangling_message_is_caught() {
        let mut d = tiny_service();
        d.port_type.operations[0].output_message = "nope".into();
        assert!(d.validate().unwrap_err().contains("missing message 'nope'"));
    }

    #[test]
    fn dangling_type_is_caught() {
        let mut d = tiny_service();
        d.messages[1].parts[0].type_ref = TypeRef::Complex("Ghost".into());
        assert!(d.validate().unwrap_err().contains("missing type 'Ghost'"));
        let mut d2 = tiny_service();
        d2.schema.types[1].fields[1].type_ref = TypeRef::Complex("Ghost".into()).array();
        assert!(d2.validate().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(TypeRef::Xsd(XsdType::Int).to_string(), "xsd:int");
        assert_eq!(TypeRef::Complex("T".into()).to_string(), "tns:T");
        assert_eq!(TypeRef::Complex("T".into()).array().to_string(), "tns:T[]");
        assert_eq!(XsdType::parse("boolean"), Some(XsdType::Boolean));
        assert_eq!(XsdType::parse("void"), None);
    }

    #[test]
    fn lookups() {
        let d = tiny_service();
        assert!(d.message("doSearchRequest").is_some());
        assert!(d.message("x").is_none());
        assert!(d.schema.complex_type("Hit").is_some());
        assert!(d.schema.complex_type("x").is_none());
    }
}

//! Parses WSDL 1.1 XML (the subset [`crate::writer`] emits, which is the
//! common Axis rpc/encoded shape) back into [`Definitions`].

use crate::model::*;
use wsrc_xml::dom::{Document, Element};
use wsrc_xml::XmlError;

/// Parses a WSDL document.
///
/// # Errors
///
/// Returns XML errors for malformed documents and descriptive errors for
/// missing required sections or unresolvable type references.
pub fn parse_wsdl(xml: &str) -> Result<Definitions, XmlError> {
    let doc = Document::parse(xml)?;
    let root = &doc.root;
    if root.name.local_part() != "definitions" {
        return Err(XmlError::new("root element is not wsdl:definitions"));
    }
    let mut defs = Definitions {
        name: root.attribute("name").unwrap_or_default().to_string(),
        target_namespace: root
            .attribute("targetNamespace")
            .ok_or_else(|| XmlError::new("definitions lacks targetNamespace"))?
            .to_string(),
        ..Definitions::default()
    };

    for child in root.child_elements() {
        match child.name.local_part() {
            "types" => {
                if let Some(schema) = child
                    .child_elements()
                    .find(|e| e.name.local_part() == "schema")
                {
                    defs.schema = parse_schema(schema)?;
                }
            }
            "message" => defs.messages.push(parse_message(child)?),
            "portType" => defs.port_type = parse_port_type(child)?,
            "service" => defs.service = parse_service(child)?,
            // Binding details (rpc/encoded) are fixed in this subset.
            "binding" => {}
            _ => {}
        }
    }
    if defs.port_type.operations.is_empty() {
        return Err(XmlError::new("portType has no operations"));
    }
    defs.validate().map_err(XmlError::new)?;
    Ok(defs)
}

fn parse_schema(schema: &Element) -> Result<Schema, XmlError> {
    let mut out = Schema {
        target_namespace: schema
            .attribute("targetNamespace")
            .unwrap_or_default()
            .to_string(),
        types: Vec::new(),
    };
    for ct in schema
        .child_elements()
        .filter(|e| e.name.local_part() == "complexType")
    {
        let name = ct
            .attribute("name")
            .ok_or_else(|| XmlError::new("complexType lacks a name"))?
            .to_string();
        let mut fields = Vec::new();
        if let Some(seq) = ct
            .child_elements()
            .find(|e| e.name.local_part() == "sequence")
        {
            for el in seq
                .child_elements()
                .filter(|e| e.name.local_part() == "element")
            {
                let fname = el
                    .attribute("name")
                    .ok_or_else(|| XmlError::new(format!("element in '{name}' lacks a name")))?;
                let tref =
                    parse_type_attr(el.attribute("type").ok_or_else(|| {
                        XmlError::new(format!("element '{fname}' lacks a type"))
                    })?)?;
                let tref = if el.attribute("maxOccurs").map(|m| m != "1").unwrap_or(false) {
                    tref.array()
                } else {
                    tref
                };
                fields.push(SchemaField::new(fname, tref));
            }
        }
        out.types.push(ComplexType::new(name, fields));
    }
    Ok(out)
}

fn parse_message(msg: &Element) -> Result<Message, XmlError> {
    let name = msg
        .attribute("name")
        .ok_or_else(|| XmlError::new("message lacks a name"))?
        .to_string();
    let mut parts = Vec::new();
    for part in msg
        .child_elements()
        .filter(|e| e.name.local_part() == "part")
    {
        let pname = part
            .attribute("name")
            .ok_or_else(|| XmlError::new(format!("part in message '{name}' lacks a name")))?;
        let tref = parse_type_attr(
            part.attribute("type")
                .ok_or_else(|| XmlError::new(format!("part '{pname}' lacks a type")))?,
        )?;
        parts.push(Part::new(pname, tref));
    }
    Ok(Message { name, parts })
}

fn parse_port_type(pt: &Element) -> Result<PortType, XmlError> {
    let name = pt
        .attribute("name")
        .ok_or_else(|| XmlError::new("portType lacks a name"))?
        .to_string();
    let mut operations = Vec::new();
    for op in pt
        .child_elements()
        .filter(|e| e.name.local_part() == "operation")
    {
        let op_name = op
            .attribute("name")
            .ok_or_else(|| XmlError::new("operation lacks a name"))?
            .to_string();
        let msg_of = |kind: &str| -> Result<String, XmlError> {
            let el = op
                .child_elements()
                .find(|e| e.name.local_part() == kind)
                .ok_or_else(|| XmlError::new(format!("operation '{op_name}' lacks {kind}")))?;
            let m = el
                .attribute("message")
                .ok_or_else(|| XmlError::new(format!("{kind} of '{op_name}' lacks message")))?;
            Ok(strip_prefix(m).to_string())
        };
        operations.push(WsdlOperation {
            name: op_name.clone(),
            input_message: msg_of("input")?,
            output_message: msg_of("output")?,
        });
    }
    Ok(PortType { name, operations })
}

fn parse_service(svc: &Element) -> Result<Service, XmlError> {
    let name = svc
        .attribute("name")
        .ok_or_else(|| XmlError::new("service lacks a name"))?
        .to_string();
    let port = svc
        .child_elements()
        .find(|e| e.name.local_part() == "port")
        .ok_or_else(|| XmlError::new(format!("service '{name}' has no port")))?;
    let port_name = port.attribute("name").unwrap_or_default().to_string();
    let address = port
        .child_elements()
        .find(|e| e.name.local_part() == "address")
        .and_then(|a| a.attribute("location"))
        .unwrap_or_default()
        .to_string();
    Ok(Service {
        name,
        port_name,
        endpoint_url: address,
    })
}

fn parse_type_attr(attr: &str) -> Result<TypeRef, XmlError> {
    if let Some(inner) = attr.strip_suffix("[]") {
        return Ok(parse_type_attr(inner)?.array());
    }
    let local = strip_prefix(attr);
    if attr.starts_with("xsd:") || attr.starts_with("xs:") {
        XsdType::parse(local)
            .map(TypeRef::Xsd)
            .ok_or_else(|| XmlError::new(format!("unsupported xsd type '{attr}'")))
    } else {
        Ok(TypeRef::Complex(local.to_string()))
    }
}

fn strip_prefix(qname: &str) -> &str {
    qname.split_once(':').map(|(_, l)| l).unwrap_or(qname)
}

/// Shared fixture for the wsdl crate's tests (the `TinySearch` service).
#[doc(hidden)]
pub fn tests_fixture() -> Definitions {
    Definitions {
        name: "TinySearch".into(),
        target_namespace: "urn:TinySearch".into(),
        schema: Schema {
            target_namespace: "urn:TinySearch".into(),
            types: vec![
                ComplexType::new(
                    "Hit",
                    vec![
                        SchemaField::new("title", TypeRef::Xsd(XsdType::String)),
                        SchemaField::new("score", TypeRef::Xsd(XsdType::Double)),
                    ],
                ),
                ComplexType::new(
                    "SearchResult",
                    vec![
                        SchemaField::new("count", TypeRef::Xsd(XsdType::Int)),
                        SchemaField::new("hits", TypeRef::Complex("Hit".into()).array()),
                    ],
                ),
            ],
        },
        messages: vec![
            Message {
                name: "doSearchRequest".into(),
                parts: vec![
                    Part::new("q", TypeRef::Xsd(XsdType::String)),
                    Part::new("max", TypeRef::Xsd(XsdType::Int)),
                ],
            },
            Message {
                name: "doSearchResponse".into(),
                parts: vec![Part::new("return", TypeRef::Complex("SearchResult".into()))],
            },
        ],
        port_type: PortType {
            name: "TinySearchPort".into(),
            operations: vec![WsdlOperation {
                name: "doSearch".into(),
                input_message: "doSearchRequest".into(),
                output_message: "doSearchResponse".into(),
            }],
        },
        service: Service {
            name: "TinySearchService".into(),
            port_name: "TinySearchPort".into(),
            endpoint_url: "http://tiny.test/soap".into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_wsdl;

    #[test]
    fn write_parse_roundtrip_is_identity() {
        let original = tests_fixture();
        let xml = write_wsdl(&original).unwrap();
        let parsed = parse_wsdl(&xml).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse_wsdl("<notwsdl/>").is_err());
        assert!(parse_wsdl("<<<").is_err());
        assert!(parse_wsdl(
            "<wsdl:definitions xmlns:wsdl=\"w\" targetNamespace=\"t\"></wsdl:definitions>"
        )
        .is_err()); // no operations
    }

    #[test]
    fn missing_target_namespace_is_rejected() {
        assert!(parse_wsdl("<definitions/>").is_err());
    }

    #[test]
    fn dangling_references_fail_validation() {
        let mut d = tests_fixture();
        d.messages.remove(1);
        let xml = write_wsdl(&d).unwrap();
        let err = parse_wsdl(&xml).unwrap_err();
        assert!(err.to_string().contains("missing message"), "{err}");
    }

    #[test]
    fn type_attr_forms() {
        assert_eq!(
            parse_type_attr("xsd:int").unwrap(),
            TypeRef::Xsd(XsdType::Int)
        );
        assert_eq!(
            parse_type_attr("tns:Hit").unwrap(),
            TypeRef::Complex("Hit".into())
        );
        assert_eq!(
            parse_type_attr("tns:Hit[]").unwrap(),
            TypeRef::Complex("Hit".into()).array()
        );
        assert!(parse_type_attr("xsd:duration").is_err());
    }
}

//! Emits a [`Definitions`] as WSDL 1.1 XML.

use crate::model::*;
use wsrc_xml::{XmlError, XmlWriter};

const WSDL_NS: &str = "http://schemas.xmlsoap.org/wsdl/";
const SOAP_NS: &str = "http://schemas.xmlsoap.org/wsdl/soap/";
const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema";
const SOAP_ENC_NS: &str = "http://schemas.xmlsoap.org/soap/encoding/";

/// Serializes a WSDL document.
///
/// # Errors
///
/// Propagates writer errors (indicating invalid names rather than I/O).
pub fn write_wsdl(defs: &Definitions) -> Result<String, XmlError> {
    let mut w = XmlWriter::with_declaration().indented(1);
    w.start("wsdl:definitions")?;
    w.attr("name", &defs.name)?;
    w.attr("targetNamespace", &defs.target_namespace)?;
    w.namespace("wsdl", WSDL_NS)?;
    w.namespace("soap", SOAP_NS)?;
    w.namespace("xsd", XSD_NS)?;
    w.namespace("tns", &defs.target_namespace)?;

    // <types> with one inline schema.
    w.start("wsdl:types")?;
    w.start("xsd:schema")?;
    w.attr("targetNamespace", &defs.schema.target_namespace)?;
    for ct in &defs.schema.types {
        w.start("xsd:complexType")?;
        w.attr("name", &ct.name)?;
        w.start("xsd:sequence")?;
        for field in &ct.fields {
            w.start("xsd:element")?;
            w.attr("name", &field.name)?;
            match &field.type_ref {
                TypeRef::ArrayOf(inner) => {
                    w.attr("type", type_attr(inner))?;
                    w.attr("minOccurs", "0")?;
                    w.attr("maxOccurs", "unbounded")?;
                }
                other => {
                    w.attr("type", type_attr(other))?;
                }
            }
            w.end()?;
        }
        w.end()?; // sequence
        w.end()?; // complexType
    }
    w.end()?; // schema
    w.end()?; // types

    for msg in &defs.messages {
        w.start("wsdl:message")?;
        w.attr("name", &msg.name)?;
        for part in &msg.parts {
            w.start("wsdl:part")?;
            w.attr("name", &part.name)?;
            match &part.type_ref {
                TypeRef::ArrayOf(inner) => {
                    // Arrays at part level use the SOAP-ENC convention.
                    w.attr("type", format!("{}[]", type_attr(inner)))?;
                }
                other => {
                    w.attr("type", type_attr(other))?;
                }
            }
            w.end()?;
        }
        w.end()?;
    }

    w.start("wsdl:portType")?;
    w.attr("name", &defs.port_type.name)?;
    for op in &defs.port_type.operations {
        w.start("wsdl:operation")?;
        w.attr("name", &op.name)?;
        w.start("wsdl:input")?;
        w.attr("message", format!("tns:{}", op.input_message))?;
        w.end()?;
        w.start("wsdl:output")?;
        w.attr("message", format!("tns:{}", op.output_message))?;
        w.end()?;
        w.end()?;
    }
    w.end()?; // portType

    // A single rpc/encoded SOAP binding.
    w.start("wsdl:binding")?;
    w.attr("name", format!("{}Binding", defs.port_type.name))?;
    w.attr("type", format!("tns:{}", defs.port_type.name))?;
    w.start("soap:binding")?;
    w.attr("style", "rpc")?;
    w.attr("transport", "http://schemas.xmlsoap.org/soap/http")?;
    w.end()?;
    for op in &defs.port_type.operations {
        w.start("wsdl:operation")?;
        w.attr("name", &op.name)?;
        w.start("soap:operation")?;
        w.attr("soapAction", format!("urn:{}", op.name))?;
        w.end()?;
        for io in ["wsdl:input", "wsdl:output"] {
            w.start(io)?;
            w.start("soap:body")?;
            w.attr("use", "encoded")?;
            w.attr("namespace", &defs.target_namespace)?;
            w.attr("encodingStyle", SOAP_ENC_NS)?;
            w.end()?;
            w.end()?;
        }
        w.end()?;
    }
    w.end()?; // binding

    w.start("wsdl:service")?;
    w.attr("name", &defs.service.name)?;
    w.start("wsdl:port")?;
    w.attr("name", &defs.service.port_name)?;
    w.attr("binding", format!("tns:{}Binding", defs.port_type.name))?;
    w.start("soap:address")?;
    w.attr("location", &defs.service.endpoint_url)?;
    w.end()?;
    w.end()?; // port
    w.end()?; // service

    w.end()?; // definitions
    w.finish()
}

fn type_attr(r: &TypeRef) -> String {
    match r {
        TypeRef::Xsd(x) => format!("xsd:{}", x.name()),
        TypeRef::Complex(n) => format!("tns:{n}"),
        TypeRef::ArrayOf(inner) => format!("{}[]", type_attr(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Definitions {
        // Reuse the model test fixture through a local copy to keep the
        // fixture private to each module's tests.
        crate::parser::tests_fixture()
    }

    #[test]
    fn output_is_wellformed_xml() {
        let xml = write_wsdl(&tiny()).unwrap();
        assert!(wsrc_xml::Document::parse(&xml).is_ok());
    }

    #[test]
    fn output_contains_every_section() {
        let xml = write_wsdl(&tiny()).unwrap();
        for needle in [
            "<wsdl:definitions",
            "<wsdl:types>",
            "<xsd:complexType name=\"Hit\">",
            "maxOccurs=\"unbounded\"",
            "<wsdl:message name=\"doSearchRequest\">",
            "<wsdl:portType name=\"TinySearchPort\">",
            "<soap:binding style=\"rpc\"",
            "soapAction=\"urn:doSearch\"",
            "<soap:address location=\"http://tiny.test/soap\"/>",
        ] {
            assert!(xml.contains(needle), "missing {needle} in:\n{xml}");
        }
    }
}

//! Randomized tests: generated well-formed WSDL documents survive
//! write→parse round-trips and compile cleanly.
//!
//! The build environment is offline (no `proptest`), so these use a
//! hand-rolled deterministic xorshift generator with fixed seeds.

use wsrc_wsdl::{
    compile, parser, writer, CompileOptions, ComplexType, Definitions, Message, Part, PortType,
    Schema, SchemaField, Service, TypeRef, WsdlOperation, XsdType,
};

const CASES: u64 = 128;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn name(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::new();
    s.push(FIRST[rng.below(FIRST.len())] as char);
    for _ in 0..rng.below(11) {
        s.push(REST[rng.below(REST.len())] as char);
    }
    s
}

fn distinct_names(rng: &mut Rng, min: usize, max: usize) -> Vec<String> {
    let target = min + rng.below(max - min + 1);
    let mut out: Vec<String> = Vec::new();
    while out.len() < target {
        let n = name(rng);
        if !out.contains(&n) {
            out.push(n);
        }
    }
    out
}

fn xsd_type(rng: &mut Rng) -> XsdType {
    [
        XsdType::String,
        XsdType::Int,
        XsdType::Long,
        XsdType::Double,
        XsdType::Boolean,
        XsdType::Base64Binary,
    ][rng.below(6)]
}

fn arb_definitions(rng: &mut Rng) -> Definitions {
    let doc_name = name(rng);
    let type_names = distinct_names(rng, 1, 3);
    let field_specs: Vec<(String, XsdType, bool)> = (0..1 + rng.below(4))
        .map(|_| (name(rng), xsd_type(rng), rng.bool()))
        .collect();
    let op_names = distinct_names(rng, 1, 3);
    let param_specs: Vec<(String, XsdType)> = (0..rng.below(4))
        .map(|_| (name(rng), xsd_type(rng)))
        .collect();
    let ret = xsd_type(rng);
    let use_complex_return = rng.bool();

    // Build complex types; later types may reference earlier ones.
    let mut types = Vec::new();
    for (i, tn) in type_names.iter().enumerate() {
        let mut fields: Vec<SchemaField> = Vec::new();
        let mut used = std::collections::HashSet::new();
        for (fname, ftype, as_array) in &field_specs {
            if !used.insert(fname.clone()) {
                continue;
            }
            let base = TypeRef::Xsd(*ftype);
            fields.push(SchemaField::new(
                fname.clone(),
                if *as_array { base.array() } else { base },
            ));
        }
        // Reference the previous type to exercise complex refs.
        if i > 0 && used.insert("prev".to_string()) {
            fields.push(SchemaField::new(
                "prev",
                TypeRef::Complex(type_names[i - 1].clone()),
            ));
        }
        types.push(ComplexType::new(tn.clone(), fields));
    }
    let mut messages = Vec::new();
    let mut operations = Vec::new();
    for op in &op_names {
        let input_name = format!("{op}In");
        let output_name = format!("{op}Out");
        let mut parts: Vec<Part> = Vec::new();
        let mut used = std::collections::HashSet::new();
        for (pname, ptype) in &param_specs {
            if used.insert(pname.clone()) {
                parts.push(Part::new(pname.clone(), TypeRef::Xsd(*ptype)));
            }
        }
        messages.push(Message {
            name: input_name.clone(),
            parts,
        });
        let return_ref = if use_complex_return {
            TypeRef::Complex(type_names[0].clone())
        } else {
            TypeRef::Xsd(ret)
        };
        messages.push(Message {
            name: output_name.clone(),
            parts: vec![Part::new("return", return_ref)],
        });
        operations.push(WsdlOperation {
            name: op.clone(),
            input_message: input_name,
            output_message: output_name,
        });
    }
    Definitions {
        name: doc_name.clone(),
        target_namespace: format!("urn:{doc_name}"),
        schema: Schema {
            target_namespace: format!("urn:{doc_name}"),
            types,
        },
        messages,
        port_type: PortType {
            name: format!("{doc_name}Port"),
            operations,
        },
        service: Service {
            name: format!("{doc_name}Service"),
            port_name: format!("{doc_name}Port"),
            endpoint_url: format!("http://{}.test/soap", doc_name.to_lowercase()),
        },
    }
}

#[test]
fn write_parse_roundtrip_is_identity() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let defs = arb_definitions(&mut rng);
        if defs.validate().is_err() {
            continue;
        }
        let xml = writer::write_wsdl(&defs).unwrap();
        let parsed = parser::parse_wsdl(&xml).unwrap();
        assert_eq!(parsed, defs, "seed {seed}");
    }
}

#[test]
fn generated_documents_compile() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 1000);
        let defs = arb_definitions(&mut rng);
        if defs.validate().is_err() {
            continue;
        }
        let compiled = compile(&defs, CompileOptions::default()).unwrap();
        assert_eq!(
            compiled.operations.len(),
            defs.port_type.operations.len(),
            "seed {seed}"
        );
        assert_eq!(
            compiled.registry.len(),
            defs.schema.types.len(),
            "seed {seed}"
        );
        // Every operation's parameters carry through by name and count.
        for op in &defs.port_type.operations {
            let c = compiled.operation(&op.name).unwrap();
            let input = defs.message(&op.input_message).unwrap();
            assert_eq!(c.params.len(), input.parts.len(), "seed {seed}");
        }
    }
}

#[test]
fn parser_never_panics_on_garbage() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 2000);
        let n = rng.below(200);
        let s: String = (0..n)
            .map(|_| char::from_u32(rng.next() as u32 % 0x300).unwrap_or('?'))
            .collect();
        let _ = parser::parse_wsdl(&s);
    }
}

#[test]
fn codegen_is_balanced() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 3000);
        let defs = arb_definitions(&mut rng);
        if defs.validate().is_err() {
            continue;
        }
        let src = wsrc_wsdl::codegen::generate_rust_stub(&defs);
        assert_eq!(
            src.matches('{').count(),
            src.matches('}').count(),
            "seed {seed}"
        );
    }
}

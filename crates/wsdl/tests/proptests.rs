//! Property tests: arbitrary well-formed WSDL documents survive
//! write→parse round-trips and compile cleanly.

use proptest::prelude::*;
use wsrc_wsdl::{
    compile, parser, writer, CompileOptions, ComplexType, Definitions, Message, Part, PortType,
    Schema, SchemaField, Service, TypeRef, WsdlOperation, XsdType,
};

fn name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,10}"
}

fn xsd_type() -> impl Strategy<Value = XsdType> {
    proptest::sample::select(vec![
        XsdType::String,
        XsdType::Int,
        XsdType::Long,
        XsdType::Double,
        XsdType::Boolean,
        XsdType::Base64Binary,
    ])
}

prop_compose! {
    fn arb_definitions()(
        doc_name in name(),
        type_names in proptest::collection::hash_set(name(), 1..4),
        field_specs in proptest::collection::vec((name(), xsd_type(), any::<bool>()), 1..5),
        op_names in proptest::collection::hash_set(name(), 1..4),
        param_specs in proptest::collection::vec((name(), xsd_type()), 0..4),
        ret in xsd_type(),
        use_complex_return in any::<bool>(),
    ) -> Definitions {
        let type_names: Vec<String> = type_names.into_iter().collect();
        // Build complex types; later types may reference earlier ones.
        let mut types = Vec::new();
        for (i, tn) in type_names.iter().enumerate() {
            let mut fields: Vec<SchemaField> = Vec::new();
            let mut used = std::collections::HashSet::new();
            for (fname, ftype, as_array) in &field_specs {
                if !used.insert(fname.clone()) {
                    continue;
                }
                let base = TypeRef::Xsd(*ftype);
                fields.push(SchemaField::new(
                    fname.clone(),
                    if *as_array { base.array() } else { base },
                ));
            }
            // Reference the previous type to exercise complex refs.
            if i > 0 && used.insert("prev".to_string()) {
                fields.push(SchemaField::new("prev", TypeRef::Complex(type_names[i - 1].clone())));
            }
            types.push(ComplexType::new(tn.clone(), fields));
        }
        let mut messages = Vec::new();
        let mut operations = Vec::new();
        for op in &op_names {
            let input_name = format!("{op}In");
            let output_name = format!("{op}Out");
            let mut parts: Vec<Part> = Vec::new();
            let mut used = std::collections::HashSet::new();
            for (pname, ptype) in &param_specs {
                if used.insert(pname.clone()) {
                    parts.push(Part::new(pname.clone(), TypeRef::Xsd(*ptype)));
                }
            }
            messages.push(Message { name: input_name.clone(), parts });
            let return_ref = if use_complex_return {
                TypeRef::Complex(type_names[0].clone())
            } else {
                TypeRef::Xsd(ret)
            };
            messages.push(Message {
                name: output_name.clone(),
                parts: vec![Part::new("return", return_ref)],
            });
            operations.push(WsdlOperation {
                name: op.clone(),
                input_message: input_name,
                output_message: output_name,
            });
        }
        Definitions {
            name: doc_name.clone(),
            target_namespace: format!("urn:{doc_name}"),
            schema: Schema { target_namespace: format!("urn:{doc_name}"), types },
            messages,
            port_type: PortType { name: format!("{doc_name}Port"), operations },
            service: Service {
                name: format!("{doc_name}Service"),
                port_name: format!("{doc_name}Port"),
                endpoint_url: format!("http://{}.test/soap", doc_name.to_lowercase()),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_parse_roundtrip_is_identity(defs in arb_definitions()) {
        prop_assume!(defs.validate().is_ok());
        let xml = writer::write_wsdl(&defs).unwrap();
        let parsed = parser::parse_wsdl(&xml).unwrap();
        prop_assert_eq!(parsed, defs);
    }

    #[test]
    fn generated_documents_compile(defs in arb_definitions()) {
        prop_assume!(defs.validate().is_ok());
        let compiled = compile(&defs, CompileOptions::default()).unwrap();
        prop_assert_eq!(compiled.operations.len(), defs.port_type.operations.len());
        prop_assert_eq!(compiled.registry.len(), defs.schema.types.len());
        // Every operation's parameters carry through by name and count.
        for op in &defs.port_type.operations {
            let c = compiled.operation(&op.name).unwrap();
            let input = defs.message(&op.input_message).unwrap();
            prop_assert_eq!(c.params.len(), input.parts.len());
        }
    }

    #[test]
    fn parser_never_panics_on_garbage(s in "\\PC{0,200}") {
        let _ = parser::parse_wsdl(&s);
    }

    #[test]
    fn codegen_is_balanced(defs in arb_definitions()) {
        prop_assume!(defs.validate().is_ok());
        let src = wsrc_wsdl::codegen::generate_rust_stub(&defs);
        prop_assert_eq!(src.matches('{').count(), src.matches('}').count());
    }
}

//! A small DOM tree — the "post-parsing representation" alternative to SAX
//! event sequences for DOM-based middleware.

use crate::error::XmlError;
use crate::event::{Attribute, SaxEvent, SaxEventRef, SaxEventSequence};
use crate::name::QName;
use crate::reader::XmlReader;
use crate::writer::XmlWriter;

/// A node in the tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data.
    Text(String),
    /// A comment.
    Comment(String),
}

/// An element with attributes and ordered children.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// The element name as written (prefix preserved).
    pub name: QName,
    /// Attributes in document order, including namespace declarations.
    pub attributes: Vec<Attribute>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl AsRef<str>) -> Self {
        Element {
            name: QName::parse(name.as_ref()),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: adds an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push(Attribute::new(name.into(), value));
        self
    }

    /// Builder-style: adds a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: adds a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// The value of an attribute, matched on its full lexical name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        let q = QName::parse(name);
        self.attributes
            .iter()
            .find(|a| a.name == q)
            .map(|a| a.value.as_str())
    }

    /// Iterates over child elements only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// First child element with the given *local* name, ignoring prefix.
    pub fn child(&self, local: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name.local_part() == local)
    }

    /// Concatenated text content of this element's direct text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out
    }

    /// Recursively counts elements in this subtree, including `self`.
    pub fn element_count(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::element_count)
            .sum::<usize>()
    }

    /// Approximate retained size in bytes (for memory accounting).
    pub fn approximate_size(&self) -> usize {
        let mut size = std::mem::size_of::<Element>()
            + self.name.prefix().len()
            + self.name.local_part().len();
        for a in &self.attributes {
            size += std::mem::size_of::<Attribute>()
                + a.name.prefix().len()
                + a.name.local_part().len()
                + a.value.len();
        }
        for c in &self.children {
            size += match c {
                Node::Element(e) => e.approximate_size(),
                Node::Text(t) | Node::Comment(t) => std::mem::size_of::<Node>() + t.len(),
            };
        }
        size
    }

    /// Emits this subtree into a writer.
    ///
    /// # Errors
    ///
    /// Propagates writer errors (e.g. when used after the root closed).
    pub fn write_to(&self, w: &mut XmlWriter) -> Result<(), XmlError> {
        w.start(self.name.to_string())?;
        for a in &self.attributes {
            w.attr(a.name.to_string(), &a.value)?;
        }
        for c in &self.children {
            match c {
                Node::Element(e) => e.write_to(w)?,
                Node::Text(t) => {
                    w.text(t)?;
                }
                Node::Comment(t) => {
                    w.comment(t)?;
                }
            }
        }
        w.end()?;
        Ok(())
    }

    /// Serializes this subtree as an XML string.
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::new();
        self.write_to(&mut w)
            .expect("fresh writer accepts a single tree");
        w.finish().expect("tree is balanced by construction")
    }

    /// Flattens this subtree into SAX events (without document markers).
    pub fn to_events(&self) -> Vec<SaxEvent> {
        let mut out = Vec::new();
        self.push_events(&mut out);
        out
    }

    fn push_events(&self, out: &mut Vec<SaxEvent>) {
        out.push(SaxEvent::StartElement {
            name: self.name.clone(),
            attributes: self.attributes.clone(),
        });
        for c in &self.children {
            match c {
                Node::Element(e) => e.push_events(out),
                Node::Text(t) => out.push(SaxEvent::Characters(t.clone())),
                Node::Comment(t) => out.push(SaxEvent::Comment(t.clone())),
            }
        }
        out.push(SaxEvent::EndElement {
            name: self.name.clone(),
        });
    }
}

/// A parsed document: the root element (plus anything we chose to keep from
/// the prolog is discarded).
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// The document's single root element.
    pub root: Element,
}

impl Document {
    /// Parses a document from XML text.
    ///
    /// # Errors
    ///
    /// Returns parser errors for malformed input.
    pub fn parse(xml: &str) -> Result<Document, XmlError> {
        let events = XmlReader::new(xml).read_sequence()?;
        Document::from_events(&events)
    }

    /// Builds a document from a recorded event sequence.
    ///
    /// # Errors
    ///
    /// Fails on unbalanced sequences or sequences without a root element.
    pub fn from_events(events: &SaxEventSequence) -> Result<Document, XmlError> {
        let mut stack: Vec<Element> = Vec::new();
        let mut root: Option<Element> = None;
        for event in events.iter() {
            match event {
                SaxEventRef::StartDocument
                | SaxEventRef::EndDocument
                | SaxEventRef::ProcessingInstruction { .. } => {}
                SaxEventRef::StartElement { name, attributes } => {
                    stack.push(Element {
                        name: name.clone(),
                        attributes: attributes.to_owned_vec(),
                        children: Vec::new(),
                    });
                }
                SaxEventRef::EndElement { name } => {
                    let done = stack
                        .pop()
                        .ok_or_else(|| XmlError::new("end element without start"))?;
                    if done.name != *name {
                        return Err(XmlError::new(format!(
                            "unbalanced events: <{}> closed by </{}>",
                            done.name, name
                        )));
                    }
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(Node::Element(done)),
                        None => {
                            if root.is_some() {
                                return Err(XmlError::new(
                                    "multiple root elements in event stream",
                                ));
                            }
                            root = Some(done);
                        }
                    }
                }
                SaxEventRef::Characters(t) => {
                    if let Some(parent) = stack.last_mut() {
                        // Merge adjacent text runs for a canonical tree.
                        if let Some(Node::Text(prev)) = parent.children.last_mut() {
                            prev.push_str(t);
                        } else {
                            parent.children.push(Node::Text(t.to_string()));
                        }
                    }
                }
                SaxEventRef::Comment(t) => {
                    if let Some(parent) = stack.last_mut() {
                        parent.children.push(Node::Comment(t.to_string()));
                    }
                }
            }
        }
        if !stack.is_empty() {
            return Err(XmlError::new("event stream ended with open elements"));
        }
        root.map(|root| Document { root })
            .ok_or_else(|| XmlError::new("event stream contains no root element"))
    }

    /// Serializes the document as compact XML text.
    pub fn to_xml(&self) -> String {
        self.root.to_xml()
    }

    /// Approximate retained size in bytes.
    pub fn approximate_size(&self) -> usize {
        std::mem::size_of::<Document>() + self.root.approximate_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<order id="7"><item qty="2">widget</item><item qty="1">gadget</item><!-- end --></order>"#;

    #[test]
    fn parse_builds_expected_tree() {
        let doc = Document::parse(SAMPLE).unwrap();
        assert_eq!(doc.root.name.local_part(), "order");
        assert_eq!(doc.root.attribute("id"), Some("7"));
        let items: Vec<_> = doc.root.child_elements().collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].text(), "widget");
        assert_eq!(items[1].attribute("qty"), Some("1"));
        assert_eq!(doc.root.element_count(), 3);
    }

    #[test]
    fn to_xml_roundtrips() {
        let doc = Document::parse(SAMPLE).unwrap();
        let reparsed = Document::parse(&doc.to_xml()).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn events_roundtrip_through_dom() {
        let doc = Document::parse(SAMPLE).unwrap();
        let mut events = vec![SaxEvent::StartDocument];
        events.extend(doc.root.to_events());
        events.push(SaxEvent::EndDocument);
        let rebuilt = Document::from_events(&events.into()).unwrap();
        assert_eq!(doc, rebuilt);
    }

    #[test]
    fn adjacent_text_runs_merge() {
        let events: SaxEventSequence = vec![
            SaxEvent::StartDocument,
            SaxEvent::StartElement {
                name: QName::local("e"),
                attributes: vec![],
            },
            SaxEvent::Characters("a".into()),
            SaxEvent::Characters("b".into()),
            SaxEvent::EndElement {
                name: QName::local("e"),
            },
            SaxEvent::EndDocument,
        ]
        .into();
        let doc = Document::from_events(&events).unwrap();
        assert_eq!(doc.root.text(), "ab");
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn builder_api() {
        let e = Element::new("r")
            .with_attr("k", "v")
            .with_child(Element::new("c").with_text("t"));
        assert_eq!(e.to_xml(), r#"<r k="v"><c>t</c></r>"#);
    }

    #[test]
    fn child_lookup_ignores_prefix() {
        let doc = Document::parse(r#"<r xmlns:n="u"><n:x>1</n:x></r>"#).unwrap();
        assert_eq!(doc.root.child("x").unwrap().text(), "1");
        assert!(doc.root.child("missing").is_none());
    }

    #[test]
    fn unbalanced_event_streams_are_rejected() {
        let open_only: SaxEventSequence = vec![SaxEvent::StartElement {
            name: QName::local("a"),
            attributes: vec![],
        }]
        .into();
        assert!(Document::from_events(&open_only).is_err());
        let close_only: SaxEventSequence = vec![SaxEvent::EndElement {
            name: QName::local("a"),
        }]
        .into();
        assert!(Document::from_events(&close_only).is_err());
        let empty: SaxEventSequence = vec![SaxEvent::StartDocument, SaxEvent::EndDocument].into();
        assert!(Document::from_events(&empty).is_err());
    }

    #[test]
    fn size_grows_with_content() {
        let small = Document::parse("<a/>").unwrap().approximate_size();
        let large = Document::parse(SAMPLE).unwrap().approximate_size();
        assert!(large > small);
    }
}

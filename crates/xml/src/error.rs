//! Error type for XML processing.

use std::error::Error;
use std::fmt;

/// An error raised while reading or writing XML.
///
/// Carries the byte offset into the input at which the problem was detected
/// (0 for errors that are not tied to a position, e.g. writer misuse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    message: String,
    offset: usize,
}

impl XmlError {
    /// Creates an error at a specific byte offset of the input.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        XmlError {
            message: message.into(),
            offset,
        }
    }

    /// Creates an error that is not tied to an input position.
    pub fn new(message: impl Into<String>) -> Self {
        XmlError {
            message: message.into(),
            offset: 0,
        }
    }

    /// The human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset into the input at which the problem was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "xml error: {}", self.message)
        } else {
            write!(f, "xml error at byte {}: {}", self.offset, self.message)
        }
    }
}

impl Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_when_present() {
        let e = XmlError::at(17, "unexpected '<'");
        assert_eq!(e.to_string(), "xml error at byte 17: unexpected '<'");
        assert_eq!(e.offset(), 17);
    }

    #[test]
    fn display_omits_offset_when_absent() {
        let e = XmlError::new("writer misuse");
        assert_eq!(e.to_string(), "xml error: writer misuse");
        assert_eq!(e.message(), "writer misuse");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + Error>() {}
        assert_bounds::<XmlError>();
    }
}

//! Escaping and unescaping of XML character data and attribute values.

use crate::error::XmlError;
use std::borrow::Cow;

/// Escapes text for use as element character data.
///
/// Replaces `&`, `<` and `>` with entity references. Returns a borrowed
/// `Cow` when no replacement is needed, avoiding allocation on the common
/// path.
///
/// ```
/// assert_eq!(wsrc_xml::escape::escape_text("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escapes text for use inside a double-quoted attribute value.
///
/// In addition to the character-data escapes this replaces `"` so the value
/// can always be emitted inside `"`-quoted attributes, and escapes tabs and
/// newlines so attribute values survive round-trips without whitespace
/// normalization loss.
pub fn escape_attribute(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn needs_escape(c: char, attr: bool) -> bool {
    match c {
        '&' | '<' | '>' => true,
        '"' | '\t' | '\n' | '\r' => attr,
        _ => false,
    }
}

fn escape_with(s: &str, attr: bool) -> Cow<'_, str> {
    let first = match s.char_indices().find(|&(_, c)| needs_escape(c, attr)) {
        Some((i, _)) => i,
        None => return Cow::Borrowed(s),
    };
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    for c in s[first..].chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\t' if attr => out.push_str("&#9;"),
            '\n' if attr => out.push_str("&#10;"),
            '\r' if attr => out.push_str("&#13;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Expands entity and character references in raw XML text.
///
/// Supports the five predefined entities (`&amp;` `&lt;` `&gt;` `&quot;`
/// `&apos;`) and decimal/hexadecimal character references.
///
/// # Errors
///
/// Returns an error for unterminated references, unknown entity names and
/// character references that do not denote a valid Unicode scalar value.
pub fn unescape(s: &str) -> Result<Cow<'_, str>, XmlError> {
    if !s.contains('&') {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    unescape_into(s, &mut out)?;
    Ok(Cow::Owned(out))
}

/// Expands entity and character references, appending the result to
/// `out` — the allocation-reusing form of [`unescape`] that backs the
/// reader's entity slow path (the scratch buffer is cleared by the
/// caller and reused across text runs).
///
/// # Errors
///
/// Same conditions as [`unescape`]. On error `out` may hold a partial
/// expansion; callers discard it.
pub fn unescape_into(s: &str, out: &mut String) -> Result<(), XmlError> {
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after
            .find(';')
            .ok_or_else(|| XmlError::new("unterminated entity reference"))?;
        let name = &after[..semi];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16).map_err(|_| {
                    XmlError::new(format!("invalid hex character reference '&{name};'"))
                })?;
                out.push(char_for(code, name)?);
            }
            _ if name.starts_with('#') => {
                let code = name[1..].parse::<u32>().map_err(|_| {
                    XmlError::new(format!("invalid character reference '&{name};'"))
                })?;
                out.push(char_for(code, name)?);
            }
            _ => {
                return Err(XmlError::new(format!("unknown entity '&{name};'")));
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(())
}

fn char_for(code: u32, name: &str) -> Result<char, XmlError> {
    char::from_u32(code).ok_or_else(|| {
        XmlError::new(format!(
            "character reference '&{name};' is not a valid char"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_is_borrowed() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_attribute("hello"), Cow::Borrowed(_)));
        assert!(matches!(unescape("hello").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn text_escaping_covers_markup_characters() {
        assert_eq!(escape_text("<a&b>"), "&lt;a&amp;b&gt;");
    }

    #[test]
    fn attribute_escaping_covers_quote_and_whitespace() {
        assert_eq!(escape_attribute("a\"b"), "a&quot;b");
        assert_eq!(escape_attribute("a\nb\tc\rd"), "a&#10;b&#9;c&#13;d");
    }

    #[test]
    fn text_escaping_leaves_quotes_alone() {
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
    }

    #[test]
    fn unescape_predefined_entities() {
        assert_eq!(unescape("&lt;&gt;&amp;&quot;&apos;").unwrap(), "<>&\"'");
    }

    #[test]
    fn unescape_character_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
        assert_eq!(unescape("snowman &#x2603;!").unwrap(), "snowman \u{2603}!");
    }

    #[test]
    fn unescape_rejects_bad_references() {
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("&#xZZ;").is_err());
        assert!(unescape("&#1114112;").is_err()); // above char::MAX
        assert!(unescape("&amp").is_err()); // unterminated
    }

    #[test]
    fn roundtrip_text() {
        let original = "mixed <tags> & \"quotes\" and 'apostrophes'";
        let escaped = escape_text(original);
        assert_eq!(unescape(&escaped).unwrap(), original);
    }

    #[test]
    fn roundtrip_attribute() {
        let original = "line1\nline2\ttabbed \"quoted\" <&>";
        let escaped = escape_attribute(original);
        assert_eq!(unescape(&escaped).unwrap(), original);
    }
}

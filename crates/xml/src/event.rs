//! SAX-style event model and the recordable event sequence.
//!
//! The paper's first optimization caches the "post-parsing representation":
//! the sequence of SAX events a parser would deliver for a response
//! document. [`SaxEventSequence`] is that representation — it can be
//! recorded once and replayed into any [`crate::sax::ContentHandler`]
//! without re-parsing the XML text.

use crate::name::QName;
use std::fmt;

/// An attribute as reported on a start-element event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, possibly prefixed; includes `xmlns`/`xmlns:p`
    /// declarations so consumers can maintain namespace scopes.
    pub name: QName,
    /// The unescaped attribute value.
    pub value: String,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: QName::parse(&name.into()),
            value: value.into(),
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}=\"{}\"",
            self.name,
            crate::escape::escape_attribute(&self.value)
        )
    }
}

/// One parsing event, mirroring the SAX `ContentHandler` callbacks the
/// paper's Table 4 illustrates.
#[derive(Debug, Clone, PartialEq)]
pub enum SaxEvent {
    /// Document begins.
    StartDocument,
    /// Document ends.
    EndDocument,
    /// `<name attr="…">` — attributes include namespace declarations.
    StartElement {
        /// Element name as written (prefix preserved).
        name: QName,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// `</name>` or the implicit close of `<name/>`.
    EndElement {
        /// Element name as written.
        name: QName,
    },
    /// Character data with entities already expanded. Adjacent runs may be
    /// reported as a single event.
    Characters(String),
    /// `<!-- … -->`.
    Comment(String),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// The PI target.
        target: String,
        /// Everything after the target, whitespace-trimmed on the left.
        data: String,
    },
}

impl SaxEvent {
    /// Short label used by `Display` and the paper-style Table 4 printout.
    pub fn kind(&self) -> &'static str {
        match self {
            SaxEvent::StartDocument => "start document",
            SaxEvent::EndDocument => "end document",
            SaxEvent::StartElement { .. } => "start element",
            SaxEvent::EndElement { .. } => "end element",
            SaxEvent::Characters(_) => "characters",
            SaxEvent::Comment(_) => "comment",
            SaxEvent::ProcessingInstruction { .. } => "processing instruction",
        }
    }

    /// Approximate retained heap + inline size in bytes of this event.
    ///
    /// Used for the paper's Table 9 style memory accounting of cached SAX
    /// sequences. Sizes are estimates of live bytes, not allocator-rounded.
    pub fn approximate_size(&self) -> usize {
        let base = std::mem::size_of::<SaxEvent>();
        match self {
            SaxEvent::StartDocument | SaxEvent::EndDocument => base,
            SaxEvent::StartElement { name, attributes } => {
                base + qname_heap(name)
                    + attributes
                        .iter()
                        .map(|a| {
                            std::mem::size_of::<Attribute>() + qname_heap(&a.name) + a.value.len()
                        })
                        .sum::<usize>()
            }
            SaxEvent::EndElement { name } => base + qname_heap(name),
            SaxEvent::Characters(s) | SaxEvent::Comment(s) => base + s.len(),
            SaxEvent::ProcessingInstruction { target, data } => base + target.len() + data.len(),
        }
    }
}

fn qname_heap(q: &QName) -> usize {
    q.prefix().len() + q.local_part().len()
}

impl fmt::Display for SaxEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxEvent::StartDocument | SaxEvent::EndDocument => f.write_str(self.kind()),
            SaxEvent::StartElement { name, .. } => write!(f, "start element: {name}"),
            SaxEvent::EndElement { name } => write!(f, "end element: {name}"),
            SaxEvent::Characters(s) => write!(f, "characters: {s}"),
            SaxEvent::Comment(s) => write!(f, "comment: {s}"),
            SaxEvent::ProcessingInstruction { target, data } => {
                write!(f, "processing instruction: {target} {data}")
            }
        }
    }
}

/// A recorded sequence of SAX events — the paper's cached "SAX events
/// sequence" value representation.
///
/// ```
/// use wsrc_xml::reader::XmlReader;
/// # fn main() -> Result<(), wsrc_xml::XmlError> {
/// let seq = XmlReader::new("<doc><para>Hello, world!</para></doc>")
///     .read_sequence()?;
/// assert_eq!(seq.len(), 7); // matches the paper's Table 4
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SaxEventSequence {
    events: Vec<SaxEvent>,
}

impl SaxEventSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        SaxEventSequence::default()
    }

    /// Appends one event.
    pub fn push(&mut self, event: SaxEvent) {
        self.events.push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[SaxEvent] {
        &self.events
    }

    /// Iterates over the recorded events.
    pub fn iter(&self) -> std::slice::Iter<'_, SaxEvent> {
        self.events.iter()
    }

    /// Replays the recorded events into a handler, exactly as a parser
    /// would have delivered them. This is the cache-hit path for the SAX
    /// representation: no XML parsing happens.
    pub fn replay<H: crate::sax::ContentHandler>(&self, handler: &mut H) -> Result<(), H::Error> {
        for event in &self.events {
            crate::sax::dispatch(handler, event)?;
        }
        Ok(())
    }

    /// Approximate retained size in bytes (for Table 9 style accounting).
    pub fn approximate_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .events
                .iter()
                .map(SaxEvent::approximate_size)
                .sum::<usize>()
    }
}

impl FromIterator<SaxEvent> for SaxEventSequence {
    fn from_iter<I: IntoIterator<Item = SaxEvent>>(iter: I) -> Self {
        SaxEventSequence {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<SaxEvent> for SaxEventSequence {
    fn extend<I: IntoIterator<Item = SaxEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl From<Vec<SaxEvent>> for SaxEventSequence {
    fn from(events: Vec<SaxEvent>) -> Self {
        SaxEventSequence { events }
    }
}

impl IntoIterator for SaxEventSequence {
    type Item = SaxEvent;
    type IntoIter = std::vec::IntoIter<SaxEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a SaxEventSequence {
    type Item = &'a SaxEvent;
    type IntoIter = std::slice::Iter<'a, SaxEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SaxEventSequence {
        vec![
            SaxEvent::StartDocument,
            SaxEvent::StartElement {
                name: QName::local("doc"),
                attributes: vec![],
            },
            SaxEvent::Characters("hi".into()),
            SaxEvent::EndElement {
                name: QName::local("doc"),
            },
            SaxEvent::EndDocument,
        ]
        .into()
    }

    #[test]
    fn display_matches_paper_table4_style() {
        assert_eq!(SaxEvent::StartDocument.to_string(), "start document");
        assert_eq!(
            SaxEvent::StartElement {
                name: QName::local("para"),
                attributes: vec![]
            }
            .to_string(),
            "start element: para"
        );
        assert_eq!(
            SaxEvent::Characters("Hello, world!".into()).to_string(),
            "characters: Hello, world!"
        );
        assert_eq!(
            SaxEvent::EndElement {
                name: QName::local("para")
            }
            .to_string(),
            "end element: para"
        );
        assert_eq!(SaxEvent::EndDocument.to_string(), "end document");
    }

    #[test]
    fn sequence_collects_and_iterates_in_order() {
        let seq = sample();
        assert_eq!(seq.len(), 5);
        assert!(!seq.is_empty());
        let kinds: Vec<_> = seq.iter().map(SaxEvent::kind).collect();
        assert_eq!(
            kinds,
            [
                "start document",
                "start element",
                "characters",
                "end element",
                "end document"
            ]
        );
    }

    #[test]
    fn size_accounts_for_strings() {
        let small = SaxEvent::Characters("a".into()).approximate_size();
        let big = SaxEvent::Characters("a".repeat(100)).approximate_size();
        assert_eq!(big - small, 99);
    }

    #[test]
    fn size_accounts_for_attributes() {
        let bare = SaxEvent::StartElement {
            name: QName::local("e"),
            attributes: vec![],
        }
        .approximate_size();
        let with_attr = SaxEvent::StartElement {
            name: QName::local("e"),
            attributes: vec![Attribute::new("href", "value")],
        }
        .approximate_size();
        assert!(with_attr > bare + "href".len() + "value".len());
    }

    #[test]
    fn attribute_display_escapes_value() {
        let a = Attribute::new("t", "a\"b");
        assert_eq!(a.to_string(), "t=\"a&quot;b\"");
    }
}

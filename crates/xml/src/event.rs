//! SAX-style event model and the recordable event sequence.
//!
//! The paper's first optimization caches the "post-parsing representation":
//! the sequence of SAX events a parser would deliver for a response
//! document. [`SaxEventSequence`] is that representation — it can be
//! recorded once and replayed into any [`crate::sax::ContentHandler`]
//! without re-parsing the XML text.
//!
//! Since the zero-copy pipeline rework the sequence is stored in *arena*
//! form: one contiguous event vector whose character/comment/PI payloads
//! are range-indexed slices of a single shared text buffer, and whose
//! element/attribute names are [`crate::symbol::Symbol`]s deduplicated
//! through an embedded [`SymbolTable`]. Replaying borrows straight out
//! of the arenas — the hit path performs no allocation — while
//! [`SaxEvent`] remains the owned, per-event compatibility view.

use crate::name::QName;
use crate::symbol::SymbolTable;
use std::fmt;

/// An attribute as reported on a start-element event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, possibly prefixed; includes `xmlns`/`xmlns:p`
    /// declarations so consumers can maintain namespace scopes.
    pub name: QName,
    /// The unescaped attribute value.
    pub value: String,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl AsRef<str>, value: impl Into<String>) -> Self {
        Attribute {
            name: QName::parse(name.as_ref()),
            value: value.into(),
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}=\"{}\"",
            self.name,
            crate::escape::escape_attribute(&self.value)
        )
    }
}

/// One parsing event, mirroring the SAX `ContentHandler` callbacks the
/// paper's Table 4 illustrates.
///
/// This is the *owned* event form — the compatibility view of an arena
/// [`SaxEventSequence`] entry (see [`SaxEventRef`] for the borrowed
/// form that replay and iteration use).
#[derive(Debug, Clone, PartialEq)]
pub enum SaxEvent {
    /// Document begins.
    StartDocument,
    /// Document ends.
    EndDocument,
    /// `<name attr="…">` — attributes include namespace declarations.
    StartElement {
        /// Element name as written (prefix preserved).
        name: QName,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// `</name>` or the implicit close of `<name/>`.
    EndElement {
        /// Element name as written.
        name: QName,
    },
    /// Character data with entities already expanded. Adjacent runs may be
    /// reported as a single event.
    Characters(String),
    /// `<!-- … -->`.
    Comment(String),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// The PI target.
        target: String,
        /// Everything after the target, whitespace-trimmed on the left.
        data: String,
    },
}

impl SaxEvent {
    /// Short label used by `Display` and the paper-style Table 4 printout.
    pub fn kind(&self) -> &'static str {
        match self {
            SaxEvent::StartDocument => "start document",
            SaxEvent::EndDocument => "end document",
            SaxEvent::StartElement { .. } => "start element",
            SaxEvent::EndElement { .. } => "end element",
            SaxEvent::Characters(_) => "characters",
            SaxEvent::Comment(_) => "comment",
            SaxEvent::ProcessingInstruction { .. } => "processing instruction",
        }
    }

    /// Approximate retained heap + inline size in bytes of this event as
    /// an *owned* value (every string charged to this event).
    ///
    /// Arena sequences account differently — names interned in the
    /// sequence's [`SymbolTable`] are charged once per table; see
    /// [`SaxEventSequence::approximate_size`].
    pub fn approximate_size(&self) -> usize {
        let base = std::mem::size_of::<SaxEvent>();
        match self {
            SaxEvent::StartDocument | SaxEvent::EndDocument => base,
            SaxEvent::StartElement { name, attributes } => {
                base + name.text_len()
                    + attributes
                        .iter()
                        .map(|a| {
                            std::mem::size_of::<Attribute>() + a.name.text_len() + a.value.len()
                        })
                        .sum::<usize>()
            }
            SaxEvent::EndElement { name } => base + name.text_len(),
            SaxEvent::Characters(s) | SaxEvent::Comment(s) => base + s.len(),
            SaxEvent::ProcessingInstruction { target, data } => base + target.len() + data.len(),
        }
    }
}

impl fmt::Display for SaxEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxEvent::StartDocument | SaxEvent::EndDocument => f.write_str(self.kind()),
            SaxEvent::StartElement { name, .. } => write!(f, "start element: {name}"),
            SaxEvent::EndElement { name } => write!(f, "end element: {name}"),
            SaxEvent::Characters(s) => write!(f, "characters: {s}"),
            SaxEvent::Comment(s) => write!(f, "comment: {s}"),
            SaxEvent::ProcessingInstruction { target, data } => {
                write!(f, "processing instruction: {target} {data}")
            }
        }
    }
}

/// One event *borrowed* from an arena [`SaxEventSequence`]: names point
/// at the sequence's interned symbols, text at its shared buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SaxEventRef<'a> {
    /// Document begins.
    StartDocument,
    /// Document ends.
    EndDocument,
    /// `<name attr="…">`.
    StartElement {
        /// Element name as written.
        name: &'a QName,
        /// Attributes in document order.
        attributes: &'a [Attribute],
    },
    /// `</name>` or the implicit close of `<name/>`.
    EndElement {
        /// Element name as written.
        name: &'a QName,
    },
    /// Character data.
    Characters(&'a str),
    /// `<!-- … -->`.
    Comment(&'a str),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// The PI target.
        target: &'a str,
        /// Everything after the target.
        data: &'a str,
    },
}

impl SaxEventRef<'_> {
    /// Short label matching [`SaxEvent::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            SaxEventRef::StartDocument => "start document",
            SaxEventRef::EndDocument => "end document",
            SaxEventRef::StartElement { .. } => "start element",
            SaxEventRef::EndElement { .. } => "end element",
            SaxEventRef::Characters(_) => "characters",
            SaxEventRef::Comment(_) => "comment",
            SaxEventRef::ProcessingInstruction { .. } => "processing instruction",
        }
    }

    /// Materializes the owned compatibility form of this event.
    pub fn to_owned_event(&self) -> SaxEvent {
        match *self {
            SaxEventRef::StartDocument => SaxEvent::StartDocument,
            SaxEventRef::EndDocument => SaxEvent::EndDocument,
            SaxEventRef::StartElement { name, attributes } => SaxEvent::StartElement {
                name: name.clone(),
                attributes: attributes.to_vec(),
            },
            SaxEventRef::EndElement { name } => SaxEvent::EndElement { name: name.clone() },
            SaxEventRef::Characters(text) => SaxEvent::Characters(text.to_string()),
            SaxEventRef::Comment(text) => SaxEvent::Comment(text.to_string()),
            SaxEventRef::ProcessingInstruction { target, data } => {
                SaxEvent::ProcessingInstruction {
                    target: target.to_string(),
                    data: data.to_string(),
                }
            }
        }
    }
}

impl fmt::Display for SaxEventRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxEventRef::StartDocument | SaxEventRef::EndDocument => f.write_str(self.kind()),
            SaxEventRef::StartElement { name, .. } => write!(f, "start element: {name}"),
            SaxEventRef::EndElement { name } => write!(f, "end element: {name}"),
            SaxEventRef::Characters(s) => write!(f, "characters: {s}"),
            SaxEventRef::Comment(s) => write!(f, "comment: {s}"),
            SaxEventRef::ProcessingInstruction { target, data } => {
                write!(f, "processing instruction: {target} {data}")
            }
        }
    }
}

impl<'a> From<&'a SaxEvent> for SaxEventRef<'a> {
    fn from(event: &'a SaxEvent) -> Self {
        match event {
            SaxEvent::StartDocument => SaxEventRef::StartDocument,
            SaxEvent::EndDocument => SaxEventRef::EndDocument,
            SaxEvent::StartElement { name, attributes } => {
                SaxEventRef::StartElement { name, attributes }
            }
            SaxEvent::EndElement { name } => SaxEventRef::EndElement { name },
            SaxEvent::Characters(text) => SaxEventRef::Characters(text),
            SaxEvent::Comment(text) => SaxEventRef::Comment(text),
            SaxEvent::ProcessingInstruction { target, data } => {
                SaxEventRef::ProcessingInstruction { target, data }
            }
        }
    }
}

impl PartialEq<SaxEvent> for SaxEventRef<'_> {
    fn eq(&self, other: &SaxEvent) -> bool {
        match (self, other) {
            (SaxEventRef::StartDocument, SaxEvent::StartDocument)
            | (SaxEventRef::EndDocument, SaxEvent::EndDocument) => true,
            (
                SaxEventRef::StartElement { name, attributes },
                SaxEvent::StartElement {
                    name: n,
                    attributes: a,
                },
            ) => *name == n && *attributes == a.as_slice(),
            (SaxEventRef::EndElement { name }, SaxEvent::EndElement { name: n }) => *name == n,
            (SaxEventRef::Characters(s), SaxEvent::Characters(t))
            | (SaxEventRef::Comment(s), SaxEvent::Comment(t)) => s == t,
            (
                SaxEventRef::ProcessingInstruction { target, data },
                SaxEvent::ProcessingInstruction { target: t, data: d },
            ) => target == t && data == d,
            _ => false,
        }
    }
}

/// A byte range into one of the sequence's arenas.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ArenaSpan {
    start: u32,
    end: u32,
}

impl ArenaSpan {
    fn new(start: usize, end: usize) -> ArenaSpan {
        ArenaSpan {
            start: u32::try_from(start).expect("SAX arena exceeds u32 range"),
            end: u32::try_from(end).expect("SAX arena exceeds u32 range"),
        }
    }

    fn text<'a>(&self, arena: &'a str) -> &'a str {
        &arena[self.start as usize..self.end as usize]
    }

    fn attrs<'a>(&self, arena: &'a [Attribute]) -> &'a [Attribute] {
        &arena[self.start as usize..self.end as usize]
    }
}

/// Compact arena entry: names inline (two `Arc` pointers via [`QName`]),
/// payloads as ranges into the shared buffers.
#[derive(Debug, Clone, PartialEq)]
enum ArenaEvent {
    StartDocument,
    EndDocument,
    StartElement { name: QName, attrs: ArenaSpan },
    EndElement { name: QName },
    Characters(ArenaSpan),
    Comment(ArenaSpan),
    ProcessingInstruction { target: ArenaSpan, data: ArenaSpan },
}

/// A recorded sequence of SAX events — the paper's cached "SAX events
/// sequence" value representation, stored in arena form.
///
/// ```
/// use wsrc_xml::reader::XmlReader;
/// # fn main() -> Result<(), wsrc_xml::XmlError> {
/// let seq = XmlReader::new("<doc><para>Hello, world!</para></doc>")
///     .read_sequence()?;
/// assert_eq!(seq.len(), 7); // matches the paper's Table 4
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SaxEventSequence {
    events: Vec<ArenaEvent>,
    /// All attributes of all start-elements, contiguously.
    attrs: Vec<Attribute>,
    /// All character/comment/PI text, contiguously.
    text: String,
    /// Distinct element/attribute names, each held once.
    symbols: SymbolTable,
}

impl SaxEventSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        SaxEventSequence::default()
    }

    /// Appends one owned event, moving its payload into the arenas.
    pub fn push(&mut self, event: SaxEvent) {
        match event {
            SaxEvent::StartDocument => self.events.push(ArenaEvent::StartDocument),
            SaxEvent::EndDocument => self.events.push(ArenaEvent::EndDocument),
            SaxEvent::StartElement { name, attributes } => {
                let name = self.symbols.unify_qname(&name);
                let start = self.attrs.len();
                for a in attributes {
                    let name = self.symbols.unify_qname(&a.name);
                    self.attrs.push(Attribute {
                        name,
                        value: a.value,
                    });
                }
                self.events.push(ArenaEvent::StartElement {
                    name,
                    attrs: ArenaSpan::new(start, self.attrs.len()),
                });
            }
            SaxEvent::EndElement { name } => {
                let name = self.symbols.unify_qname(&name);
                self.events.push(ArenaEvent::EndElement { name });
            }
            SaxEvent::Characters(text) => self.record_characters(&text),
            SaxEvent::Comment(text) => self.record_comment(&text),
            SaxEvent::ProcessingInstruction { target, data } => {
                self.record_processing_instruction(&target, &data)
            }
        }
    }

    /// Records a start-element, interning the names through the
    /// sequence's symbol table (pointer bumps when already interned).
    pub fn record_start_element(&mut self, name: &QName, attributes: &[Attribute]) {
        let name = self.symbols.unify_qname(name);
        let start = self.attrs.len();
        for a in attributes {
            let name = self.symbols.unify_qname(&a.name);
            self.attrs.push(Attribute {
                name,
                value: a.value.clone(),
            });
        }
        self.events.push(ArenaEvent::StartElement {
            name,
            attrs: ArenaSpan::new(start, self.attrs.len()),
        });
    }

    /// Records an end-element.
    pub fn record_end_element(&mut self, name: &QName) {
        let name = self.symbols.unify_qname(name);
        self.events.push(ArenaEvent::EndElement { name });
    }

    /// Records a start-document marker.
    pub fn record_start_document(&mut self) {
        self.events.push(ArenaEvent::StartDocument);
    }

    /// Records an end-document marker.
    pub fn record_end_document(&mut self) {
        self.events.push(ArenaEvent::EndDocument);
    }

    /// Records character data into the shared text arena.
    pub fn record_characters(&mut self, text: &str) {
        let span = self.append_text(text);
        self.events.push(ArenaEvent::Characters(span));
    }

    /// Records a comment into the shared text arena.
    pub fn record_comment(&mut self, text: &str) {
        let span = self.append_text(text);
        self.events.push(ArenaEvent::Comment(span));
    }

    /// Records a processing instruction into the shared text arena.
    pub fn record_processing_instruction(&mut self, target: &str, data: &str) {
        let target = self.append_text(target);
        let data = self.append_text(data);
        self.events
            .push(ArenaEvent::ProcessingInstruction { target, data });
    }

    fn append_text(&mut self, text: &str) -> ArenaSpan {
        let start = self.text.len();
        self.text.push_str(text);
        ArenaSpan::new(start, self.text.len())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event at `index`, borrowed from the arenas.
    pub fn get(&self, index: usize) -> Option<SaxEventRef<'_>> {
        self.events.get(index).map(|e| self.view(e))
    }

    /// Iterates over the recorded events as borrowed views.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            seq: self,
            inner: self.events.iter(),
        }
    }

    /// Materializes the owned-event compatibility view of the whole
    /// sequence (allocates; the hit path never needs this).
    pub fn to_owned_events(&self) -> Vec<SaxEvent> {
        self.iter().map(|e| e.to_owned_event()).collect()
    }

    /// The distinct names referenced by this sequence.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Replays the recorded events into a handler, exactly as a parser
    /// would have delivered them. This is the cache-hit path for the SAX
    /// representation: no XML parsing — and, in arena form, no
    /// allocation — happens; every callback borrows from the arenas.
    pub fn replay<H: crate::sax::ContentHandler>(&self, handler: &mut H) -> Result<(), H::Error> {
        for event in &self.events {
            match event {
                ArenaEvent::StartDocument => handler.start_document()?,
                ArenaEvent::EndDocument => handler.end_document()?,
                ArenaEvent::StartElement { name, attrs } => {
                    handler.start_element(name, attrs.attrs(&self.attrs))?
                }
                ArenaEvent::EndElement { name } => handler.end_element(name)?,
                ArenaEvent::Characters(span) => handler.characters(span.text(&self.text))?,
                ArenaEvent::Comment(span) => handler.comment(span.text(&self.text))?,
                ArenaEvent::ProcessingInstruction { target, data } => handler
                    .processing_instruction(target.text(&self.text), data.text(&self.text))?,
            }
        }
        Ok(())
    }

    /// Approximate retained size in bytes (paper Table 9 accounting).
    ///
    /// Events are charged at their fixed arena width, text at its byte
    /// length, attribute values at theirs — and every distinct name is
    /// charged **once** via the embedded symbol table, not once per
    /// event referencing it.
    pub fn approximate_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.events.len() * std::mem::size_of::<ArenaEvent>()
            + self
                .attrs
                .iter()
                .map(|a| std::mem::size_of::<Attribute>() + a.value.len())
                .sum::<usize>()
            + self.text.len()
            + self.symbols.names_bytes()
    }

    fn view<'a>(&'a self, event: &'a ArenaEvent) -> SaxEventRef<'a> {
        match event {
            ArenaEvent::StartDocument => SaxEventRef::StartDocument,
            ArenaEvent::EndDocument => SaxEventRef::EndDocument,
            ArenaEvent::StartElement { name, attrs } => SaxEventRef::StartElement {
                name,
                attributes: attrs.attrs(&self.attrs),
            },
            ArenaEvent::EndElement { name } => SaxEventRef::EndElement { name },
            ArenaEvent::Characters(span) => SaxEventRef::Characters(span.text(&self.text)),
            ArenaEvent::Comment(span) => SaxEventRef::Comment(span.text(&self.text)),
            ArenaEvent::ProcessingInstruction { target, data } => {
                SaxEventRef::ProcessingInstruction {
                    target: target.text(&self.text),
                    data: data.text(&self.text),
                }
            }
        }
    }
}

/// Two sequences are equal when they replay the same events, regardless
/// of how their arenas are laid out or which tables interned the names.
impl PartialEq for SaxEventSequence {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

/// Borrowed iterator over a sequence's events.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    seq: &'a SaxEventSequence,
    inner: std::slice::Iter<'a, ArenaEvent>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = SaxEventRef<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|e| self.seq.view(e))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl FromIterator<SaxEvent> for SaxEventSequence {
    fn from_iter<I: IntoIterator<Item = SaxEvent>>(iter: I) -> Self {
        let mut seq = SaxEventSequence::new();
        seq.extend(iter);
        seq
    }
}

impl Extend<SaxEvent> for SaxEventSequence {
    fn extend<I: IntoIterator<Item = SaxEvent>>(&mut self, iter: I) {
        for event in iter {
            self.push(event);
        }
    }
}

impl From<Vec<SaxEvent>> for SaxEventSequence {
    fn from(events: Vec<SaxEvent>) -> Self {
        events.into_iter().collect()
    }
}

impl IntoIterator for SaxEventSequence {
    type Item = SaxEvent;
    type IntoIter = std::vec::IntoIter<SaxEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_owned_events().into_iter()
    }
}

impl<'a> IntoIterator for &'a SaxEventSequence {
    type Item = SaxEventRef<'a>;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SaxEventSequence {
        vec![
            SaxEvent::StartDocument,
            SaxEvent::StartElement {
                name: QName::local("doc"),
                attributes: vec![],
            },
            SaxEvent::Characters("hi".into()),
            SaxEvent::EndElement {
                name: QName::local("doc"),
            },
            SaxEvent::EndDocument,
        ]
        .into()
    }

    #[test]
    fn display_matches_paper_table4_style() {
        assert_eq!(SaxEvent::StartDocument.to_string(), "start document");
        assert_eq!(
            SaxEvent::StartElement {
                name: QName::local("para"),
                attributes: vec![]
            }
            .to_string(),
            "start element: para"
        );
        assert_eq!(
            SaxEvent::Characters("Hello, world!".into()).to_string(),
            "characters: Hello, world!"
        );
        assert_eq!(
            SaxEvent::EndElement {
                name: QName::local("para")
            }
            .to_string(),
            "end element: para"
        );
        assert_eq!(SaxEvent::EndDocument.to_string(), "end document");
    }

    #[test]
    fn sequence_collects_and_iterates_in_order() {
        let seq = sample();
        assert_eq!(seq.len(), 5);
        assert!(!seq.is_empty());
        let kinds: Vec<_> = seq.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "start document",
                "start element",
                "characters",
                "end element",
                "end document"
            ]
        );
    }

    #[test]
    fn size_accounts_for_strings() {
        let small = SaxEvent::Characters("a".into()).approximate_size();
        let big = SaxEvent::Characters("a".repeat(100)).approximate_size();
        assert_eq!(big - small, 99);
    }

    #[test]
    fn size_accounts_for_attributes() {
        let bare = SaxEvent::StartElement {
            name: QName::local("e"),
            attributes: vec![],
        }
        .approximate_size();
        let with_attr = SaxEvent::StartElement {
            name: QName::local("e"),
            attributes: vec![Attribute::new("href", "value")],
        }
        .approximate_size();
        assert!(with_attr > bare + "href".len() + "value".len());
    }

    #[test]
    fn attribute_display_escapes_value() {
        let a = Attribute::new("t", "a\"b");
        assert_eq!(a.to_string(), "t=\"a&quot;b\"");
    }

    #[test]
    fn arena_roundtrips_owned_events() {
        let owned = vec![
            SaxEvent::StartDocument,
            SaxEvent::StartElement {
                name: QName::parse("ns:doc"),
                attributes: vec![Attribute::new("ns:attr", "v1"), Attribute::new("b", "v2")],
            },
            SaxEvent::Characters("hello".into()),
            SaxEvent::Comment("note".into()),
            SaxEvent::ProcessingInstruction {
                target: "pi".into(),
                data: "d".into(),
            },
            SaxEvent::EndElement {
                name: QName::parse("ns:doc"),
            },
            SaxEvent::EndDocument,
        ];
        let seq: SaxEventSequence = owned.clone().into();
        assert_eq!(seq.to_owned_events(), owned);
        for (a, b) in seq.iter().zip(&owned) {
            assert_eq!(a, *b);
        }
        assert_eq!(seq.get(2), Some(SaxEventRef::Characters("hello")));
        assert_eq!(seq.get(99), None);
    }

    #[test]
    fn equality_is_semantic_across_arena_layouts() {
        // Same events pushed in one batch vs. recorded incrementally.
        let a = sample();
        let mut b = SaxEventSequence::new();
        b.record_start_document();
        b.record_start_element(&QName::local("doc"), &[]);
        b.record_characters("hi");
        b.record_end_element(&QName::local("doc"));
        b.record_end_document();
        assert_eq!(a, b);
        let mut c = b.clone();
        c.record_characters("extra");
        assert_ne!(a, c);
    }

    #[test]
    fn repeated_names_are_interned_once() {
        let mut seq = SaxEventSequence::new();
        let item = QName::local("item");
        for _ in 0..100 {
            seq.record_start_element(&item, &[]);
            seq.record_end_element(&item);
        }
        assert_eq!(seq.len(), 200);
        assert_eq!(seq.symbols().len(), 1);
        assert_eq!(seq.symbols().names_bytes(), "item".len());
        // All events share one allocation for the name.
        let mut locals = seq.iter().filter_map(|e| match e {
            SaxEventRef::StartElement { name, .. } | SaxEventRef::EndElement { name } => {
                Some(name.local_symbol().clone())
            }
            _ => None,
        });
        let first = locals.next().unwrap();
        assert!(locals.all(|s| s.ptr_eq(&first)));
    }

    #[test]
    fn size_charges_interned_names_once() {
        let mut small = SaxEventSequence::new();
        let mut big = SaxEventSequence::new();
        let name = QName::local("element-with-a-long-name");
        for seq_ops in [(&mut small, 2usize), (&mut big, 200usize)] {
            let (seq, n) = seq_ops;
            for _ in 0..n {
                seq.record_start_element(&name, &[]);
                seq.record_end_element(&name);
            }
        }
        let per_event = (big.approximate_size() - small.approximate_size()) as f64
            / (big.len() - small.len()) as f64;
        // The marginal event costs its arena slot only — far less than
        // the 24-byte name it references.
        assert!(
            per_event < std::mem::size_of::<ArenaEvent>() as f64 + 1.0,
            "marginal event size {per_event} should not include the name"
        );
        assert_eq!(big.symbols().names_bytes(), small.symbols().names_bytes());
    }

    #[test]
    fn replay_delivers_borrowed_events() {
        use crate::sax::Recorder;
        let seq = sample();
        let mut rec = Recorder::new();
        seq.replay(&mut rec).unwrap();
        assert_eq!(rec.sequence(), &seq);
    }
}

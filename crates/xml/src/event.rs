//! SAX-style event model and the recordable event sequence.
//!
//! The paper's first optimization caches the "post-parsing representation":
//! the sequence of SAX events a parser would deliver for a response
//! document. [`SaxEventSequence`] is that representation — it can be
//! recorded once and replayed into any [`crate::sax::ContentHandler`]
//! without re-parsing the XML text.
//!
//! Since the zero-copy pipeline rework the sequence is stored in *arena*
//! form: one contiguous event vector whose character/comment/PI payloads
//! are range-indexed slices of a single shared text buffer, and whose
//! element/attribute names are compact `u32` ids into a per-sequence
//! name table (each distinct [`QName`] held exactly once). Events and
//! attribute records are plain old data — recording and dropping a
//! sequence touches no per-event reference counts. Replaying borrows
//! straight out of the arenas — the hit path performs no allocation —
//! while [`SaxEvent`] remains the owned, per-event compatibility view.

use crate::name::QName;
use std::fmt;

/// An attribute as reported on a start-element event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, possibly prefixed; includes `xmlns`/`xmlns:p`
    /// declarations so consumers can maintain namespace scopes.
    pub name: QName,
    /// The unescaped attribute value.
    pub value: String,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl AsRef<str>, value: impl Into<String>) -> Self {
        Attribute {
            name: QName::parse(name.as_ref()),
            value: value.into(),
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}=\"{}\"",
            self.name,
            crate::escape::escape_attribute(&self.value)
        )
    }
}

/// One attribute borrowed from a start-element event: the interned name
/// plus the unescaped value as a slice of whichever buffer backs it
/// (raw input for escape-free values, a scratch or arena buffer
/// otherwise). Nothing is allocated to produce one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrRef<'a> {
    /// Attribute name, possibly prefixed.
    pub name: &'a QName,
    /// The unescaped attribute value.
    pub value: &'a str,
}

impl AttrRef<'_> {
    /// Materializes the owned compatibility form.
    pub fn to_attribute(&self) -> Attribute {
        Attribute {
            name: self.name.clone(),
            value: self.value.to_string(),
        }
    }
}

impl PartialEq<Attribute> for AttrRef<'_> {
    fn eq(&self, other: &Attribute) -> bool {
        *self.name == other.name && self.value == other.value
    }
}

impl fmt::Display for AttrRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}=\"{}\"",
            self.name,
            crate::escape::escape_attribute(self.value)
        )
    }
}

/// One recorded attribute in span form: a name id into the owner's
/// name table plus a value range into one of two backing buffers (see
/// [`Attributes`]). This is what the reader and the arena sequence
/// store per attribute — the name and value bytes live in shared
/// tables, never per-attribute, so a record is 16 bytes of plain data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct AttrRecord {
    pub(crate) name: u32,
    pub(crate) start: u32,
    pub(crate) end: u32,
    /// Value lives in the alternate backing (the unescape scratch)
    /// rather than the primary buffer (raw input or arena text).
    pub(crate) in_alt: bool,
}

/// The attribute list delivered on a start-element event.
///
/// A cheap `Copy` view over one of two storages — a slice of owned
/// [`Attribute`]s (owned events) or span records plus their backing
/// buffers (the reader's borrowed path and the arena sequence).
/// Iteration yields [`AttrRef`]s either way, so handlers are agnostic
/// to where the bytes live and the borrowed path allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct Attributes<'a> {
    repr: AttrsRepr<'a>,
}

#[derive(Debug, Clone, Copy)]
enum AttrsRepr<'a> {
    Owned(&'a [Attribute]),
    Records {
        records: &'a [AttrRecord],
        /// Name table the records' `name` ids index.
        names: &'a [QName],
        /// Backs spans with `in_alt == false`.
        primary: &'a str,
        /// Backs spans with `in_alt == true`.
        alt: &'a str,
    },
}

impl<'a> Attributes<'a> {
    /// An empty attribute list.
    pub fn empty() -> Attributes<'static> {
        Attributes {
            repr: AttrsRepr::Owned(&[]),
        }
    }

    /// Views a slice of owned attributes.
    pub fn from_slice(attributes: &'a [Attribute]) -> Self {
        Attributes {
            repr: AttrsRepr::Owned(attributes),
        }
    }

    pub(crate) fn from_records(
        records: &'a [AttrRecord],
        names: &'a [QName],
        primary: &'a str,
        alt: &'a str,
    ) -> Self {
        Attributes {
            repr: AttrsRepr::Records {
                records,
                names,
                primary,
                alt,
            },
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        match self.repr {
            AttrsRepr::Owned(slice) => slice.len(),
            AttrsRepr::Records { records, .. } => records.len(),
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The attribute at `index`.
    pub fn get(&self, index: usize) -> Option<AttrRef<'a>> {
        match self.repr {
            AttrsRepr::Owned(slice) => slice.get(index).map(|a| AttrRef {
                name: &a.name,
                value: &a.value,
            }),
            AttrsRepr::Records {
                records,
                names,
                primary,
                alt,
            } => records.get(index).map(|r| AttrRef {
                name: &names[r.name as usize],
                value: if r.in_alt {
                    &alt[r.start as usize..r.end as usize]
                } else {
                    &primary[r.start as usize..r.end as usize]
                },
            }),
        }
    }

    /// Iterates over the attributes as borrowed [`AttrRef`]s.
    pub fn iter(&self) -> AttrIter<'a> {
        AttrIter {
            attrs: *self,
            index: 0,
        }
    }

    /// Materializes owned [`Attribute`]s (allocates; the borrowed
    /// pipeline never needs this).
    pub fn to_owned_vec(&self) -> Vec<Attribute> {
        self.iter().map(|a| a.to_attribute()).collect()
    }
}

impl Default for Attributes<'_> {
    fn default() -> Self {
        Attributes::empty()
    }
}

impl<'a> From<&'a [Attribute]> for Attributes<'a> {
    fn from(attributes: &'a [Attribute]) -> Self {
        Attributes::from_slice(attributes)
    }
}

impl<'a, const N: usize> From<&'a [Attribute; N]> for Attributes<'a> {
    fn from(attributes: &'a [Attribute; N]) -> Self {
        Attributes::from_slice(attributes)
    }
}

impl<'a> From<&'a Vec<Attribute>> for Attributes<'a> {
    fn from(attributes: &'a Vec<Attribute>) -> Self {
        Attributes::from_slice(attributes)
    }
}

impl<'a> IntoIterator for Attributes<'a> {
    type Item = AttrRef<'a>;
    type IntoIter = AttrIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a> IntoIterator for &Attributes<'a> {
    type Item = AttrRef<'a>;
    type IntoIter = AttrIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Equality is by (name, value) pairs, regardless of storage.
impl PartialEq for Attributes<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl PartialEq<[Attribute]> for Attributes<'_> {
    fn eq(&self, other: &[Attribute]) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == *b)
    }
}

impl PartialEq<&[Attribute]> for Attributes<'_> {
    fn eq(&self, other: &&[Attribute]) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<Attribute>> for Attributes<'_> {
    fn eq(&self, other: &Vec<Attribute>) -> bool {
        *self == other[..]
    }
}

/// Iterator over [`Attributes`], yielding borrowed [`AttrRef`]s.
#[derive(Debug, Clone)]
pub struct AttrIter<'a> {
    attrs: Attributes<'a>,
    index: usize,
}

impl<'a> Iterator for AttrIter<'a> {
    type Item = AttrRef<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.attrs.get(self.index)?;
        self.index += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.attrs.len() - self.index;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for AttrIter<'_> {}

/// One parsing event, mirroring the SAX `ContentHandler` callbacks the
/// paper's Table 4 illustrates.
///
/// This is the *owned* event form — the compatibility view of an arena
/// [`SaxEventSequence`] entry (see [`SaxEventRef`] for the borrowed
/// form that replay and iteration use).
#[derive(Debug, Clone, PartialEq)]
pub enum SaxEvent {
    /// Document begins.
    StartDocument,
    /// Document ends.
    EndDocument,
    /// `<name attr="…">` — attributes include namespace declarations.
    StartElement {
        /// Element name as written (prefix preserved).
        name: QName,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// `</name>` or the implicit close of `<name/>`.
    EndElement {
        /// Element name as written.
        name: QName,
    },
    /// Character data with entities already expanded. Adjacent runs may be
    /// reported as a single event.
    Characters(String),
    /// `<!-- … -->`.
    Comment(String),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// The PI target.
        target: String,
        /// Everything after the target, whitespace-trimmed on the left.
        data: String,
    },
}

impl SaxEvent {
    /// Short label used by `Display` and the paper-style Table 4 printout.
    pub fn kind(&self) -> &'static str {
        match self {
            SaxEvent::StartDocument => "start document",
            SaxEvent::EndDocument => "end document",
            SaxEvent::StartElement { .. } => "start element",
            SaxEvent::EndElement { .. } => "end element",
            SaxEvent::Characters(_) => "characters",
            SaxEvent::Comment(_) => "comment",
            SaxEvent::ProcessingInstruction { .. } => "processing instruction",
        }
    }

    /// Approximate retained heap + inline size in bytes of this event as
    /// an *owned* value (every string charged to this event).
    ///
    /// Arena sequences account differently — names interned in the
    /// sequence's name table are charged once per table; see
    /// [`SaxEventSequence::approximate_size`].
    pub fn approximate_size(&self) -> usize {
        let base = std::mem::size_of::<SaxEvent>();
        match self {
            SaxEvent::StartDocument | SaxEvent::EndDocument => base,
            SaxEvent::StartElement { name, attributes } => {
                base + name.text_len()
                    + attributes
                        .iter()
                        .map(|a| {
                            std::mem::size_of::<Attribute>() + a.name.text_len() + a.value.len()
                        })
                        .sum::<usize>()
            }
            SaxEvent::EndElement { name } => base + name.text_len(),
            SaxEvent::Characters(s) | SaxEvent::Comment(s) => base + s.len(),
            SaxEvent::ProcessingInstruction { target, data } => base + target.len() + data.len(),
        }
    }
}

impl fmt::Display for SaxEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxEvent::StartDocument | SaxEvent::EndDocument => f.write_str(self.kind()),
            SaxEvent::StartElement { name, .. } => write!(f, "start element: {name}"),
            SaxEvent::EndElement { name } => write!(f, "end element: {name}"),
            SaxEvent::Characters(s) => write!(f, "characters: {s}"),
            SaxEvent::Comment(s) => write!(f, "comment: {s}"),
            SaxEvent::ProcessingInstruction { target, data } => {
                write!(f, "processing instruction: {target} {data}")
            }
        }
    }
}

/// One event *borrowed* from an arena [`SaxEventSequence`]: names point
/// at the sequence's interned symbols, text at its shared buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SaxEventRef<'a> {
    /// Document begins.
    StartDocument,
    /// Document ends.
    EndDocument,
    /// `<name attr="…">`.
    StartElement {
        /// Element name as written.
        name: &'a QName,
        /// Attributes in document order.
        attributes: Attributes<'a>,
    },
    /// `</name>` or the implicit close of `<name/>`.
    EndElement {
        /// Element name as written.
        name: &'a QName,
    },
    /// Character data.
    Characters(&'a str),
    /// `<!-- … -->`.
    Comment(&'a str),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// The PI target.
        target: &'a str,
        /// Everything after the target.
        data: &'a str,
    },
}

impl SaxEventRef<'_> {
    /// Short label matching [`SaxEvent::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            SaxEventRef::StartDocument => "start document",
            SaxEventRef::EndDocument => "end document",
            SaxEventRef::StartElement { .. } => "start element",
            SaxEventRef::EndElement { .. } => "end element",
            SaxEventRef::Characters(_) => "characters",
            SaxEventRef::Comment(_) => "comment",
            SaxEventRef::ProcessingInstruction { .. } => "processing instruction",
        }
    }

    /// Materializes the owned compatibility form of this event.
    pub fn to_owned_event(&self) -> SaxEvent {
        match *self {
            SaxEventRef::StartDocument => SaxEvent::StartDocument,
            SaxEventRef::EndDocument => SaxEvent::EndDocument,
            SaxEventRef::StartElement { name, attributes } => SaxEvent::StartElement {
                name: name.clone(),
                attributes: attributes.to_owned_vec(),
            },
            SaxEventRef::EndElement { name } => SaxEvent::EndElement { name: name.clone() },
            SaxEventRef::Characters(text) => SaxEvent::Characters(text.to_string()),
            SaxEventRef::Comment(text) => SaxEvent::Comment(text.to_string()),
            SaxEventRef::ProcessingInstruction { target, data } => {
                SaxEvent::ProcessingInstruction {
                    target: target.to_string(),
                    data: data.to_string(),
                }
            }
        }
    }
}

impl fmt::Display for SaxEventRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxEventRef::StartDocument | SaxEventRef::EndDocument => f.write_str(self.kind()),
            SaxEventRef::StartElement { name, .. } => write!(f, "start element: {name}"),
            SaxEventRef::EndElement { name } => write!(f, "end element: {name}"),
            SaxEventRef::Characters(s) => write!(f, "characters: {s}"),
            SaxEventRef::Comment(s) => write!(f, "comment: {s}"),
            SaxEventRef::ProcessingInstruction { target, data } => {
                write!(f, "processing instruction: {target} {data}")
            }
        }
    }
}

impl<'a> From<&'a SaxEvent> for SaxEventRef<'a> {
    fn from(event: &'a SaxEvent) -> Self {
        match event {
            SaxEvent::StartDocument => SaxEventRef::StartDocument,
            SaxEvent::EndDocument => SaxEventRef::EndDocument,
            SaxEvent::StartElement { name, attributes } => SaxEventRef::StartElement {
                name,
                attributes: Attributes::from_slice(attributes),
            },
            SaxEvent::EndElement { name } => SaxEventRef::EndElement { name },
            SaxEvent::Characters(text) => SaxEventRef::Characters(text),
            SaxEvent::Comment(text) => SaxEventRef::Comment(text),
            SaxEvent::ProcessingInstruction { target, data } => {
                SaxEventRef::ProcessingInstruction { target, data }
            }
        }
    }
}

impl PartialEq<SaxEvent> for SaxEventRef<'_> {
    fn eq(&self, other: &SaxEvent) -> bool {
        match (self, other) {
            (SaxEventRef::StartDocument, SaxEvent::StartDocument)
            | (SaxEventRef::EndDocument, SaxEvent::EndDocument) => true,
            (
                SaxEventRef::StartElement { name, attributes },
                SaxEvent::StartElement {
                    name: n,
                    attributes: a,
                },
            ) => *name == n && *attributes == a.as_slice(),
            (SaxEventRef::EndElement { name }, SaxEvent::EndElement { name: n }) => *name == n,
            (SaxEventRef::Characters(s), SaxEvent::Characters(t))
            | (SaxEventRef::Comment(s), SaxEvent::Comment(t)) => s == t,
            (
                SaxEventRef::ProcessingInstruction { target, data },
                SaxEvent::ProcessingInstruction { target: t, data: d },
            ) => target == t && data == d,
            _ => false,
        }
    }
}

/// A byte range into one of the sequence's arenas.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ArenaSpan {
    start: u32,
    end: u32,
}

impl ArenaSpan {
    fn new(start: usize, end: usize) -> ArenaSpan {
        ArenaSpan {
            start: u32::try_from(start).expect("SAX arena exceeds u32 range"),
            end: u32::try_from(end).expect("SAX arena exceeds u32 range"),
        }
    }

    fn text<'a>(&self, arena: &'a str) -> &'a str {
        &arena[self.start as usize..self.end as usize]
    }

    fn records<'a>(&self, arena: &'a [AttrRecord]) -> &'a [AttrRecord] {
        &arena[self.start as usize..self.end as usize]
    }
}

/// Compact arena entry: plain old data — names as ids into the
/// sequence's name table, payloads as ranges into the shared buffers.
/// Pushing or dropping millions of these touches no reference counts.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ArenaEvent {
    StartDocument,
    EndDocument,
    StartElement { name: u32, attrs: ArenaSpan },
    EndElement { name: u32 },
    Characters(ArenaSpan),
    Comment(ArenaSpan),
    ProcessingInstruction { target: ArenaSpan, data: ArenaSpan },
}

/// Bucket marker for an empty slot in the name-id index.
const NO_NAME: u32 = u32::MAX;

/// Order-independent hash of a qualified name from its parts' cached
/// FNV hashes (no byte of the name is re-read).
fn qname_hash(name: &QName) -> u64 {
    let local = name.local_symbol().hash64();
    match name.prefix_symbol() {
        None => local,
        Some(p) => local ^ p.hash64().rotate_left(17),
    }
}

/// A recorded sequence of SAX events — the paper's cached "SAX events
/// sequence" value representation, stored in arena form.
///
/// ```
/// use wsrc_xml::reader::XmlReader;
/// # fn main() -> Result<(), wsrc_xml::XmlError> {
/// let seq = XmlReader::new("<doc><para>Hello, world!</para></doc>")
///     .read_sequence()?;
/// assert_eq!(seq.len(), 7); // matches the paper's Table 4
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SaxEventSequence {
    events: Vec<ArenaEvent>,
    /// All attributes of all start-elements as span records — the value
    /// bytes live in `text`, never per-attribute.
    attrs: Vec<AttrRecord>,
    /// All character/comment/PI text and attribute values, contiguously.
    text: String,
    /// Distinct element/attribute names, each held once; events and
    /// attribute records refer to them by index.
    names: Vec<QName>,
    /// Open-addressed name→id index over `names`, keyed by the names'
    /// cached hashes. Only the incremental record paths need it; a
    /// sequence built by the reader adopts a finished `names` table and
    /// leaves this empty until (if ever) another name is recorded.
    name_ids: Vec<u32>,
}

impl SaxEventSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        SaxEventSequence::default()
    }

    /// Appends one owned event, moving its payload into the arenas.
    pub fn push(&mut self, event: SaxEvent) {
        match event {
            SaxEvent::StartDocument => self.events.push(ArenaEvent::StartDocument),
            SaxEvent::EndDocument => self.events.push(ArenaEvent::EndDocument),
            SaxEvent::StartElement { name, attributes } => {
                let name = self.intern_name(&name);
                let start = self.attrs.len();
                for a in &attributes {
                    let name = self.intern_name(&a.name);
                    let span = self.append_text(&a.value);
                    self.attrs.push(AttrRecord {
                        name,
                        start: span.start,
                        end: span.end,
                        in_alt: false,
                    });
                }
                self.events.push(ArenaEvent::StartElement {
                    name,
                    attrs: ArenaSpan::new(start, self.attrs.len()),
                });
            }
            SaxEvent::EndElement { name } => {
                let name = self.intern_name(&name);
                self.events.push(ArenaEvent::EndElement { name });
            }
            SaxEvent::Characters(text) => self.record_characters(&text),
            SaxEvent::Comment(text) => self.record_comment(&text),
            SaxEvent::ProcessingInstruction { target, data } => {
                self.record_processing_instruction(&target, &data)
            }
        }
    }

    /// Records a start-element, interning the names into the sequence's
    /// name table (an index probe when already present) and copying
    /// attribute values into the shared text arena.
    pub fn record_start_element<'a>(
        &mut self,
        name: &QName,
        attributes: impl Into<Attributes<'a>>,
    ) {
        let attributes = attributes.into();
        let name = self.intern_name(name);
        let start = self.attrs.len();
        for a in attributes {
            let name = self.intern_name(a.name);
            let span = self.append_text(a.value);
            self.attrs.push(AttrRecord {
                name,
                start: span.start,
                end: span.end,
                in_alt: false,
            });
        }
        self.events.push(ArenaEvent::StartElement {
            name,
            attrs: ArenaSpan::new(start, self.attrs.len()),
        });
    }

    /// Records an end-element whose name id refers to the table this
    /// sequence will adopt.
    pub(crate) fn record_end_element_id(&mut self, name: u32) {
        self.events.push(ArenaEvent::EndElement { name });
    }

    /// Moves the reader's per-tag attribute records into the arena,
    /// rebasing the value spans from the parser's backing buffers onto
    /// the shared text arena. Name ids transfer verbatim (the reader's
    /// document name table becomes this sequence's table at the end) —
    /// recording an element touches no reference counts.
    pub(crate) fn record_start_element_drained(
        &mut self,
        name: u32,
        records: &mut Vec<AttrRecord>,
        primary: &str,
        alt: &str,
    ) {
        let start = self.attrs.len();
        if records.is_empty() {
            // Most elements carry no attributes; skip the drain setup.
            self.events.push(ArenaEvent::StartElement {
                name,
                attrs: ArenaSpan::new(start, start),
            });
            return;
        }
        for mut r in records.drain(..) {
            let backing = if r.in_alt { alt } else { primary };
            let span = self.append_text(&backing[r.start as usize..r.end as usize]);
            r.start = span.start;
            r.end = span.end;
            r.in_alt = false;
            self.attrs.push(r);
        }
        self.events.push(ArenaEvent::StartElement {
            name,
            attrs: ArenaSpan::new(start, self.attrs.len()),
        });
    }

    /// Resolves `name` to its id in this sequence's name table, adding
    /// it if new. The open-addressed index probes on the name's cached
    /// hash; it is (re)built lazily so sequences that adopt a finished
    /// table never pay for it.
    fn intern_name(&mut self, name: &QName) -> u32 {
        if self.name_ids.len() < (self.names.len() + 1) * 2 {
            self.grow_name_index();
        }
        let mask = self.name_ids.len() - 1;
        let mut slot = (qname_hash(name) as usize) & mask;
        loop {
            match self.name_ids[slot] {
                NO_NAME => break,
                id => {
                    if &self.names[id as usize] == name {
                        return id;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
        let id = u32::try_from(self.names.len()).expect("name table exceeds u32 range");
        self.names.push(name.clone());
        self.name_ids[slot] = id;
        id
    }

    /// Builds (or doubles) the name→id index over `names`.
    fn grow_name_index(&mut self) {
        let new_len = (self.name_ids.len() * 2)
            .max(16)
            .max((self.names.len() * 2 + 1).next_power_of_two());
        self.name_ids.clear();
        self.name_ids.resize(new_len, NO_NAME);
        let mask = new_len - 1;
        for (id, name) in self.names.iter().enumerate() {
            let mut slot = (qname_hash(name) as usize) & mask;
            while self.name_ids[slot] != NO_NAME {
                slot = (slot + 1) & mask;
            }
            self.name_ids[slot] = id as u32;
        }
    }

    /// Pre-sizes the arenas for a document of `input_len` bytes (rough
    /// SOAP-shaped ratios), so recording a whole parse does not pay
    /// repeated growth copies.
    pub(crate) fn reserve_for_input(&mut self, input_len: usize) {
        // Dense SOAP markup runs ~16 input bytes per event; text and
        // attribute values can at most be a subset of the input.
        self.events.reserve(input_len / 16);
        self.text.reserve(input_len / 2);
        self.attrs.reserve(input_len / 96);
    }

    /// Installs the name table the id-based record methods referenced.
    /// The reader resolves every name to an id exactly once while
    /// scanning, then hands its document name table over here by move.
    pub(crate) fn adopt_names(&mut self, names: Vec<QName>) {
        debug_assert!(self.names.is_empty(), "adopt_names would orphan name ids");
        self.names = names;
    }

    /// Records an end-element.
    pub fn record_end_element(&mut self, name: &QName) {
        let name = self.intern_name(name);
        self.events.push(ArenaEvent::EndElement { name });
    }

    /// Records a start-document marker.
    pub fn record_start_document(&mut self) {
        self.events.push(ArenaEvent::StartDocument);
    }

    /// Records an end-document marker.
    pub fn record_end_document(&mut self) {
        self.events.push(ArenaEvent::EndDocument);
    }

    /// Records character data into the shared text arena.
    pub fn record_characters(&mut self, text: &str) {
        let span = self.append_text(text);
        self.events.push(ArenaEvent::Characters(span));
    }

    /// Records a comment into the shared text arena.
    pub fn record_comment(&mut self, text: &str) {
        let span = self.append_text(text);
        self.events.push(ArenaEvent::Comment(span));
    }

    /// Records a processing instruction into the shared text arena.
    pub fn record_processing_instruction(&mut self, target: &str, data: &str) {
        let target = self.append_text(target);
        let data = self.append_text(data);
        self.events
            .push(ArenaEvent::ProcessingInstruction { target, data });
    }

    fn append_text(&mut self, text: &str) -> ArenaSpan {
        let start = self.text.len();
        self.text.push_str(text);
        ArenaSpan::new(start, self.text.len())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event at `index`, borrowed from the arenas.
    pub fn get(&self, index: usize) -> Option<SaxEventRef<'_>> {
        self.events.get(index).map(|e| self.view(e))
    }

    /// Iterates over the recorded events as borrowed views.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            seq: self,
            inner: self.events.iter(),
        }
    }

    /// Materializes the owned-event compatibility view of the whole
    /// sequence (allocates; the hit path never needs this).
    pub fn to_owned_events(&self) -> Vec<SaxEvent> {
        self.iter().map(|e| e.to_owned_event()).collect()
    }

    /// The distinct element/attribute names referenced by this
    /// sequence, each held exactly once; events refer to them by index.
    pub fn names(&self) -> &[QName] {
        &self.names
    }

    /// Heap bytes retained by the distinct names — each name charged
    /// once, however many events or attributes reference it.
    pub fn names_bytes(&self) -> usize {
        self.names.iter().map(QName::text_len).sum()
    }

    /// Replays the recorded events into a handler, exactly as a parser
    /// would have delivered them. This is the cache-hit path for the SAX
    /// representation: no XML parsing — and, in arena form, no
    /// allocation — happens; every callback borrows from the arenas.
    pub fn replay<H: crate::sax::ContentHandler>(&self, handler: &mut H) -> Result<(), H::Error> {
        for event in &self.events {
            match event {
                ArenaEvent::StartDocument => handler.start_document()?,
                ArenaEvent::EndDocument => handler.end_document()?,
                ArenaEvent::StartElement { name, attrs } => handler.start_element(
                    &self.names[*name as usize],
                    Attributes::from_records(
                        attrs.records(&self.attrs),
                        &self.names,
                        &self.text,
                        "",
                    ),
                )?,
                ArenaEvent::EndElement { name } => {
                    handler.end_element(&self.names[*name as usize])?
                }
                ArenaEvent::Characters(span) => handler.characters(span.text(&self.text))?,
                ArenaEvent::Comment(span) => handler.comment(span.text(&self.text))?,
                ArenaEvent::ProcessingInstruction { target, data } => handler
                    .processing_instruction(target.text(&self.text), data.text(&self.text))?,
            }
        }
        Ok(())
    }

    /// Approximate retained size in bytes (paper Table 9 accounting).
    ///
    /// Events are charged at their fixed arena width, text at its byte
    /// length, attribute values at theirs — and every distinct name is
    /// charged **once** via the embedded name table (its table slot
    /// plus its text), not once per event referencing it.
    pub fn approximate_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.events.len() * std::mem::size_of::<ArenaEvent>()
            + self.attrs.len() * std::mem::size_of::<AttrRecord>()
            + self.text.len()
            + self.names.len() * std::mem::size_of::<QName>()
            + self.names_bytes()
            + self.name_ids.capacity() * std::mem::size_of::<u32>()
    }

    fn view<'a>(&'a self, event: &'a ArenaEvent) -> SaxEventRef<'a> {
        match event {
            ArenaEvent::StartDocument => SaxEventRef::StartDocument,
            ArenaEvent::EndDocument => SaxEventRef::EndDocument,
            ArenaEvent::StartElement { name, attrs } => SaxEventRef::StartElement {
                name: &self.names[*name as usize],
                attributes: Attributes::from_records(
                    attrs.records(&self.attrs),
                    &self.names,
                    &self.text,
                    "",
                ),
            },
            ArenaEvent::EndElement { name } => SaxEventRef::EndElement {
                name: &self.names[*name as usize],
            },
            ArenaEvent::Characters(span) => SaxEventRef::Characters(span.text(&self.text)),
            ArenaEvent::Comment(span) => SaxEventRef::Comment(span.text(&self.text)),
            ArenaEvent::ProcessingInstruction { target, data } => {
                SaxEventRef::ProcessingInstruction {
                    target: target.text(&self.text),
                    data: data.text(&self.text),
                }
            }
        }
    }
}

/// Two sequences are equal when they replay the same events, regardless
/// of how their arenas are laid out or which tables interned the names.
impl PartialEq for SaxEventSequence {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

/// Borrowed iterator over a sequence's events.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    seq: &'a SaxEventSequence,
    inner: std::slice::Iter<'a, ArenaEvent>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = SaxEventRef<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|e| self.seq.view(e))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl FromIterator<SaxEvent> for SaxEventSequence {
    fn from_iter<I: IntoIterator<Item = SaxEvent>>(iter: I) -> Self {
        let mut seq = SaxEventSequence::new();
        seq.extend(iter);
        seq
    }
}

impl Extend<SaxEvent> for SaxEventSequence {
    fn extend<I: IntoIterator<Item = SaxEvent>>(&mut self, iter: I) {
        for event in iter {
            self.push(event);
        }
    }
}

impl From<Vec<SaxEvent>> for SaxEventSequence {
    fn from(events: Vec<SaxEvent>) -> Self {
        events.into_iter().collect()
    }
}

impl IntoIterator for SaxEventSequence {
    type Item = SaxEvent;
    type IntoIter = std::vec::IntoIter<SaxEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_owned_events().into_iter()
    }
}

impl<'a> IntoIterator for &'a SaxEventSequence {
    type Item = SaxEventRef<'a>;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SaxEventSequence {
        vec![
            SaxEvent::StartDocument,
            SaxEvent::StartElement {
                name: QName::local("doc"),
                attributes: vec![],
            },
            SaxEvent::Characters("hi".into()),
            SaxEvent::EndElement {
                name: QName::local("doc"),
            },
            SaxEvent::EndDocument,
        ]
        .into()
    }

    #[test]
    fn display_matches_paper_table4_style() {
        assert_eq!(SaxEvent::StartDocument.to_string(), "start document");
        assert_eq!(
            SaxEvent::StartElement {
                name: QName::local("para"),
                attributes: vec![]
            }
            .to_string(),
            "start element: para"
        );
        assert_eq!(
            SaxEvent::Characters("Hello, world!".into()).to_string(),
            "characters: Hello, world!"
        );
        assert_eq!(
            SaxEvent::EndElement {
                name: QName::local("para")
            }
            .to_string(),
            "end element: para"
        );
        assert_eq!(SaxEvent::EndDocument.to_string(), "end document");
    }

    #[test]
    fn sequence_collects_and_iterates_in_order() {
        let seq = sample();
        assert_eq!(seq.len(), 5);
        assert!(!seq.is_empty());
        let kinds: Vec<_> = seq.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "start document",
                "start element",
                "characters",
                "end element",
                "end document"
            ]
        );
    }

    #[test]
    fn size_accounts_for_strings() {
        let small = SaxEvent::Characters("a".into()).approximate_size();
        let big = SaxEvent::Characters("a".repeat(100)).approximate_size();
        assert_eq!(big - small, 99);
    }

    #[test]
    fn size_accounts_for_attributes() {
        let bare = SaxEvent::StartElement {
            name: QName::local("e"),
            attributes: vec![],
        }
        .approximate_size();
        let with_attr = SaxEvent::StartElement {
            name: QName::local("e"),
            attributes: vec![Attribute::new("href", "value")],
        }
        .approximate_size();
        assert!(with_attr > bare + "href".len() + "value".len());
    }

    #[test]
    fn attribute_display_escapes_value() {
        let a = Attribute::new("t", "a\"b");
        assert_eq!(a.to_string(), "t=\"a&quot;b\"");
    }

    #[test]
    fn arena_roundtrips_owned_events() {
        let owned = vec![
            SaxEvent::StartDocument,
            SaxEvent::StartElement {
                name: QName::parse("ns:doc"),
                attributes: vec![Attribute::new("ns:attr", "v1"), Attribute::new("b", "v2")],
            },
            SaxEvent::Characters("hello".into()),
            SaxEvent::Comment("note".into()),
            SaxEvent::ProcessingInstruction {
                target: "pi".into(),
                data: "d".into(),
            },
            SaxEvent::EndElement {
                name: QName::parse("ns:doc"),
            },
            SaxEvent::EndDocument,
        ];
        let seq: SaxEventSequence = owned.clone().into();
        assert_eq!(seq.to_owned_events(), owned);
        for (a, b) in seq.iter().zip(&owned) {
            assert_eq!(a, *b);
        }
        assert_eq!(seq.get(2), Some(SaxEventRef::Characters("hello")));
        assert_eq!(seq.get(99), None);
    }

    #[test]
    fn equality_is_semantic_across_arena_layouts() {
        // Same events pushed in one batch vs. recorded incrementally.
        let a = sample();
        let mut b = SaxEventSequence::new();
        b.record_start_document();
        b.record_start_element(&QName::local("doc"), &[]);
        b.record_characters("hi");
        b.record_end_element(&QName::local("doc"));
        b.record_end_document();
        assert_eq!(a, b);
        let mut c = b.clone();
        c.record_characters("extra");
        assert_ne!(a, c);
    }

    #[test]
    fn repeated_names_are_interned_once() {
        let mut seq = SaxEventSequence::new();
        let item = QName::local("item");
        for _ in 0..100 {
            seq.record_start_element(&item, &[]);
            seq.record_end_element(&item);
        }
        assert_eq!(seq.len(), 200);
        assert_eq!(seq.names().len(), 1);
        assert_eq!(seq.names_bytes(), "item".len());
        // All events share one allocation for the name.
        let mut locals = seq.iter().filter_map(|e| match e {
            SaxEventRef::StartElement { name, .. } | SaxEventRef::EndElement { name } => {
                Some(name.local_symbol().clone())
            }
            _ => None,
        });
        let first = locals.next().unwrap();
        assert!(locals.all(|s| s.ptr_eq(&first)));
    }

    #[test]
    fn size_charges_interned_names_once() {
        let mut small = SaxEventSequence::new();
        let mut big = SaxEventSequence::new();
        let name = QName::local("element-with-a-long-name");
        for seq_ops in [(&mut small, 2usize), (&mut big, 200usize)] {
            let (seq, n) = seq_ops;
            for _ in 0..n {
                seq.record_start_element(&name, &[]);
                seq.record_end_element(&name);
            }
        }
        let per_event = (big.approximate_size() - small.approximate_size()) as f64
            / (big.len() - small.len()) as f64;
        // The marginal event costs its arena slot only — far less than
        // the 24-byte name it references.
        assert!(
            per_event < std::mem::size_of::<ArenaEvent>() as f64 + 1.0,
            "marginal event size {per_event} should not include the name"
        );
        assert_eq!(big.names_bytes(), small.names_bytes());
    }

    #[test]
    fn replay_delivers_borrowed_events() {
        use crate::sax::Recorder;
        let seq = sample();
        let mut rec = Recorder::new();
        seq.replay(&mut rec).unwrap();
        assert_eq!(rec.sequence(), &seq);
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! XML substrate for the wsrcache project.
//!
//! This crate provides everything the SOAP layer needs from XML, built from
//! scratch: text escaping, qualified names and namespace handling, a
//! streaming [`writer::XmlWriter`], a pull [`reader::XmlReader`] that emits
//! [`event::SaxEvent`]s, a recordable/replayable [`event::SaxEventSequence`]
//! (the paper's "SAX events sequence" cache representation), and a small
//! [`dom`] tree.
//!
//! # Example
//!
//! ```
//! use wsrc_xml::reader::XmlReader;
//! use wsrc_xml::event::SaxEvent;
//!
//! # fn main() -> Result<(), wsrc_xml::error::XmlError> {
//! let events = XmlReader::new("<doc><para>Hello, world!</para></doc>").read_all()?;
//! assert!(matches!(events.first(), Some(SaxEvent::StartDocument)));
//! # Ok(())
//! # }
//! ```

pub mod dom;
pub mod error;
pub mod escape;
pub mod event;
pub mod name;
pub mod reader;
pub mod sax;
mod scan;
pub mod symbol;
pub mod writer;

pub use dom::{Document, Element, Node};
pub use error::XmlError;
pub use event::{AttrRef, Attribute, Attributes, SaxEvent, SaxEventRef, SaxEventSequence};
pub use name::{NamespaceContext, QName};
pub use reader::XmlReader;
pub use symbol::{Symbol, SymbolTable};
pub use writer::XmlWriter;

//! Qualified names and namespace scope handling.

use crate::symbol::Symbol;
use std::fmt;

/// The reserved `xmlns` attribute prefix.
pub const XMLNS: &str = "xmlns";
/// Namespace URI bound to the reserved `xml` prefix.
pub const XML_NS_URI: &str = "http://www.w3.org/XML/1998/namespace";

/// A qualified XML name: an optional prefix plus a local part.
///
/// `QName` stores the *lexical* form (`soap:Envelope` → prefix `soap`,
/// local `Envelope`). Resolution of prefixes to namespace URIs is done with
/// a [`NamespaceContext`], which mirrors how a streaming parser or a SAX
/// consumer tracks in-scope bindings.
///
/// Both parts are interned [`Symbol`]s: cloning a `QName` is two pointer
/// bumps, names produced through one [`crate::symbol::SymbolTable`]
/// share their text allocations, and equality/hashing reuse the hash
/// computed when the name was interned.
///
/// ```
/// use wsrc_xml::name::QName;
/// let q = QName::parse("soap:Envelope");
/// assert_eq!(q.prefix(), "soap");
/// assert_eq!(q.local_part(), "Envelope");
/// assert_eq!(q.to_string(), "soap:Envelope");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    prefix: Option<Symbol>,
    local: Symbol,
}

impl QName {
    /// Creates a name with no prefix.
    pub fn local(name: impl AsRef<str>) -> Self {
        QName {
            prefix: None,
            local: Symbol::new(name.as_ref()),
        }
    }

    /// Creates a prefixed name.
    pub fn prefixed(prefix: impl AsRef<str>, local: impl AsRef<str>) -> Self {
        let prefix = prefix.as_ref();
        QName {
            prefix: if prefix.is_empty() {
                None
            } else {
                Some(Symbol::new(prefix))
            },
            local: Symbol::new(local.as_ref()),
        }
    }

    /// Parses a lexical QName such as `ns:elem` or `elem`.
    pub fn parse(s: &str) -> Self {
        match s.split_once(':') {
            Some((p, l)) => QName::prefixed(p, l),
            None => QName::local(s),
        }
    }

    /// Assembles a name from already interned symbols (the allocation-free
    /// constructor used by [`crate::symbol::SymbolTable::intern_qname`]).
    pub fn from_symbols(prefix: Option<Symbol>, local: Symbol) -> Self {
        QName {
            prefix: prefix.filter(|p| !p.is_empty()),
            local,
        }
    }

    /// The prefix part; empty for unprefixed names.
    pub fn prefix(&self) -> &str {
        self.prefix.as_ref().map(Symbol::as_str).unwrap_or("")
    }

    /// The local part of the name.
    pub fn local_part(&self) -> &str {
        self.local.as_str()
    }

    /// The interned prefix symbol, if any.
    pub fn prefix_symbol(&self) -> Option<&Symbol> {
        self.prefix.as_ref()
    }

    /// The interned local-part symbol.
    pub fn local_symbol(&self) -> &Symbol {
        &self.local
    }

    /// Whether this name has a prefix.
    pub fn is_prefixed(&self) -> bool {
        self.prefix.is_some()
    }

    /// Whether this is the `xmlns` attribute or an `xmlns:foo` declaration.
    pub fn is_namespace_declaration(&self) -> bool {
        match &self.prefix {
            Some(p) => *p == XMLNS,
            None => self.local == XMLNS,
        }
    }

    /// Heap bytes retained by this name if it were the only owner of its
    /// text (interned names are typically shared; see
    /// [`crate::symbol::SymbolTable::names_bytes`] for charged-once
    /// accounting).
    pub fn text_len(&self) -> usize {
        self.prefix().len() + self.local.len()
    }
}

// A second accessor name kept for call-site readability: `q.local()` is the
// constructor, `q.local_part()` the getter, matching `std`'s split between
// constructors and getters.
impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            None => f.write_str(self.local.as_str()),
            Some(prefix) => write!(f, "{}:{}", prefix, self.local),
        }
    }
}

/// A stack of in-scope namespace bindings.
///
/// Consumers push a scope when they see a start-element, declare any
/// `xmlns`/`xmlns:p` attributes into it, and pop on the matching
/// end-element. [`resolve`](NamespaceContext::resolve) walks the stack from
/// innermost to outermost.
#[derive(Debug, Clone, Default)]
pub struct NamespaceContext {
    // (prefix, uri) pairs per scope; small scopes make Vec faster than maps.
    scopes: Vec<Vec<(String, String)>>,
}

impl NamespaceContext {
    /// Creates an empty context (only the built-in `xml` prefix resolves).
    pub fn new() -> Self {
        NamespaceContext::default()
    }

    /// Enters a new element scope.
    pub fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Leaves the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is active; that indicates unbalanced push/pop by
    /// the caller, which is a programming error rather than bad input.
    pub fn pop_scope(&mut self) {
        self.scopes
            .pop()
            .expect("pop_scope without matching push_scope");
    }

    /// Declares `prefix` (empty string for the default namespace) to map to
    /// `uri` in the innermost scope.
    pub fn declare(&mut self, prefix: impl Into<String>, uri: impl Into<String>) {
        if self.scopes.is_empty() {
            self.scopes.push(Vec::new());
        }
        self.scopes
            .last_mut()
            .expect("scope exists")
            .push((prefix.into(), uri.into()));
    }

    /// Resolves a prefix to its namespace URI, if bound.
    ///
    /// The empty prefix resolves to the in-scope default namespace. The
    /// `xml` prefix always resolves to its fixed URI.
    pub fn resolve(&self, prefix: &str) -> Option<&str> {
        if prefix == "xml" {
            return Some(XML_NS_URI);
        }
        for scope in self.scopes.iter().rev() {
            // Later declarations in the same scope win, matching document order.
            for (p, uri) in scope.iter().rev() {
                if p == prefix {
                    return Some(uri);
                }
            }
        }
        None
    }

    /// Resolves the namespace URI of an element name.
    pub fn resolve_element(&self, name: &QName) -> Option<&str> {
        self.resolve(name.prefix())
    }

    /// Resolves the namespace URI of an attribute name.
    ///
    /// Unprefixed attributes are in *no* namespace (not the default one),
    /// per the Namespaces in XML recommendation.
    pub fn resolve_attribute(&self, name: &QName) -> Option<&str> {
        if name.is_prefixed() {
            self.resolve(name.prefix())
        } else {
            None
        }
    }

    /// Finds a prefix bound to `uri`, preferring the innermost binding.
    pub fn prefix_for(&self, uri: &str) -> Option<&str> {
        for scope in self.scopes.iter().rev() {
            for (p, u) in scope.iter().rev() {
                if u == uri {
                    return Some(p);
                }
            }
        }
        None
    }

    /// Number of active scopes. Useful for consumers asserting balance.
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_splits_on_first_colon() {
        let q = QName::parse("a:b:c");
        assert_eq!(q.prefix(), "a");
        assert_eq!(q.local_part(), "b:c");
    }

    #[test]
    fn display_roundtrips() {
        assert_eq!(QName::parse("x:y").to_string(), "x:y");
        assert_eq!(QName::parse("plain").to_string(), "plain");
    }

    #[test]
    fn xmlns_detection() {
        assert!(QName::parse("xmlns").is_namespace_declaration());
        assert!(QName::parse("xmlns:soap").is_namespace_declaration());
        assert!(!QName::parse("soap:Body").is_namespace_declaration());
    }

    #[test]
    fn resolution_walks_scopes_inner_to_outer() {
        let mut ctx = NamespaceContext::new();
        ctx.push_scope();
        ctx.declare("a", "uri:outer");
        ctx.declare("", "uri:default-outer");
        ctx.push_scope();
        ctx.declare("a", "uri:inner");
        assert_eq!(ctx.resolve("a"), Some("uri:inner"));
        assert_eq!(ctx.resolve(""), Some("uri:default-outer"));
        ctx.pop_scope();
        assert_eq!(ctx.resolve("a"), Some("uri:outer"));
    }

    #[test]
    fn unprefixed_attribute_is_in_no_namespace() {
        let mut ctx = NamespaceContext::new();
        ctx.push_scope();
        ctx.declare("", "uri:default");
        assert_eq!(ctx.resolve_element(&QName::parse("e")), Some("uri:default"));
        assert_eq!(ctx.resolve_attribute(&QName::parse("a")), None);
    }

    #[test]
    fn xml_prefix_is_builtin() {
        let ctx = NamespaceContext::new();
        assert_eq!(ctx.resolve("xml"), Some(XML_NS_URI));
    }

    #[test]
    fn prefix_for_finds_innermost() {
        let mut ctx = NamespaceContext::new();
        ctx.push_scope();
        ctx.declare("o", "uri:x");
        ctx.push_scope();
        ctx.declare("i", "uri:x");
        assert_eq!(ctx.prefix_for("uri:x"), Some("i"));
        assert_eq!(ctx.prefix_for("uri:missing"), None);
    }

    #[test]
    fn unresolved_prefix_is_none() {
        let mut ctx = NamespaceContext::new();
        ctx.push_scope();
        assert_eq!(ctx.resolve("nope"), None);
    }
}

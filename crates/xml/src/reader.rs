//! A hand-written, non-validating pull parser producing SAX events.
//!
//! Supported: elements, attributes (single- or double-quoted), character
//! data, CDATA sections, comments, processing instructions, the XML
//! declaration, predefined entities and character references, and
//! well-formedness checks (tag balance, single root element, attribute
//! uniqueness).
//!
//! Not supported (rejected with an error, as documented in DESIGN.md):
//! DTDs / `<!DOCTYPE …>` — SOAP explicitly forbids them.

use crate::error::XmlError;
use crate::escape::unescape;
use crate::event::{Attribute, SaxEvent, SaxEventSequence};
use crate::name::QName;
use crate::sax::ContentHandler;
use crate::symbol::SymbolTable;
use std::sync::OnceLock;
use wsrc_obs::Histogram;

/// Whole-document parse timers in the process-wide metrics registry,
/// `wsrc_xml_parse_seconds{op=…}`. Initialised once; recording is
/// lock-free afterwards. Per-event `next_event` calls are deliberately
/// not timed — only the whole-document entry points.
fn parse_timer(op: &'static str) -> &'static Histogram {
    static READ_ALL: OnceLock<Histogram> = OnceLock::new();
    static READ_SEQUENCE: OnceLock<Histogram> = OnceLock::new();
    static PARSE_INTO: OnceLock<Histogram> = OnceLock::new();
    let cell = match op {
        "read-all" => &READ_ALL,
        "read-sequence" => &READ_SEQUENCE,
        _ => &PARSE_INTO,
    };
    cell.get_or_init(|| wsrc_obs::global().histogram("wsrc_xml_parse_seconds", &[("op", op)]))
}

/// A streaming XML pull parser.
///
/// Call [`next_event`](XmlReader::next_event) until it returns
/// `Ok(None)`, or use the convenience methods [`read_all`](XmlReader::read_all),
/// [`read_sequence`](XmlReader::read_sequence) and
/// [`parse_into`](XmlReader::parse_into).
///
/// ```
/// use wsrc_xml::{XmlReader, SaxEvent};
/// # fn main() -> Result<(), wsrc_xml::XmlError> {
/// let mut reader = XmlReader::new("<greet who='world'/>");
/// while let Some(event) = reader.next_event()? {
///     if let SaxEvent::StartElement { name, attributes } = event {
///         assert_eq!(name.local_part(), "greet");
///         assert_eq!(attributes[0].value, "world");
///     }
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct XmlReader<'x> {
    input: &'x str,
    pos: usize,
    state: State,
    open_elements: Vec<QName>,
    seen_root: bool,
    pending_end: bool,
    /// Names seen so far: repeated element/attribute names in one
    /// document come back as pointer bumps, hashed once.
    symbols: SymbolTable,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    InDocument,
    Done,
}

impl<'x> XmlReader<'x> {
    /// Creates a parser over a complete document held in memory.
    pub fn new(input: &'x str) -> Self {
        XmlReader {
            input,
            pos: 0,
            state: State::Start,
            open_elements: Vec::new(),
            seen_root: false,
            pending_end: false,
            symbols: SymbolTable::new(),
        }
    }

    /// Parses the whole document, returning every event in order.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or well-formedness error encountered.
    pub fn read_all(mut self) -> Result<Vec<SaxEvent>, XmlError> {
        let _span = parse_timer("read-all").timer();
        let mut events = Vec::new();
        while let Some(e) = self.next_event()? {
            events.push(e);
        }
        Ok(events)
    }

    /// Parses the whole document into an arena [`SaxEventSequence`],
    /// recording events straight into the sequence's buffers (names are
    /// interned once here and unified into the sequence's own table
    /// without re-hashing).
    ///
    /// # Errors
    ///
    /// Returns the first syntax or well-formedness error encountered.
    pub fn read_sequence(mut self) -> Result<SaxEventSequence, XmlError> {
        let _span = parse_timer("read-sequence").timer();
        let mut sequence = SaxEventSequence::new();
        while let Some(event) = self.next_event()? {
            sequence.push(event);
        }
        Ok(sequence)
    }

    /// Parses the document, pushing events into `handler`.
    ///
    /// # Errors
    ///
    /// Returns `Parse` for XML problems and `Handler` when the handler
    /// rejects an event.
    pub fn parse_into<H: ContentHandler>(
        mut self,
        handler: &mut H,
    ) -> Result<(), ParseIntoError<H::Error>> {
        let _span = parse_timer("parse-into").timer();
        while let Some(event) = self.next_event().map_err(ParseIntoError::Parse)? {
            crate::sax::dispatch(handler, &event).map_err(ParseIntoError::Handler)?;
        }
        Ok(())
    }

    /// Returns the next event, or `None` once `EndDocument` was delivered.
    ///
    /// # Errors
    ///
    /// Returns a positioned [`XmlError`] on malformed input.
    pub fn next_event(&mut self) -> Result<Option<SaxEvent>, XmlError> {
        // Synthesized end-element for `<empty/>` takes priority.
        if self.pending_end {
            self.pending_end = false;
            let name = self
                .open_elements
                .pop()
                .expect("pending end implies an open element");
            return Ok(Some(SaxEvent::EndElement { name }));
        }
        match self.state {
            State::Start => {
                self.state = State::InDocument;
                return Ok(Some(SaxEvent::StartDocument));
            }
            State::Done => return Ok(None),
            State::InDocument => {}
        }
        loop {
            if self.pos >= self.input.len() {
                return self.finish_document();
            }
            let rest = &self.input[self.pos..];
            if let Some(text_end) = rest.find('<') {
                if text_end > 0 {
                    let raw = &rest[..text_end];
                    self.pos += text_end;
                    if self.open_elements.is_empty() {
                        if !raw.trim().is_empty() {
                            return Err(self.err("character data outside the root element"));
                        }
                        continue;
                    }
                    let text = unescape(raw).map_err(|e| self.err(e.message()))?;
                    return Ok(Some(SaxEvent::Characters(text.into_owned())));
                }
                // rest starts with '<'
                return self.read_markup();
            } else {
                // trailing text with no more markup
                if !rest.trim().is_empty() {
                    return Err(self.err("character data after the root element"));
                }
                self.pos = self.input.len();
                return self.finish_document();
            }
        }
    }

    fn finish_document(&mut self) -> Result<Option<SaxEvent>, XmlError> {
        if let Some(open) = self.open_elements.last() {
            return Err(self.err(format!("unexpected end of input; <{open}> is still open")));
        }
        if !self.seen_root {
            return Err(self.err("document has no root element"));
        }
        self.state = State::Done;
        Ok(Some(SaxEvent::EndDocument))
    }

    fn read_markup(&mut self) -> Result<Option<SaxEvent>, XmlError> {
        let rest = &self.input[self.pos..];
        debug_assert!(rest.starts_with('<'));
        if rest.starts_with("<!--") {
            return self.read_comment().map(Some);
        }
        if rest.starts_with("<![CDATA[") {
            return self.read_cdata().map(Some);
        }
        if rest.starts_with("<!DOCTYPE") || rest.starts_with("<!doctype") {
            return Err(self.err("DTDs are not supported (SOAP forbids them)"));
        }
        if rest.starts_with("<!") {
            return Err(self.err("unsupported markup declaration"));
        }
        if rest.starts_with("<?") {
            return self.read_pi();
        }
        if rest.starts_with("</") {
            return self.read_end_tag().map(Some);
        }
        self.read_start_tag().map(Some)
    }

    fn read_comment(&mut self) -> Result<SaxEvent, XmlError> {
        let body_start = self.pos + 4;
        let rest = &self.input[body_start..];
        let end = rest
            .find("-->")
            .ok_or_else(|| self.err("unterminated comment"))?;
        let body = &rest[..end];
        if body.contains("--") {
            return Err(self.err("'--' is not allowed inside comments"));
        }
        self.pos = body_start + end + 3;
        Ok(SaxEvent::Comment(body.to_string()))
    }

    fn read_cdata(&mut self) -> Result<SaxEvent, XmlError> {
        if self.open_elements.is_empty() {
            return Err(self.err("CDATA section outside the root element"));
        }
        let body_start = self.pos + "<![CDATA[".len();
        let rest = &self.input[body_start..];
        let end = rest
            .find("]]>")
            .ok_or_else(|| self.err("unterminated CDATA section"))?;
        let body = rest[..end].to_string();
        self.pos = body_start + end + 3;
        Ok(SaxEvent::Characters(body))
    }

    fn read_pi(&mut self) -> Result<Option<SaxEvent>, XmlError> {
        let body_start = self.pos + 2;
        let rest = &self.input[body_start..];
        let end = rest
            .find("?>")
            .ok_or_else(|| self.err("unterminated processing instruction"))?;
        let body = &rest[..end];
        self.pos = body_start + end + 2;
        let (target, data) = match body.find(|c: char| c.is_ascii_whitespace()) {
            Some(i) => (&body[..i], body[i..].trim_start()),
            None => (body, ""),
        };
        if target.is_empty() {
            return Err(self.err("processing instruction without a target"));
        }
        if target.eq_ignore_ascii_case("xml") {
            // The XML declaration is consumed silently (it is not a PI event
            // in SAX); it may only appear at the very start.
            if body_start != 2 {
                return Err(
                    self.err("XML declaration is only allowed at the start of the document")
                );
            }
            return self.next_event();
        }
        Ok(Some(SaxEvent::ProcessingInstruction {
            target: target.to_string(),
            data: data.to_string(),
        }))
    }

    fn read_end_tag(&mut self) -> Result<SaxEvent, XmlError> {
        let name_start = self.pos + 2;
        let bytes = self.input.as_bytes();
        let mut i = name_start;
        while i < bytes.len() && !matches!(bytes[i], b'>' | b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        let name_text = &self.input[name_start..i];
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'>' {
            return Err(self.err("malformed end tag"));
        }
        let name = self.check_name(name_text)?;
        self.pos = i + 1;
        match self.open_elements.pop() {
            Some(open) if open == name => Ok(SaxEvent::EndElement { name }),
            Some(open) => {
                Err(self.err(format!("mismatched end tag </{name}>; expected </{open}>")))
            }
            None => Err(self.err(format!("end tag </{name}> with no open element"))),
        }
    }

    fn read_start_tag(&mut self) -> Result<SaxEvent, XmlError> {
        let bytes = self.input.as_bytes();
        let name_start = self.pos + 1;
        let mut i = name_start;
        while i < bytes.len() && !matches!(bytes[i], b'>' | b'/' | b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        if i == name_start {
            return Err(self.err("expected element name after '<'"));
        }
        let name = self.check_name(&self.input[name_start..i])?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(self.err(format!("unterminated start tag <{name}>")));
            }
            match bytes[i] {
                b'>' => {
                    i += 1;
                    if self.open_elements.is_empty() {
                        if self.seen_root {
                            return Err(self.err("multiple root elements"));
                        }
                        self.seen_root = true;
                    }
                    self.open_elements.push(name.clone());
                    self.pos = i;
                    return Ok(SaxEvent::StartElement { name, attributes });
                }
                b'/' => {
                    if i + 1 >= bytes.len() || bytes[i + 1] != b'>' {
                        return Err(self.err("expected '>' after '/' in empty-element tag"));
                    }
                    if self.open_elements.is_empty() {
                        if self.seen_root {
                            return Err(self.err("multiple root elements"));
                        }
                        self.seen_root = true;
                    }
                    // Deliver the start event now and synthesize the end
                    // event on the next call via the open-elements stack
                    // trick: we record position of a pending end element.
                    self.pos = i + 2;
                    self.open_elements.push(name.clone());
                    self.pending_end = true;
                    return Ok(SaxEvent::StartElement { name, attributes });
                }
                _ => {
                    let (attr, next) = self.read_attribute(i, &name)?;
                    if attributes.iter().any(|a| a.name == attr.name) {
                        return Err(
                            self.err(format!("duplicate attribute '{}' on <{name}>", attr.name))
                        );
                    }
                    attributes.push(attr);
                    i = next;
                }
            }
        }
    }

    fn read_attribute(
        &mut self,
        start: usize,
        element: &QName,
    ) -> Result<(Attribute, usize), XmlError> {
        let bytes = self.input.as_bytes();
        let mut i = start;
        while i < bytes.len()
            && !matches!(bytes[i], b'=' | b' ' | b'\t' | b'\n' | b'\r' | b'>' | b'/')
        {
            i += 1;
        }
        let name_text = &self.input[start..i];
        if name_text.is_empty() {
            return Err(self.err(format!("malformed attribute in <{element}>")));
        }
        let name = self.check_name(name_text)?;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            return Err(self.err(format!("attribute '{name}' is missing '='")));
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || (bytes[i] != b'"' && bytes[i] != b'\'') {
            return Err(self.err(format!("attribute '{name}' value must be quoted")));
        }
        let quote = bytes[i];
        i += 1;
        let value_start = i;
        while i < bytes.len() && bytes[i] != quote {
            if bytes[i] == b'<' {
                return Err(self.err(format!("'<' is not allowed in attribute '{name}'")));
            }
            i += 1;
        }
        if i >= bytes.len() {
            return Err(self.err(format!("unterminated value for attribute '{name}'")));
        }
        let raw = &self.input[value_start..i];
        let value = unescape(raw).map_err(|e| self.err(e.message()))?;
        Ok((
            Attribute {
                name,
                value: value.into_owned(),
            },
            i + 1,
        ))
    }

    fn check_name(&mut self, text: &str) -> Result<QName, XmlError> {
        if text.is_empty() {
            return Err(self.err("empty name"));
        }
        let valid_start = |c: char| c.is_alphabetic() || c == '_';
        let valid_rest = |c: char| c.is_alphanumeric() || matches!(c, '_' | '-' | '.');
        let mut parts = text.splitn(2, ':');
        let first = parts.next().expect("splitn yields at least one part");
        let second = parts.next();
        for (idx, part) in [Some(first), second].into_iter().flatten().enumerate() {
            let mut chars = part.chars();
            match chars.next() {
                Some(c) if valid_start(c) => {}
                _ => {
                    return Err(self.err(format!("invalid name '{text}'")));
                }
            }
            if !chars.all(valid_rest) {
                return Err(self.err(format!("invalid name '{text}'")));
            }
            let _ = idx;
        }
        if second.map(|s| s.contains(':')).unwrap_or(false) {
            return Err(self.err(format!("invalid name '{text}': more than one ':'")));
        }
        // Intern rather than parse: the same name in the same document
        // yields symbols sharing one allocation and one hash.
        Ok(self.symbols.intern_qname(text))
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::at(self.pos.max(1), message)
    }
}

impl Iterator for XmlReader<'_> {
    type Item = Result<SaxEvent, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}

/// Error from [`XmlReader::parse_into`]: either a parse failure or a
/// handler failure.
#[derive(Debug)]
pub enum ParseIntoError<E> {
    /// The XML was malformed.
    Parse(XmlError),
    /// The handler rejected an event.
    Handler(E),
}

impl<E: std::fmt::Display> std::fmt::Display for ParseIntoError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseIntoError::Parse(e) => write!(f, "{e}"),
            ParseIntoError::Handler(e) => write!(f, "handler error: {e}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for ParseIntoError<E> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(xml: &str) -> Vec<SaxEvent> {
        XmlReader::new(xml)
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_else(|e| panic!("parse failed for {xml:?}: {e}"))
    }

    fn expect_err(xml: &str) -> XmlError {
        XmlReader::new(xml)
            .collect::<Result<Vec<_>, _>>()
            .expect_err(&format!("expected failure for {xml:?}"))
    }

    #[test]
    fn paper_table4_example() {
        let evs = events("<doc><para>Hello, world!</para></doc>");
        let rendered: Vec<String> = evs.iter().map(|e| e.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "start document",
                "start element: doc",
                "start element: para",
                "characters: Hello, world!",
                "end element: para",
                "end element: doc",
                "end document",
            ]
        );
    }

    #[test]
    fn attributes_with_both_quote_styles() {
        let evs = events(r#"<e a="1" b='two words'/>"#);
        match &evs[1] {
            SaxEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].value, "two words");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn empty_element_produces_start_and_end() {
        let evs = events("<a><b/></a>");
        let kinds: Vec<_> = evs.iter().map(SaxEvent::kind).collect();
        assert_eq!(
            kinds,
            [
                "start document",
                "start element",
                "start element",
                "end element",
                "end element",
                "end document"
            ]
        );
    }

    #[test]
    fn entities_are_expanded_in_text_and_attributes() {
        let evs = events(r#"<e a="&lt;&amp;&gt;">&#65;&amp;B</e>"#);
        match &evs[1] {
            SaxEvent::StartElement { attributes, .. } => assert_eq!(attributes[0].value, "<&>"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[2], SaxEvent::Characters("A&B".into()));
    }

    #[test]
    fn cdata_is_delivered_verbatim() {
        let evs = events("<e><![CDATA[<not-a-tag> & stuff]]></e>");
        assert_eq!(evs[2], SaxEvent::Characters("<not-a-tag> & stuff".into()));
    }

    #[test]
    fn comments_and_pis_are_reported() {
        let evs = events("<?xml version=\"1.0\"?><!-- hi --><e><?pi some data?></e>");
        assert_eq!(evs[1], SaxEvent::Comment(" hi ".into()));
        assert_eq!(
            evs[3],
            SaxEvent::ProcessingInstruction {
                target: "pi".into(),
                data: "some data".into()
            }
        );
    }

    #[test]
    fn namespace_declarations_are_plain_attributes() {
        let evs = events(r#"<s:e xmlns:s="uri:s" s:a="v"></s:e>"#);
        match &evs[1] {
            SaxEvent::StartElement { name, attributes } => {
                assert_eq!(name.to_string(), "s:e");
                assert!(attributes[0].name.is_namespace_declaration());
                assert_eq!(attributes[1].name.to_string(), "s:a");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn whitespace_only_prolog_and_epilog_are_ignored() {
        let evs = events("  \n <e>x</e> \n ");
        assert_eq!(evs.len(), 5);
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let e = expect_err("<a><b></a></b>");
        assert!(e.message().contains("mismatched end tag"), "{e}");
    }

    #[test]
    fn unclosed_root_is_rejected() {
        let e = expect_err("<a><b></b>");
        assert!(e.message().contains("still open"), "{e}");
    }

    #[test]
    fn multiple_roots_are_rejected() {
        let e = expect_err("<a/><b/>");
        assert!(e.message().contains("multiple root"), "{e}");
    }

    #[test]
    fn text_outside_root_is_rejected() {
        assert!(expect_err("hello<a/>")
            .message()
            .contains("outside the root"));
        assert!(expect_err("<a/>hello").message().contains("after the root"));
    }

    #[test]
    fn doctype_is_rejected() {
        let e = expect_err("<!DOCTYPE html><a/>");
        assert!(e.message().contains("DTD"), "{e}");
    }

    #[test]
    fn duplicate_attributes_are_rejected() {
        let e = expect_err(r#"<e a="1" a="2"/>"#);
        assert!(e.message().contains("duplicate attribute"), "{e}");
    }

    #[test]
    fn empty_document_is_rejected() {
        let e = expect_err("   ");
        assert!(e.message().contains("no root element"), "{e}");
    }

    #[test]
    fn truncated_inputs_are_rejected_not_hung() {
        for xml in [
            "<",
            "<a",
            "<a b",
            "<a b=",
            "<a b='x",
            "<a>",
            "<a><!-- ",
            "<a><![CDATA[x",
        ] {
            assert!(
                XmlReader::new(xml).collect::<Result<Vec<_>, _>>().is_err(),
                "expected error for {xml:?}"
            );
        }
    }

    #[test]
    fn invalid_names_are_rejected() {
        for xml in ["<1a/>", "<a:b:c/>", "<-x/>", "<a .b='c'/>"] {
            assert!(
                XmlReader::new(xml).collect::<Result<Vec<_>, _>>().is_err(),
                "expected error for {xml:?}"
            );
        }
    }

    #[test]
    fn parse_into_recorder_equals_read_all() {
        let xml = r#"<a x="1"><b>text &amp; more</b><c/></a>"#;
        let direct = XmlReader::new(xml).read_sequence().unwrap();
        let mut rec = crate::sax::Recorder::new();
        XmlReader::new(xml).parse_into(&mut rec).unwrap();
        assert_eq!(rec.into_sequence(), direct);
    }

    #[test]
    fn iterator_and_pull_agree() {
        let xml = "<a><b/>t</a>";
        let via_iter: Vec<_> = XmlReader::new(xml).collect::<Result<_, _>>().unwrap();
        let via_pull = XmlReader::new(xml).read_all().unwrap();
        assert_eq!(via_iter, via_pull);
    }

    #[test]
    fn deep_nesting_is_handled() {
        let depth = 1000;
        let mut xml = String::new();
        for _ in 0..depth {
            xml.push_str("<d>");
        }
        for _ in 0..depth {
            xml.push_str("</d>");
        }
        let evs = events(&xml);
        assert_eq!(evs.len(), 2 * depth + 2);
    }

    #[test]
    fn unicode_content_is_preserved() {
        let evs = events("<e attr='héllo'>日本語テキスト</e>");
        assert_eq!(evs[2], SaxEvent::Characters("日本語テキスト".into()));
    }
}

//! A hand-written, non-validating pull parser producing SAX events.
//!
//! The scanner is byte-table-driven and zero-allocation on its hot
//! path: a 256-entry class table (see [`crate::scan`]) classifies bytes,
//! SWAR memchr loops skip to the `<` / `&` / quote delimiters eight
//! bytes at a time, and every payload the parser delivers — character
//! data, comment and PI bodies, attribute values — is a borrowed slice
//! of the input. Only content containing entity references takes the
//! slow path, which unescapes into a scratch buffer reused across runs;
//! names are validated, hashed and interned in one byte scan. The owned
//! [`SaxEvent`] form survives as a compatibility view materialized by
//! [`next_event`](XmlReader::next_event); `read_sequence` and
//! `parse_into` never build it.
//!
//! Supported: elements, attributes (single- or double-quoted), character
//! data, CDATA sections, comments, processing instructions, the XML
//! declaration, predefined entities and character references, and
//! well-formedness checks (tag balance, single root element, attribute
//! uniqueness).
//!
//! Not supported (rejected with an error, as documented in DESIGN.md):
//! DTDs / `<!DOCTYPE …>` — SOAP explicitly forbids them.

use crate::error::XmlError;
use crate::escape::unescape_into;
use crate::event::{AttrRecord, Attributes, SaxEvent, SaxEventSequence};
use crate::name::QName;
use crate::sax::ContentHandler;
use crate::scan;
use crate::symbol::{SymbolTable, FNV_OFFSET, FNV_PRIME};
use std::sync::OnceLock;
use wsrc_obs::Histogram;

/// Whole-document parse timers in the process-wide metrics registry,
/// `wsrc_xml_parse_seconds{op=…}`. Initialised once; recording is
/// lock-free afterwards. Per-event `next_event` calls are deliberately
/// not timed — only the whole-document entry points.
fn parse_timer(op: &'static str) -> &'static Histogram {
    static READ_ALL: OnceLock<Histogram> = OnceLock::new();
    static READ_SEQUENCE: OnceLock<Histogram> = OnceLock::new();
    static PARSE_INTO: OnceLock<Histogram> = OnceLock::new();
    let cell = match op {
        "read-all" => &READ_ALL,
        "read-sequence" => &READ_SEQUENCE,
        _ => &PARSE_INTO,
    };
    cell.get_or_init(|| wsrc_obs::global().histogram("wsrc_xml_parse_seconds", &[("op", op)]))
}

/// Slots in the direct-mapped name cache. SOAP documents draw names
/// from a vocabulary of a few dozen strings; 256 slots keyed by the
/// raw bytes keep the load factor low enough that direct mapping
/// rarely collides (a collision only costs the re-intern it evicts).
const NAME_CACHE_SLOTS: usize = 256;

thread_local! {
    /// The name cache of the last reader to finish on this thread. A
    /// server thread parses the same service vocabulary request after
    /// request, so carrying the validated, interned names across parses
    /// turns every first occurrence in a document — the case that pays
    /// an `Arc<str>` allocation and a table insert — into two word
    /// loads and a clone. Bounded at [`NAME_CACHE_SLOTS`] entries.
    static TLS_NAME_CACHE: std::cell::Cell<Option<Box<[Option<CachedName>]>>> =
        const { std::cell::Cell::new(None) };

    /// Monotonic per-thread parse counter; each reader takes the next
    /// value so cache entries can be generation-stamped with the parse
    /// that last assigned them a document name id.
    static READER_GEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Takes the thread's cached vocabulary, or builds an empty cache.
fn take_name_cache() -> Box<[Option<CachedName>]> {
    TLS_NAME_CACHE
        .with(std::cell::Cell::take)
        .filter(|c| c.len() == NAME_CACHE_SLOTS)
        .unwrap_or_else(|| vec![None; NAME_CACHE_SLOTS].into_boxed_slice())
}

/// A validated, interned name memoized under its raw byte key, so a
/// repeated `<item>` or `xsi:type` costs a few word loads and a key
/// compare instead of re-validating, re-hashing and re-probing the
/// table. The `(gen, doc_id)` stamp records the document name id this
/// entry resolved to in generation `gen`'s parse: within one parse a
/// repeated name returns its id without touching a reference count.
#[derive(Debug, Clone)]
struct CachedName {
    key: (u64, u64, u64),
    len: u8,
    name: QName,
    /// Parse generation that last stamped `doc_id`.
    gen: u64,
    /// This name's index in that parse's document name table.
    doc_id: u32,
}

/// Names whose byte length is at most this are identified exactly by
/// `(name_key, len)`; longer names share keys with same-ended siblings
/// and are verified byte-for-byte on a cache hit.
const NAME_KEY_EXACT: usize = 24;

/// The raw-byte cache key: up to three overlapping little-endian word
/// loads (head, middle, tail — fixed-size loads, no memcpy). Together
/// with the length this identifies any name of up to [`NAME_KEY_EXACT`]
/// bytes exactly — which covers the SOAP vocabulary's long prefixed
/// names (`SOAP-ENV:encodingStyle` is 22 bytes) without a verify pass.
fn name_key(bytes: &[u8]) -> (u64, u64, u64) {
    let len = bytes.len();
    if len >= 16 {
        let lo = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte head"));
        let mid = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte middle"));
        let hi = u64::from_le_bytes(bytes[len - 8..].try_into().expect("8-byte tail"));
        (lo, mid, hi)
    } else if len >= 8 {
        let lo = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte head"));
        let hi = u64::from_le_bytes(bytes[len - 8..].try_into().expect("8-byte tail"));
        (lo, hi, 0)
    } else if len >= 4 {
        // Two overlapping four-byte loads cover every byte of a 4..=7
        // byte name; combined with the stored length the key is still
        // exact, and the fixed-size loads beat a shift-or loop.
        let head = u32::from_le_bytes(bytes[..4].try_into().expect("4-byte head"));
        let tail = u32::from_le_bytes(bytes[len - 4..].try_into().expect("4-byte tail"));
        (u64::from(head) | (u64::from(tail) << 32), 0, 0)
    } else {
        let mut lo = 0u64;
        for (i, &b) in bytes.iter().enumerate() {
            lo |= u64::from(b) << (8 * i);
        }
        (lo, 0, 0)
    }
}

fn cache_slot(key: (u64, u64, u64)) -> usize {
    ((key.0 ^ key.1.rotate_left(32) ^ key.2).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as usize
}

/// Whether `bytes` is exactly the lexical form of `name` — the zero-cost
/// comparison behind the end-tag fast path (no intern, no allocation).
fn qname_eq_bytes(name: &QName, bytes: &[u8]) -> bool {
    let local = name.local_symbol().as_str().as_bytes();
    match name.prefix_symbol() {
        None => bytes == local,
        Some(p) => {
            let p = p.as_str().as_bytes();
            bytes.len() == p.len() + 1 + local.len()
                && bytes[..p.len()] == *p
                && bytes[p.len()] == b':'
                && bytes[p.len() + 1..] == *local
        }
    }
}

/// One open element: its document name id plus the input span of the
/// name as written in the start tag. End tags close the innermost open
/// element in the overwhelming case, and equal names have identical
/// lexical bytes, so an input-to-input byte compare against `span`
/// settles the match without touching the name table at all.
#[derive(Debug, Clone, Copy)]
struct OpenTag {
    id: u32,
    span: (u32, u32),
}

/// Where scan results go. The scanner is monomorphized per destination,
/// so every payload flows from the byte scan that found it straight to
/// its consumer — no staging in reader fields, no second dispatch on an
/// event tag. Element and attribute names travel as `u32` ids into the
/// reader's document name table (`names` in the signatures below);
/// text, comment and PI payloads are borrowed slices of the input or
/// the reader's scratch.
///
/// `Error` must absorb parse errors so the scanner's `?` sites convert
/// with `From`; sinks that cannot fail otherwise use [`XmlError`]
/// directly.
trait EventSink {
    /// Sink-side error; parse errors convert into it via `From`.
    type Error: From<XmlError>;

    fn start_document(&mut self) -> Result<(), Self::Error>;
    fn end_document(&mut self) -> Result<(), Self::Error>;
    /// `names[name as usize]` is the element name; `attrs` are span
    /// records over `input` (escape-free values) or `scratch` (entity
    /// values). A sink may drain `attrs`; the scanner clears it at the
    /// next start tag either way.
    fn start_element(
        &mut self,
        name: u32,
        names: &[QName],
        attrs: &mut Vec<AttrRecord>,
        input: &str,
        scratch: &str,
    ) -> Result<(), Self::Error>;
    fn end_element(&mut self, name: u32, names: &[QName]) -> Result<(), Self::Error>;
    fn characters(&mut self, text: &str) -> Result<(), Self::Error>;
    fn comment(&mut self, text: &str) -> Result<(), Self::Error>;
    fn processing_instruction(&mut self, target: &str, data: &str) -> Result<(), Self::Error>;
}

/// Records events into an arena [`SaxEventSequence`] — the miss-path
/// fast lane: text lands in the sequence's text buffer, names flow as
/// ids, attribute records are drained wholesale, nothing allocates per
/// event.
struct RecordSink<'s> {
    sequence: &'s mut SaxEventSequence,
}

impl EventSink for RecordSink<'_> {
    type Error = XmlError;

    fn start_document(&mut self) -> Result<(), XmlError> {
        self.sequence.record_start_document();
        Ok(())
    }
    fn end_document(&mut self) -> Result<(), XmlError> {
        self.sequence.record_end_document();
        Ok(())
    }
    fn start_element(
        &mut self,
        name: u32,
        _names: &[QName],
        attrs: &mut Vec<AttrRecord>,
        input: &str,
        scratch: &str,
    ) -> Result<(), XmlError> {
        self.sequence
            .record_start_element_drained(name, attrs, input, scratch);
        Ok(())
    }
    fn end_element(&mut self, name: u32, _names: &[QName]) -> Result<(), XmlError> {
        self.sequence.record_end_element_id(name);
        Ok(())
    }
    fn characters(&mut self, text: &str) -> Result<(), XmlError> {
        self.sequence.record_characters(text);
        Ok(())
    }
    fn comment(&mut self, text: &str) -> Result<(), XmlError> {
        self.sequence.record_comment(text);
        Ok(())
    }
    fn processing_instruction(&mut self, target: &str, data: &str) -> Result<(), XmlError> {
        self.sequence.record_processing_instruction(target, data);
        Ok(())
    }
}

/// Adapts a [`ContentHandler`] to the sink interface: ids resolve to
/// `&QName` through the document name table, attributes become the
/// borrowed [`Attributes`] view.
struct HandlerSink<'s, H> {
    handler: &'s mut H,
}

impl<H: ContentHandler> EventSink for HandlerSink<'_, H> {
    type Error = ParseIntoError<H::Error>;

    fn start_document(&mut self) -> Result<(), Self::Error> {
        self.handler
            .start_document()
            .map_err(ParseIntoError::Handler)
    }
    fn end_document(&mut self) -> Result<(), Self::Error> {
        self.handler.end_document().map_err(ParseIntoError::Handler)
    }
    fn start_element(
        &mut self,
        name: u32,
        names: &[QName],
        attrs: &mut Vec<AttrRecord>,
        input: &str,
        scratch: &str,
    ) -> Result<(), Self::Error> {
        self.handler
            .start_element(
                &names[name as usize],
                Attributes::from_records(attrs, names, input, scratch),
            )
            .map_err(ParseIntoError::Handler)
    }
    fn end_element(&mut self, name: u32, names: &[QName]) -> Result<(), Self::Error> {
        self.handler
            .end_element(&names[name as usize])
            .map_err(ParseIntoError::Handler)
    }
    fn characters(&mut self, text: &str) -> Result<(), Self::Error> {
        self.handler
            .characters(text)
            .map_err(ParseIntoError::Handler)
    }
    fn comment(&mut self, text: &str) -> Result<(), Self::Error> {
        self.handler.comment(text).map_err(ParseIntoError::Handler)
    }
    fn processing_instruction(&mut self, target: &str, data: &str) -> Result<(), Self::Error> {
        self.handler
            .processing_instruction(target, data)
            .map_err(ParseIntoError::Handler)
    }
}

/// Materializes the owned compatibility [`SaxEvent`] for one advance —
/// the sink behind [`XmlReader::next_event`]; the whole-document paths
/// never come through here.
struct OwnedSink {
    event: Option<SaxEvent>,
}

/// The single sanctioned owned-copy site in the reader: every parser
/// input span that becomes an owned `String` does so here, for the
/// [`OwnedSink`] compatibility path. Analyzer rule R6's parser-span
/// check pins copies to this function.
fn owned_text(text: &str) -> String {
    text.to_string()
}

impl EventSink for OwnedSink {
    type Error = XmlError;

    fn start_document(&mut self) -> Result<(), XmlError> {
        self.event = Some(SaxEvent::StartDocument);
        Ok(())
    }
    fn end_document(&mut self) -> Result<(), XmlError> {
        self.event = Some(SaxEvent::EndDocument);
        Ok(())
    }
    fn start_element(
        &mut self,
        name: u32,
        names: &[QName],
        attrs: &mut Vec<AttrRecord>,
        input: &str,
        scratch: &str,
    ) -> Result<(), XmlError> {
        self.event = Some(SaxEvent::StartElement {
            name: names[name as usize].clone(),
            attributes: Attributes::from_records(attrs, names, input, scratch).to_owned_vec(),
        });
        Ok(())
    }
    fn end_element(&mut self, name: u32, names: &[QName]) -> Result<(), XmlError> {
        self.event = Some(SaxEvent::EndElement {
            name: names[name as usize].clone(),
        });
        Ok(())
    }
    fn characters(&mut self, text: &str) -> Result<(), XmlError> {
        self.event = Some(SaxEvent::Characters(owned_text(text)));
        Ok(())
    }
    fn comment(&mut self, text: &str) -> Result<(), XmlError> {
        self.event = Some(SaxEvent::Comment(owned_text(text)));
        Ok(())
    }
    fn processing_instruction(&mut self, target: &str, data: &str) -> Result<(), XmlError> {
        self.event = Some(SaxEvent::ProcessingInstruction {
            target: owned_text(target),
            data: owned_text(data),
        });
        Ok(())
    }
}

/// A streaming XML pull parser.
///
/// Call [`next_event`](XmlReader::next_event) until it returns
/// `Ok(None)`, or use the convenience methods [`read_all`](XmlReader::read_all),
/// [`read_sequence`](XmlReader::read_sequence) and
/// [`parse_into`](XmlReader::parse_into).
///
/// ```
/// use wsrc_xml::{XmlReader, SaxEvent};
/// # fn main() -> Result<(), wsrc_xml::XmlError> {
/// let mut reader = XmlReader::new("<greet who='world'/>");
/// while let Some(event) = reader.next_event()? {
///     if let SaxEvent::StartElement { name, attributes } = event {
///         assert_eq!(name.local_part(), "greet");
///         assert_eq!(attributes[0].value, "world");
///     }
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct XmlReader<'x> {
    input: &'x str,
    pos: usize,
    state: State,
    /// Open elements as ids into `doc_names`, with their start tags'
    /// name spans for the end-tag byte-compare fast path.
    open_elements: Vec<OpenTag>,
    seen_root: bool,
    pending_end: bool,
    /// Names seen so far: repeated element/attribute names in one
    /// document come back as pointer bumps, hashed once.
    symbols: SymbolTable,
    /// Direct-mapped cache from raw name bytes to interned `QName`s;
    /// skips validation and table probes for repeated names.
    name_cache: Box<[Option<CachedName>]>,
    /// Distinct names of this document in first-seen order; everything
    /// the scanner tracks per element or attribute is a `u32` index
    /// into this table, and `read_sequence` hands it to the produced
    /// sequence by move.
    doc_names: Vec<QName>,
    /// This parse's generation stamp (see [`CachedName`]).
    gen: u64,
    /// Unescape target, cleared and reused across text runs.
    text_scratch: String,
    /// Attributes of the current start tag, as span records over the
    /// input (escape-free values) or `attr_scratch`.
    attr_recs: Vec<AttrRecord>,
    /// Unescape target for attribute values, cleared per start tag.
    attr_scratch: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    InDocument,
    Done,
}

impl<'x> XmlReader<'x> {
    /// Creates a parser over a complete document held in memory.
    pub fn new(input: &'x str) -> Self {
        XmlReader {
            input,
            pos: 0,
            state: State::Start,
            // Pre-size the per-parse vectors for a typical SOAP payload
            // (nesting ≤16, a few dozen distinct names): one allocation
            // each instead of a doubling ladder mid-parse.
            open_elements: Vec::with_capacity(16),
            seen_root: false,
            pending_end: false,
            symbols: SymbolTable::new(),
            name_cache: take_name_cache(),
            doc_names: Vec::with_capacity(32),
            gen: READER_GEN.with(|g| {
                let next = g.get().wrapping_add(1);
                g.set(next);
                next
            }),
            text_scratch: String::new(),
            attr_recs: Vec::with_capacity(8),
            attr_scratch: String::new(),
        }
    }

    /// Creates a parser over a complete document held as shared bytes
    /// (e.g. an HTTP body's `Arc<[u8]>` payload). The whole input is
    /// UTF-8-validated up front — one vectorized pass over the bytes —
    /// after which scanning is purely bytewise: every delimiter the
    /// table matches is ASCII, so span boundaries are always character
    /// boundaries and no per-span re-validation happens.
    ///
    /// # Errors
    ///
    /// Returns a positioned error when the bytes are not valid UTF-8.
    pub fn from_bytes(input: &'x [u8]) -> Result<Self, XmlError> {
        match std::str::from_utf8(input) {
            Ok(text) => Ok(XmlReader::new(text)),
            Err(e) => Err(XmlError::at(
                e.valid_up_to().max(1),
                "input is not valid UTF-8",
            )),
        }
    }

    /// Parses the whole document, returning every event in order.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or well-formedness error encountered.
    pub fn read_all(mut self) -> Result<Vec<SaxEvent>, XmlError> {
        let _span = parse_timer("read-all").timer();
        let mut events = Vec::new();
        while let Some(e) = self.next_event()? {
            events.push(e);
        }
        Ok(events)
    }

    /// Parses the whole document into an arena [`SaxEventSequence`],
    /// recording borrowed payloads straight into the sequence's buffers
    /// — no intermediate owned events exist. Names are interned once,
    /// in the scan that validates them, flow through recording as
    /// plain `u32` ids, and the reader's document name table becomes
    /// the sequence's table at the end.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or well-formedness error encountered.
    pub fn read_sequence(mut self) -> Result<SaxEventSequence, XmlError> {
        let _span = parse_timer("read-sequence").timer();
        let mut sequence = SaxEventSequence::new();
        sequence.reserve_for_input(self.input.len());
        let mut sink = RecordSink {
            sequence: &mut sequence,
        };
        while self.advance_into(&mut sink)? {}
        sequence.adopt_names(std::mem::take(&mut self.doc_names));
        Ok(sequence)
    }

    /// Parses the document, pushing events into `handler`. Callbacks
    /// receive payloads borrowed from the input (or the entity scratch)
    /// — nothing owned is materialized.
    ///
    /// # Errors
    ///
    /// Returns `Parse` for XML problems and `Handler` when the handler
    /// rejects an event.
    pub fn parse_into<H: ContentHandler>(
        mut self,
        handler: &mut H,
    ) -> Result<(), ParseIntoError<H::Error>> {
        let _span = parse_timer("parse-into").timer();
        let mut sink = HandlerSink { handler };
        while self.advance_into(&mut sink)? {}
        Ok(())
    }

    /// Returns the next event, or `None` once `EndDocument` was delivered.
    ///
    /// This is the owned compatibility entry point; the whole-document
    /// methods stay borrowed throughout.
    ///
    /// # Errors
    ///
    /// Returns a positioned [`XmlError`] on malformed input.
    pub fn next_event(&mut self) -> Result<Option<SaxEvent>, XmlError> {
        let mut sink = OwnedSink { event: None };
        if self.advance_into(&mut sink)? {
            Ok(sink.event)
        } else {
            Ok(None)
        }
    }

    /// Scans to the next event and delivers it to `sink`. Returns
    /// `Ok(true)` while events keep coming, `Ok(false)` once
    /// `EndDocument` has been delivered.
    fn advance_into<S: EventSink>(&mut self, sink: &mut S) -> Result<bool, S::Error> {
        // Synthesized end-element for `<empty/>` takes priority.
        if self.pending_end {
            self.pending_end = false;
            let open = self
                .open_elements
                .pop()
                .expect("pending end implies an open element");
            sink.end_element(open.id, &self.doc_names)?;
            return Ok(true);
        }
        match self.state {
            State::Start => {
                self.state = State::InDocument;
                sink.start_document()?;
                return Ok(true);
            }
            State::Done => return Ok(false),
            State::InDocument => {}
        }
        let input = self.input;
        let bytes = input.as_bytes();
        loop {
            if self.pos >= bytes.len() {
                return self.finish_document(sink);
            }
            let start = self.pos;
            if bytes[start] == b'<' {
                if self.read_markup(sink)? {
                    return Ok(true);
                }
                // The XML declaration is consumed silently.
                continue;
            }
            // Character data: skip to the next '<', noting the first '&'
            // so escape-free runs (the common case) stay borrowed.
            let (lt, amp) = match scan::memchr2(b'<', b'&', &bytes[start..]) {
                None => (bytes.len(), None),
                Some(off) if bytes[start + off] == b'<' => (start + off, None),
                Some(off) => {
                    let amp = start + off;
                    let lt = scan::memchr(b'<', &bytes[amp + 1..])
                        .map(|o| amp + 1 + o)
                        .unwrap_or(bytes.len());
                    (lt, Some(amp))
                }
            };
            if lt == bytes.len() {
                // Trailing text with no more markup.
                if !self.span_is_ws(start, lt) {
                    return Err(self.err("character data after the root element").into());
                }
                self.pos = lt;
                return self.finish_document(sink);
            }
            if lt > start {
                self.pos = lt;
                if self.open_elements.is_empty() {
                    if !self.span_is_ws(start, lt) {
                        return Err(self.err("character data outside the root element").into());
                    }
                    continue;
                }
                if amp.is_some() {
                    self.text_scratch.clear();
                    unescape_into(&input[start..lt], &mut self.text_scratch)
                        .map_err(|e| self.err(e.message()))?;
                    sink.characters(&self.text_scratch)?;
                } else {
                    sink.characters(&input[start..lt])?;
                }
                return Ok(true);
            }
        }
    }

    /// Whether the span is whitespace, per the byte table; Unicode
    /// whitespace (e.g. NBSP) falls back to `str::trim`, matching the
    /// char-oriented reader.
    fn span_is_ws(&self, start: usize, end: usize) -> bool {
        let bytes = self.input.as_bytes();
        if bytes[start..end]
            .iter()
            .all(|&b| scan::CLASS[b as usize] & scan::WS != 0)
        {
            return true;
        }
        self.input[start..end].trim().is_empty()
    }

    fn finish_document<S: EventSink>(&mut self, sink: &mut S) -> Result<bool, S::Error> {
        if let Some(open) = self.open_elements.last() {
            let open = &self.doc_names[open.id as usize];
            return Err(self
                .err(format!("unexpected end of input; <{open}> is still open"))
                .into());
        }
        if !self.seen_root {
            return Err(self.err("document has no root element").into());
        }
        self.state = State::Done;
        sink.end_document()?;
        Ok(true)
    }

    /// Reads one piece of markup at `pos`, delivering its event to
    /// `sink`; returns `Ok(false)` only for the (eventless) XML
    /// declaration.
    fn read_markup<S: EventSink>(&mut self, sink: &mut S) -> Result<bool, S::Error> {
        let rest = &self.input.as_bytes()[self.pos..];
        debug_assert!(rest.starts_with(b"<"));
        // One branch on the byte after '<' settles the two hot cases
        // (end tag, start tag); declarations take the longer chain.
        match rest.get(1) {
            Some(b'/') => self.read_end_tag(sink).map(|()| true),
            Some(b'!') => {
                if rest.starts_with(b"<!--") {
                    return self.read_comment(sink).map(|()| true);
                }
                if rest.starts_with(b"<![CDATA[") {
                    return self.read_cdata(sink).map(|()| true);
                }
                if rest.starts_with(b"<!DOCTYPE") || rest.starts_with(b"<!doctype") {
                    return Err(self
                        .err("DTDs are not supported (SOAP forbids them)")
                        .into());
                }
                Err(self.err("unsupported markup declaration").into())
            }
            Some(b'?') => self.read_pi(sink),
            _ => self.read_start_tag(sink).map(|()| true),
        }
    }

    fn read_comment<S: EventSink>(&mut self, sink: &mut S) -> Result<(), S::Error> {
        let input = self.input;
        let bytes = input.as_bytes();
        let body_start = self.pos + 4;
        let end = scan::find_seq(b"-->", &bytes[body_start..])
            .ok_or_else(|| self.err("unterminated comment"))?;
        if scan::find_seq(b"--", &bytes[body_start..body_start + end]).is_some() {
            return Err(self.err("'--' is not allowed inside comments").into());
        }
        self.pos = body_start + end + 3;
        sink.comment(&input[body_start..body_start + end])?;
        Ok(())
    }

    fn read_cdata<S: EventSink>(&mut self, sink: &mut S) -> Result<(), S::Error> {
        if self.open_elements.is_empty() {
            return Err(self.err("CDATA section outside the root element").into());
        }
        let input = self.input;
        let bytes = input.as_bytes();
        let body_start = self.pos + "<![CDATA[".len();
        let end = scan::find_seq(b"]]>", &bytes[body_start..])
            .ok_or_else(|| self.err("unterminated CDATA section"))?;
        self.pos = body_start + end + 3;
        sink.characters(&input[body_start..body_start + end])?;
        Ok(())
    }

    fn read_pi<S: EventSink>(&mut self, sink: &mut S) -> Result<bool, S::Error> {
        let input = self.input;
        let bytes = input.as_bytes();
        let body_start = self.pos + 2;
        let end = scan::find_seq(b"?>", &bytes[body_start..])
            .ok_or_else(|| self.err("unterminated processing instruction"))?;
        let body = &input[body_start..body_start + end];
        self.pos = body_start + end + 2;
        let (target, data) = match body.find(|c: char| c.is_ascii_whitespace()) {
            Some(i) => (&body[..i], body[i..].trim_start()),
            None => (body, ""),
        };
        if target.is_empty() {
            return Err(self.err("processing instruction without a target").into());
        }
        if target.eq_ignore_ascii_case("xml") {
            // The XML declaration is consumed silently (it is not a PI event
            // in SAX); it may only appear at the very start.
            if body_start != 2 {
                return Err(self
                    .err("XML declaration is only allowed at the start of the document")
                    .into());
            }
            return Ok(false);
        }
        sink.processing_instruction(target, data)?;
        Ok(true)
    }

    fn read_end_tag<S: EventSink>(&mut self, sink: &mut S) -> Result<(), S::Error> {
        let bytes = self.input.as_bytes();
        let name_start = self.pos + 2;
        // Fast path: the end tag almost always closes the innermost open
        // element with no stray whitespace, and equal names are
        // byte-identical, so compare the expected name's input span
        // directly and check for the closing `>` — no name scan, no
        // table lookup. Any mismatch (different name, `</tag >`,
        // truncation) falls through to the full scan below.
        if let Some(&open) = self.open_elements.last() {
            let (s, e) = (open.span.0 as usize, open.span.1 as usize);
            let after = name_start + (e - s);
            if after < bytes.len()
                && bytes[after] == b'>'
                && scan::bytes_eq(&bytes[s..e], &bytes[name_start..after])
            {
                self.pos = after + 1;
                self.open_elements.pop();
                sink.end_element(open.id, &self.doc_names)?;
                return Ok(());
            }
        }
        let mut i = name_start
            + scan::name_len(&bytes[name_start..], |b| {
                matches!(b, b'>' | b' ' | b'\t' | b'\n' | b'\r')
            });
        let name_end = i;
        while i < bytes.len() && scan::CLASS[bytes[i] as usize] & scan::WS != 0 {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'>' {
            return Err(self.err("malformed end tag").into());
        }
        // Whitespace variant of the fast path (`</tag >`): the span
        // compare still settles the innermost match without the table.
        if let Some(&open) = self.open_elements.last() {
            if scan::bytes_eq(
                &bytes[open.span.0 as usize..open.span.1 as usize],
                &bytes[name_start..name_end],
            ) {
                self.pos = i + 1;
                self.open_elements.pop();
                sink.end_element(open.id, &self.doc_names)?;
                return Ok(());
            }
        }
        let id = self.tag_name(name_start, name_end)?;
        self.pos = i + 1;
        match self.open_elements.pop() {
            // Document name ids are canonical (one id per distinct
            // name), so id equality is name equality.
            Some(open) if open.id == id => {
                sink.end_element(id, &self.doc_names)?;
                Ok(())
            }
            Some(open) => {
                let name = &self.doc_names[id as usize];
                let open = &self.doc_names[open.id as usize];
                Err(self
                    .err(format!("mismatched end tag </{name}>; expected </{open}>"))
                    .into())
            }
            None => {
                let name = &self.doc_names[id as usize];
                Err(self
                    .err(format!("end tag </{name}> with no open element"))
                    .into())
            }
        }
    }

    fn read_start_tag<S: EventSink>(&mut self, sink: &mut S) -> Result<(), S::Error> {
        self.attr_recs.clear();
        self.attr_scratch.clear();
        let input = self.input;
        let bytes = input.as_bytes();
        let name_start = self.pos + 1;
        let mut i = name_start
            + scan::name_len(&bytes[name_start..], |b| {
                matches!(b, b'>' | b'/' | b' ' | b'\t' | b'\n' | b'\r')
            });
        if i == name_start {
            return Err(self.err("expected element name after '<'").into());
        }
        let name_span = (arena_index(name_start), arena_index(i));
        let name = self.tag_name(name_start, i)?;
        loop {
            while i < bytes.len() && scan::CLASS[bytes[i] as usize] & scan::WS != 0 {
                i += 1;
            }
            if i >= bytes.len() {
                let name = &self.doc_names[name as usize];
                return Err(self.err(format!("unterminated start tag <{name}>")).into());
            }
            match bytes[i] {
                b'>' => {
                    self.note_root()?;
                    self.pos = i + 1;
                    self.open_elements.push(OpenTag {
                        id: name,
                        span: name_span,
                    });
                    sink.start_element(
                        name,
                        &self.doc_names,
                        &mut self.attr_recs,
                        input,
                        &self.attr_scratch,
                    )?;
                    return Ok(());
                }
                b'/' => {
                    if i + 1 >= bytes.len() || bytes[i + 1] != b'>' {
                        return Err(self
                            .err("expected '>' after '/' in empty-element tag")
                            .into());
                    }
                    self.note_root()?;
                    // Deliver the start event now and synthesize the end
                    // event on the next advance via the pending flag.
                    self.pos = i + 2;
                    self.open_elements.push(OpenTag {
                        id: name,
                        span: name_span,
                    });
                    self.pending_end = true;
                    sink.start_element(
                        name,
                        &self.doc_names,
                        &mut self.attr_recs,
                        input,
                        &self.attr_scratch,
                    )?;
                    return Ok(());
                }
                _ => {
                    i = self.read_attribute(i, name)?;
                }
            }
        }
    }

    fn note_root(&mut self) -> Result<(), XmlError> {
        if self.open_elements.is_empty() {
            if self.seen_root {
                return Err(self.err("multiple root elements"));
            }
            self.seen_root = true;
        }
        Ok(())
    }

    /// Reads one `name="value"` pair starting at `start`, records it in
    /// `attr_recs` (escape-free values as spans of the input, entity
    /// values unescaped into `attr_scratch`) and returns the index just
    /// past the closing quote.
    fn read_attribute(&mut self, start: usize, element: u32) -> Result<usize, XmlError> {
        let input = self.input;
        let bytes = input.as_bytes();
        let mut i = start
            + scan::name_len(&bytes[start..], |b| {
                matches!(b, b'=' | b' ' | b'\t' | b'\n' | b'\r' | b'>' | b'/')
            });
        if i == start {
            let element = &self.doc_names[element as usize];
            return Err(self.err(format!("malformed attribute in <{element}>")));
        }
        let name = self.tag_name(start, i)?;
        while i < bytes.len() && scan::CLASS[bytes[i] as usize] & scan::WS != 0 {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            let name = &self.doc_names[name as usize];
            return Err(self.err(format!("attribute '{name}' is missing '='")));
        }
        i += 1;
        while i < bytes.len() && scan::CLASS[bytes[i] as usize] & scan::WS != 0 {
            i += 1;
        }
        if i >= bytes.len() || (bytes[i] != b'"' && bytes[i] != b'\'') {
            let name = &self.doc_names[name as usize];
            return Err(self.err(format!("attribute '{name}' value must be quoted")));
        }
        let quote = bytes[i];
        i += 1;
        let value_start = i;
        let mut has_amp = false;
        loop {
            match scan::memchr3(quote, b'<', b'&', &bytes[i..]) {
                None => {
                    let name = &self.doc_names[name as usize];
                    return Err(self.err(format!("unterminated value for attribute '{name}'")));
                }
                Some(off) => {
                    let at = i + off;
                    match bytes[at] {
                        b'<' => {
                            let name = &self.doc_names[name as usize];
                            return Err(
                                self.err(format!("'<' is not allowed in attribute '{name}'"))
                            );
                        }
                        b'&' => {
                            has_amp = true;
                            i = at + 1;
                        }
                        _ => {
                            i = at;
                            break;
                        }
                    }
                }
            }
        }
        let value_end = i;
        let record = if has_amp {
            let scratch_start = self.attr_scratch.len();
            unescape_into(&input[value_start..value_end], &mut self.attr_scratch)
                .map_err(|e| self.err(e.message()))?;
            AttrRecord {
                name,
                start: arena_index(scratch_start),
                end: arena_index(self.attr_scratch.len()),
                in_alt: true,
            }
        } else {
            AttrRecord {
                name,
                start: arena_index(value_start),
                end: arena_index(value_end),
                in_alt: false,
            }
        };
        // Ids are canonical within the document, so duplicate names are
        // exactly duplicate ids.
        if self.attr_recs.iter().any(|r| r.name == record.name) {
            let name = &self.doc_names[name as usize];
            let element = &self.doc_names[element as usize];
            return Err(self.err(format!("duplicate attribute '{name}' on <{element}>")));
        }
        self.attr_recs.push(record);
        Ok(value_end + 1)
    }

    /// Resolves `input[start..end]` to its id in this document's name
    /// table via the direct-mapped name cache: a repeated name is a few
    /// word loads, a key compare and a generation check — no reference
    /// count moves (names over [`NAME_KEY_EXACT`] bytes additionally
    /// verify the full bytes, since their key covers only head, middle
    /// and tail words). A first occurrence takes the full
    /// [`check_name`](Self::check_name) validate-and-intern path and
    /// populates the cache.
    fn tag_name(&mut self, start: usize, end: usize) -> Result<u32, XmlError> {
        let bytes = &self.input.as_bytes()[start..end];
        let len = bytes.len();
        if len == 0 {
            return Err(self.err("empty name"));
        }
        let key = name_key(bytes);
        let slot = cache_slot(key);
        if let Some(cached) = &mut self.name_cache[slot] {
            if cached.key == key
                && usize::from(cached.len) == len.min(255)
                && (len <= NAME_KEY_EXACT || qname_eq_bytes(&cached.name, bytes))
            {
                if cached.gen == self.gen {
                    return Ok(cached.doc_id);
                }
                // First occurrence this parse of a name cached by an
                // earlier parse. A stale stamp implies the name holds
                // no id this parse yet (assigning one always stamps
                // this same slot), so it can be appended unscanned.
                let id = arena_index(self.doc_names.len());
                self.doc_names.push(cached.name.clone());
                cached.gen = self.gen;
                cached.doc_id = id;
                return Ok(id);
            }
        }
        let name = self.check_name(start, end)?;
        // Cache eviction can bounce a name out of and back into its
        // slot within one parse; scan for an existing id so ids stay
        // canonical (duplicate-attribute and end-tag checks compare
        // ids, and this path is rare).
        let id = match self.doc_names.iter().position(|n| *n == name) {
            Some(at) => arena_index(at),
            None => {
                let id = arena_index(self.doc_names.len());
                self.doc_names.push(name.clone());
                id
            }
        };
        self.name_cache[slot] = Some(CachedName {
            key,
            len: len.min(255) as u8,
            name,
            gen: self.gen,
            doc_id: id,
        });
        Ok(id)
    }

    /// Validates `input[start..end]` as a (possibly prefixed) XML name,
    /// folding the FNV-1a hash of each part into the same byte scan and
    /// interning without re-reading the bytes. Non-ASCII names fall back
    /// to the char-oriented path.
    fn check_name(&mut self, start: usize, end: usize) -> Result<QName, XmlError> {
        let input = self.input;
        let text = &input[start..end];
        if text.is_empty() {
            return Err(self.err("empty name"));
        }
        let bytes = text.as_bytes();
        let mut hash = FNV_OFFSET;
        let mut colon: Option<(usize, u64)> = None;
        let mut part_start = 0;
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b >= 0x80 {
                return self.check_name_slow(text);
            }
            if b == b':' {
                if colon.is_some() || i == 0 {
                    return Err(self.err(format!("invalid name '{text}'")));
                }
                colon = Some((i, hash));
                hash = FNV_OFFSET;
                part_start = i + 1;
                i += 1;
                continue;
            }
            let class = scan::CLASS[b as usize];
            let valid = if i == part_start {
                class & scan::NAME_START != 0
            } else {
                class & scan::NAME != 0
            };
            if !valid {
                return Err(self.err(format!("invalid name '{text}'")));
            }
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
            i += 1;
        }
        if colon.is_some() && part_start == bytes.len() {
            return Err(self.err(format!("invalid name '{text}'")));
        }
        Ok(match colon {
            None => QName::from_symbols(None, self.symbols.intern_prehashed(hash, text)),
            Some((at, prefix_hash)) => {
                let prefix = self.symbols.intern_prehashed(prefix_hash, &text[..at]);
                let local = self.symbols.intern_prehashed(hash, &text[at + 1..]);
                QName::from_symbols(Some(prefix), local)
            }
        })
    }

    /// Char-oriented name validation for names containing non-ASCII
    /// bytes (Unicode letters are valid name characters).
    fn check_name_slow(&mut self, text: &str) -> Result<QName, XmlError> {
        let valid_start = |c: char| c.is_alphabetic() || c == '_';
        let valid_rest = |c: char| c.is_alphanumeric() || matches!(c, '_' | '-' | '.');
        let mut parts = text.splitn(2, ':');
        let first = parts.next().expect("splitn yields at least one part");
        let second = parts.next();
        for part in [Some(first), second].into_iter().flatten() {
            let mut chars = part.chars();
            match chars.next() {
                Some(c) if valid_start(c) => {}
                _ => {
                    return Err(self.err(format!("invalid name '{text}'")));
                }
            }
            if !chars.all(valid_rest) {
                return Err(self.err(format!("invalid name '{text}'")));
            }
        }
        if second.map(|s| s.contains(':')).unwrap_or(false) {
            return Err(self.err(format!("invalid name '{text}': more than one ':'")));
        }
        Ok(self.symbols.intern_qname(text))
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::at(self.pos.max(1), message)
    }
}

fn arena_index(at: usize) -> u32 {
    u32::try_from(at).expect("XML input exceeds u32 span range")
}

impl Iterator for XmlReader<'_> {
    type Item = Result<SaxEvent, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}

impl Drop for XmlReader<'_> {
    /// Hands the warmed vocabulary cache back to the thread, so the
    /// next parse on this thread starts with the service's names
    /// already validated and interned.
    fn drop(&mut self) {
        if self.name_cache.len() == NAME_CACHE_SLOTS {
            TLS_NAME_CACHE.with(|c| c.set(Some(std::mem::take(&mut self.name_cache))));
        }
    }
}

/// Error from [`XmlReader::parse_into`]: either a parse failure or a
/// handler failure.
#[derive(Debug)]
pub enum ParseIntoError<E> {
    /// The XML was malformed.
    Parse(XmlError),
    /// The handler rejected an event.
    Handler(E),
}

impl<E: std::fmt::Display> std::fmt::Display for ParseIntoError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseIntoError::Parse(e) => write!(f, "{e}"),
            ParseIntoError::Handler(e) => write!(f, "handler error: {e}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for ParseIntoError<E> {}

impl<E> From<XmlError> for ParseIntoError<E> {
    fn from(e: XmlError) -> Self {
        ParseIntoError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(xml: &str) -> Vec<SaxEvent> {
        XmlReader::new(xml)
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_else(|e| panic!("parse failed for {xml:?}: {e}"))
    }

    fn expect_err(xml: &str) -> XmlError {
        XmlReader::new(xml)
            .collect::<Result<Vec<_>, _>>()
            .expect_err(&format!("expected failure for {xml:?}"))
    }

    #[test]
    fn paper_table4_example() {
        let evs = events("<doc><para>Hello, world!</para></doc>");
        let rendered: Vec<String> = evs.iter().map(|e| e.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "start document",
                "start element: doc",
                "start element: para",
                "characters: Hello, world!",
                "end element: para",
                "end element: doc",
                "end document",
            ]
        );
    }

    #[test]
    fn attributes_with_both_quote_styles() {
        let evs = events(r#"<e a="1" b='two words'/>"#);
        match &evs[1] {
            SaxEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].value, "two words");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn empty_element_produces_start_and_end() {
        let evs = events("<a><b/></a>");
        let kinds: Vec<_> = evs.iter().map(SaxEvent::kind).collect();
        assert_eq!(
            kinds,
            [
                "start document",
                "start element",
                "start element",
                "end element",
                "end element",
                "end document"
            ]
        );
    }

    #[test]
    fn entities_are_expanded_in_text_and_attributes() {
        let evs = events(r#"<e a="&lt;&amp;&gt;">&#65;&amp;B</e>"#);
        match &evs[1] {
            SaxEvent::StartElement { attributes, .. } => assert_eq!(attributes[0].value, "<&>"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[2], SaxEvent::Characters("A&B".into()));
    }

    #[test]
    fn entity_texts_are_isolated_across_runs() {
        // The slow-path scratch is reused between runs; each run must
        // see only its own expansion.
        let evs = events("<a><b>&amp;x</b><c>&lt;y</c></a>");
        assert_eq!(evs[3], SaxEvent::Characters("&x".into()));
        assert_eq!(evs[6], SaxEvent::Characters("<y".into()));
    }

    #[test]
    fn mixed_escaped_attributes_keep_their_values() {
        // Escape-free values borrow the input; entity values live in
        // the scratch — both on one tag, in both orders.
        let evs = events(r#"<e a="plain" b="&amp;1" c="also plain" d="&lt;2"/>"#);
        match &evs[1] {
            SaxEvent::StartElement { attributes, .. } => {
                let values: Vec<&str> = attributes.iter().map(|a| a.value.as_str()).collect();
                assert_eq!(values, ["plain", "&1", "also plain", "<2"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cdata_is_delivered_verbatim() {
        let evs = events("<e><![CDATA[<not-a-tag> & stuff]]></e>");
        assert_eq!(evs[2], SaxEvent::Characters("<not-a-tag> & stuff".into()));
    }

    #[test]
    fn comments_and_pis_are_reported() {
        let evs = events("<?xml version=\"1.0\"?><!-- hi --><e><?pi some data?></e>");
        assert_eq!(evs[1], SaxEvent::Comment(" hi ".into()));
        assert_eq!(
            evs[3],
            SaxEvent::ProcessingInstruction {
                target: "pi".into(),
                data: "some data".into()
            }
        );
    }

    #[test]
    fn namespace_declarations_are_plain_attributes() {
        let evs = events(r#"<s:e xmlns:s="uri:s" s:a="v"></s:e>"#);
        match &evs[1] {
            SaxEvent::StartElement { name, attributes } => {
                assert_eq!(name.to_string(), "s:e");
                assert!(attributes[0].name.is_namespace_declaration());
                assert_eq!(attributes[1].name.to_string(), "s:a");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn whitespace_only_prolog_and_epilog_are_ignored() {
        let evs = events("  \n <e>x</e> \n ");
        assert_eq!(evs.len(), 5);
    }

    #[test]
    fn from_bytes_parses_and_validates() {
        let evs = XmlReader::from_bytes(b"<doc>ok</doc>")
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(evs.len(), 5);
        let err = XmlReader::from_bytes(b"<doc>\xff</doc>").unwrap_err();
        assert!(err.message().contains("not valid UTF-8"), "{err}");
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let e = expect_err("<a><b></a></b>");
        assert!(e.message().contains("mismatched end tag"), "{e}");
    }

    #[test]
    fn unclosed_root_is_rejected() {
        let e = expect_err("<a><b></b>");
        assert!(e.message().contains("still open"), "{e}");
    }

    #[test]
    fn multiple_roots_are_rejected() {
        let e = expect_err("<a/><b/>");
        assert!(e.message().contains("multiple root"), "{e}");
    }

    #[test]
    fn text_outside_root_is_rejected() {
        assert!(expect_err("hello<a/>")
            .message()
            .contains("outside the root"));
        assert!(expect_err("<a/>hello").message().contains("after the root"));
    }

    #[test]
    fn doctype_is_rejected() {
        let e = expect_err("<!DOCTYPE html><a/>");
        assert!(e.message().contains("DTD"), "{e}");
    }

    #[test]
    fn duplicate_attributes_are_rejected() {
        let e = expect_err(r#"<e a="1" a="2"/>"#);
        assert!(e.message().contains("duplicate attribute"), "{e}");
    }

    #[test]
    fn empty_document_is_rejected() {
        let e = expect_err("   ");
        assert!(e.message().contains("no root element"), "{e}");
    }

    #[test]
    fn truncated_inputs_are_rejected_not_hung() {
        for xml in [
            "<",
            "<a",
            "<a b",
            "<a b=",
            "<a b='x",
            "<a>",
            "<a><!-- ",
            "<a><![CDATA[x",
        ] {
            assert!(
                XmlReader::new(xml).collect::<Result<Vec<_>, _>>().is_err(),
                "expected error for {xml:?}"
            );
        }
    }

    #[test]
    fn invalid_names_are_rejected() {
        for xml in ["<1a/>", "<a:b:c/>", "<-x/>", "<a .b='c'/>"] {
            assert!(
                XmlReader::new(xml).collect::<Result<Vec<_>, _>>().is_err(),
                "expected error for {xml:?}"
            );
        }
    }

    #[test]
    fn parse_into_recorder_equals_read_all() {
        let xml = r#"<a x="1"><b>text &amp; more</b><c/></a>"#;
        let direct = XmlReader::new(xml).read_sequence().unwrap();
        let mut rec = crate::sax::Recorder::new();
        XmlReader::new(xml).parse_into(&mut rec).unwrap();
        assert_eq!(rec.into_sequence(), direct);
    }

    #[test]
    fn read_sequence_interns_names_once() {
        let xml = r#"<list><item n="1"/><item n="2"/><item n="3"/></list>"#;
        let seq = XmlReader::new(xml).read_sequence().unwrap();
        // list, item, n — id-resolved by the reader's scan, adopted whole.
        assert_eq!(seq.names().len(), 3);
        let owned = XmlReader::new(xml).read_all().unwrap();
        for (a, b) in seq.iter().zip(&owned) {
            assert_eq!(a, *b);
        }
    }

    #[test]
    fn iterator_and_pull_agree() {
        let xml = "<a><b/>t</a>";
        let via_iter: Vec<_> = XmlReader::new(xml).collect::<Result<_, _>>().unwrap();
        let via_pull = XmlReader::new(xml).read_all().unwrap();
        assert_eq!(via_iter, via_pull);
    }

    #[test]
    fn deep_nesting_is_handled() {
        let depth = 1000;
        let mut xml = String::new();
        for _ in 0..depth {
            xml.push_str("<d>");
        }
        for _ in 0..depth {
            xml.push_str("</d>");
        }
        let evs = events(&xml);
        assert_eq!(evs.len(), 2 * depth + 2);
    }

    #[test]
    fn unicode_content_is_preserved() {
        let evs = events("<e attr='héllo'>日本語テキスト</e>");
        assert_eq!(evs[2], SaxEvent::Characters("日本語テキスト".into()));
        match &evs[1] {
            SaxEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "héllo");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unicode_element_names_take_the_slow_path() {
        let evs = events("<héllo>x</héllo>");
        match &evs[1] {
            SaxEvent::StartElement { name, .. } => assert_eq!(name.local_part(), "héllo"),
            other => panic!("unexpected {other:?}"),
        }
    }
}

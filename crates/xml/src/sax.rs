//! SAX-style push interface: the [`ContentHandler`] trait, event dispatch,
//! and a [`Recorder`] that captures events into a
//! [`SaxEventSequence`](crate::event::SaxEventSequence).

use crate::error::XmlError;
use crate::event::{Attributes, SaxEvent, SaxEventSequence};
use crate::name::QName;

/// Receives parsing events, either live from [`crate::reader::XmlReader`]
/// or replayed from a recorded [`SaxEventSequence`].
///
/// All methods default to doing nothing so handlers only override what they
/// consume. `Error` is handler-defined; deserializers typically use their
/// own error type.
pub trait ContentHandler {
    /// Error produced by this handler.
    type Error;

    /// Document begins.
    fn start_document(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }

    /// Document ends.
    fn end_document(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }

    /// Element begins. Attributes include namespace declarations; the
    /// [`Attributes`] view is `Copy` and borrows from the parser input,
    /// its scratch, or the arena — never per-callback allocations.
    fn start_element(
        &mut self,
        _name: &QName,
        _attributes: Attributes<'_>,
    ) -> Result<(), Self::Error> {
        Ok(())
    }

    /// Element ends.
    fn end_element(&mut self, _name: &QName) -> Result<(), Self::Error> {
        Ok(())
    }

    /// Character data (entities already expanded).
    fn characters(&mut self, _text: &str) -> Result<(), Self::Error> {
        Ok(())
    }

    /// A comment. Most consumers ignore these.
    fn comment(&mut self, _text: &str) -> Result<(), Self::Error> {
        Ok(())
    }

    /// A processing instruction.
    fn processing_instruction(&mut self, _target: &str, _data: &str) -> Result<(), Self::Error> {
        Ok(())
    }
}

/// Delivers one event to a handler, mapping each variant to its callback.
pub fn dispatch<H: ContentHandler>(handler: &mut H, event: &SaxEvent) -> Result<(), H::Error> {
    match event {
        SaxEvent::StartDocument => handler.start_document(),
        SaxEvent::EndDocument => handler.end_document(),
        SaxEvent::StartElement { name, attributes } => {
            handler.start_element(name, Attributes::from_slice(attributes))
        }
        SaxEvent::EndElement { name } => handler.end_element(name),
        SaxEvent::Characters(text) => handler.characters(text),
        SaxEvent::Comment(text) => handler.comment(text),
        SaxEvent::ProcessingInstruction { target, data } => {
            handler.processing_instruction(target, data)
        }
    }
}

/// A handler that records every event it receives.
///
/// This is how the cache records the post-parsing representation of a
/// response while the response is *also* being deserialized: a
/// [`Tee`] can feed both a `Recorder` and the deserializer.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    sequence: SaxEventSequence,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Consumes the recorder, yielding the captured sequence.
    pub fn into_sequence(self) -> SaxEventSequence {
        self.sequence
    }

    /// The events captured so far.
    pub fn sequence(&self) -> &SaxEventSequence {
        &self.sequence
    }
}

impl ContentHandler for Recorder {
    type Error = XmlError;

    fn start_document(&mut self) -> Result<(), XmlError> {
        self.sequence.record_start_document();
        Ok(())
    }

    fn end_document(&mut self) -> Result<(), XmlError> {
        self.sequence.record_end_document();
        Ok(())
    }

    fn start_element(&mut self, name: &QName, attributes: Attributes<'_>) -> Result<(), XmlError> {
        self.sequence.record_start_element(name, attributes);
        Ok(())
    }

    fn end_element(&mut self, name: &QName) -> Result<(), XmlError> {
        self.sequence.record_end_element(name);
        Ok(())
    }

    fn characters(&mut self, text: &str) -> Result<(), XmlError> {
        self.sequence.record_characters(text);
        Ok(())
    }

    fn comment(&mut self, text: &str) -> Result<(), XmlError> {
        self.sequence.record_comment(text);
        Ok(())
    }

    fn processing_instruction(&mut self, target: &str, data: &str) -> Result<(), XmlError> {
        self.sequence.record_processing_instruction(target, data);
        Ok(())
    }
}

/// Feeds each event to two handlers in sequence (first `a`, then `b`).
///
/// Used to record a response's SAX sequence while simultaneously
/// deserializing it, so a cache miss costs only one parse.
#[derive(Debug)]
pub struct Tee<'x, A, B> {
    a: &'x mut A,
    b: &'x mut B,
}

impl<'x, A, B> Tee<'x, A, B> {
    /// Creates a tee over two handlers.
    pub fn new(a: &'x mut A, b: &'x mut B) -> Self {
        Tee { a, b }
    }
}

/// Error from either side of a [`Tee`].
#[derive(Debug)]
pub enum TeeError<EA, EB> {
    /// The first handler failed.
    First(EA),
    /// The second handler failed.
    Second(EB),
}

impl<EA: std::fmt::Display, EB: std::fmt::Display> std::fmt::Display for TeeError<EA, EB> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeeError::First(e) => write!(f, "first handler: {e}"),
            TeeError::Second(e) => write!(f, "second handler: {e}"),
        }
    }
}

impl<EA, EB> std::error::Error for TeeError<EA, EB>
where
    EA: std::fmt::Display + std::fmt::Debug,
    EB: std::fmt::Display + std::fmt::Debug,
{
}

macro_rules! tee_forward {
    ($self:ident, $($call:tt)+) => {{
        $self.a.$($call)+.map_err(TeeError::First)?;
        $self.b.$($call)+.map_err(TeeError::Second)
    }};
}

impl<A: ContentHandler, B: ContentHandler> ContentHandler for Tee<'_, A, B> {
    type Error = TeeError<A::Error, B::Error>;

    fn start_document(&mut self) -> Result<(), Self::Error> {
        tee_forward!(self, start_document())
    }
    fn end_document(&mut self) -> Result<(), Self::Error> {
        tee_forward!(self, end_document())
    }
    fn start_element(
        &mut self,
        name: &QName,
        attributes: Attributes<'_>,
    ) -> Result<(), Self::Error> {
        tee_forward!(self, start_element(name, attributes))
    }
    fn end_element(&mut self, name: &QName) -> Result<(), Self::Error> {
        tee_forward!(self, end_element(name))
    }
    fn characters(&mut self, text: &str) -> Result<(), Self::Error> {
        tee_forward!(self, characters(text))
    }
    fn comment(&mut self, text: &str) -> Result<(), Self::Error> {
        tee_forward!(self, comment(text))
    }
    fn processing_instruction(&mut self, target: &str, data: &str) -> Result<(), Self::Error> {
        tee_forward!(self, processing_instruction(target, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_roundtrips_replay() {
        let events: SaxEventSequence = vec![
            SaxEvent::StartDocument,
            SaxEvent::StartElement {
                name: QName::local("a"),
                attributes: vec![],
            },
            SaxEvent::Characters("x".into()),
            SaxEvent::Comment("c".into()),
            SaxEvent::ProcessingInstruction {
                target: "pi".into(),
                data: "d".into(),
            },
            SaxEvent::EndElement {
                name: QName::local("a"),
            },
            SaxEvent::EndDocument,
        ]
        .into();
        let mut rec = Recorder::new();
        events.replay(&mut rec).unwrap();
        assert_eq!(rec.into_sequence(), events);
    }

    #[test]
    fn tee_feeds_both_handlers() {
        let events: SaxEventSequence = vec![
            SaxEvent::StartDocument,
            SaxEvent::Characters("x".into()),
            SaxEvent::EndDocument,
        ]
        .into();
        let mut r1 = Recorder::new();
        let mut r2 = Recorder::new();
        {
            let mut tee = Tee::new(&mut r1, &mut r2);
            events.replay(&mut tee).unwrap();
        }
        assert_eq!(r1.sequence(), &events);
        assert_eq!(r2.sequence(), &events);
    }

    #[test]
    fn tee_error_identifies_side() {
        struct Failing;
        impl ContentHandler for Failing {
            type Error = XmlError;
            fn characters(&mut self, _: &str) -> Result<(), XmlError> {
                Err(XmlError::new("boom"))
            }
        }
        let mut f = Failing;
        let mut r = Recorder::new();
        let mut tee = Tee::new(&mut f, &mut r);
        let err = dispatch(&mut tee, &SaxEvent::Characters("x".into())).unwrap_err();
        assert!(matches!(err, TeeError::First(_)));
        assert!(err.to_string().contains("boom"));
    }
}

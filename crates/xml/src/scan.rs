//! Byte-class table and word-at-a-time scanning primitives for the
//! zero-allocation XML reader.
//!
//! The reader never walks the document `char` by `char`: a 256-entry
//! class table answers "is this byte whitespace / a name start / a name
//! continuation" in one load, and the delimiter searches that dominate
//! parse time (`<` and `&` in character data, the closing quote in
//! attribute values) go through SWAR `memchr`-style loops that test
//! eight bytes per iteration in safe Rust. All delimiters are ASCII, so
//! byte positions found here are always UTF-8 character boundaries and
//! the surrounding `&str` can be sliced at them for free.

/// Whitespace for intra-tag skipping. Matches `u8::is_ascii_whitespace`
/// (the XML `S` production plus form-feed, which the previous
/// char-oriented reader also skipped).
pub(crate) const WS: u8 = 1 << 0;
/// ASCII `NameStartChar` minus `:` — letters and `_`.
pub(crate) const NAME_START: u8 = 1 << 1;
/// ASCII `NameChar` minus `:` — [`NAME_START`] plus digits, `-`, `.`.
pub(crate) const NAME: u8 = 1 << 2;

/// The byte-class lookup table driving the reader's state machine.
pub(crate) const CLASS: [u8; 256] = build_class_table();

const fn build_class_table() -> [u8; 256] {
    let mut table = [0u8; 256];
    table[b' ' as usize] = WS;
    table[b'\t' as usize] = WS;
    table[b'\n' as usize] = WS;
    table[b'\r' as usize] = WS;
    table[0x0C] = WS; // form feed, for is_ascii_whitespace parity
    let mut b = b'a';
    while b <= b'z' {
        table[b as usize] = NAME_START | NAME;
        b += 1;
    }
    let mut b = b'A';
    while b <= b'Z' {
        table[b as usize] = NAME_START | NAME;
        b += 1;
    }
    table[b'_' as usize] = NAME_START | NAME;
    let mut b = b'0';
    while b <= b'9' {
        table[b as usize] = NAME;
        b += 1;
    }
    table[b'-' as usize] = NAME;
    table[b'.' as usize] = NAME;
    table
}

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// The classic SWAR zero-byte test: the high bit of each lane is set
/// iff that lane of `x` is zero.
#[inline]
fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

#[inline]
fn first_lane(hits: u64) -> usize {
    // `from_le_bytes` puts byte 0 in the least significant lane on every
    // platform, so the lowest set bit names the earliest match.
    (hits.trailing_zeros() / 8) as usize
}

/// Position of the first `needle` in `haystack`. The main loop tests
/// sixteen bytes per iteration (two independent words keep both loads
/// in flight), which matters for the kilobyte-scale text runs — base64
/// payloads — between delimiters.
#[inline]
pub(crate) fn memchr(needle: u8, haystack: &[u8]) -> Option<usize> {
    let broadcast = u64::from(needle) * LO;
    let mut chunks = haystack.chunks_exact(16);
    let mut offset = 0;
    for pair in &mut chunks {
        let w1 = u64::from_le_bytes(pair[..8].try_into().expect("8-byte chunk"));
        let w2 = u64::from_le_bytes(pair[8..].try_into().expect("8-byte chunk"));
        let h1 = zero_lanes(w1 ^ broadcast);
        let h2 = zero_lanes(w2 ^ broadcast);
        if h1 | h2 != 0 {
            return Some(if h1 != 0 {
                offset + first_lane(h1)
            } else {
                offset + 8 + first_lane(h2)
            });
        }
        offset += 16;
    }
    let rest = chunks.remainder();
    if rest.len() >= 8 {
        let word = u64::from_le_bytes(rest[..8].try_into().expect("8-byte chunk"));
        let hits = zero_lanes(word ^ broadcast);
        if hits != 0 {
            return Some(offset + first_lane(hits));
        }
        return rest[8..]
            .iter()
            .position(|&b| b == needle)
            .map(|i| offset + 8 + i);
    }
    rest.iter().position(|&b| b == needle).map(|i| offset + i)
}

/// Position of the first of two needles in `haystack`, sixteen bytes
/// per iteration like [`memchr`].
#[inline]
pub(crate) fn memchr2(n1: u8, n2: u8, haystack: &[u8]) -> Option<usize> {
    let b1 = u64::from(n1) * LO;
    let b2 = u64::from(n2) * LO;
    let mut chunks = haystack.chunks_exact(16);
    let mut offset = 0;
    for pair in &mut chunks {
        let w1 = u64::from_le_bytes(pair[..8].try_into().expect("8-byte chunk"));
        let w2 = u64::from_le_bytes(pair[8..].try_into().expect("8-byte chunk"));
        let h1 = zero_lanes(w1 ^ b1) | zero_lanes(w1 ^ b2);
        let h2 = zero_lanes(w2 ^ b1) | zero_lanes(w2 ^ b2);
        if h1 | h2 != 0 {
            return Some(if h1 != 0 {
                offset + first_lane(h1)
            } else {
                offset + 8 + first_lane(h2)
            });
        }
        offset += 16;
    }
    let rest = chunks.remainder();
    if rest.len() >= 8 {
        let word = u64::from_le_bytes(rest[..8].try_into().expect("8-byte chunk"));
        let hits = zero_lanes(word ^ b1) | zero_lanes(word ^ b2);
        if hits != 0 {
            return Some(offset + first_lane(hits));
        }
        return rest[8..]
            .iter()
            .position(|&b| b == n1 || b == n2)
            .map(|i| offset + 8 + i);
    }
    rest.iter()
        .position(|&b| b == n1 || b == n2)
        .map(|i| offset + i)
}

/// Position of the first of three needles in `haystack`.
#[inline]
pub(crate) fn memchr3(n1: u8, n2: u8, n3: u8, haystack: &[u8]) -> Option<usize> {
    let b1 = u64::from(n1) * LO;
    let b2 = u64::from(n2) * LO;
    let b3 = u64::from(n3) * LO;
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let hits = zero_lanes(word ^ b1) | zero_lanes(word ^ b2) | zero_lanes(word ^ b3);
        if hits != 0 {
            return Some(offset + first_lane(hits));
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3)
        .map(|i| offset + i)
}

/// SWAR byte-wise `x < n` test (valid for `n <= 0x80`): the high bit of
/// each lane is set iff that lane of `x` is below `n`.
#[inline]
fn lt_lanes(x: u64, n: u8) -> u64 {
    x.wrapping_sub(u64::from(n) * LO) & !x & HI
}

/// Length of the name token at the start of `haystack`: the offset of
/// the first byte in `stops`, scanning eight bytes at a time. The SWAR
/// pass tests a fixed superset of every caller's stop set (`\t \n \r
/// SP / = >` — all below 0x0E, or one of the three punctuation bytes);
/// a candidate outside `stops` is skipped so each call site keeps its
/// exact historical terminator set. Returns `haystack.len()` when no
/// stop byte occurs.
#[inline]
pub(crate) fn name_len(haystack: &[u8], stops: impl Fn(u8) -> bool + Copy) -> usize {
    let b_sp = u64::from(b' ') * LO;
    let b_slash = u64::from(b'/') * LO;
    let b_eq = u64::from(b'=') * LO;
    let b_gt = u64::from(b'>') * LO;
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let mut hits = lt_lanes(word, 0x0E)
            | zero_lanes(word ^ b_sp)
            | zero_lanes(word ^ b_slash)
            | zero_lanes(word ^ b_eq)
            | zero_lanes(word ^ b_gt);
        while hits != 0 {
            let at = i + first_lane(hits);
            if stops(haystack[at]) {
                return at;
            }
            // Superset false positive (e.g. a control byte a caller
            // treats as name content): drop the lane and keep looking.
            hits &= hits - 1;
        }
        i += 8;
    }
    while i < haystack.len() {
        if stops(haystack[i]) {
            return i;
        }
        i += 1;
    }
    haystack.len()
}

/// Word-at-a-time slice equality for the short runs the reader compares
/// on its hot path (tag names, entity spellings). The generic `==` on
/// `[u8]` lowers to a `bcmp` libcall whose setup overhead dwarfs the
/// comparison itself at these lengths; fixed-size overlapping loads stay
/// inline and branch-free per word.
#[inline]
pub(crate) fn bytes_eq(a: &[u8], b: &[u8]) -> bool {
    let len = a.len();
    if len != b.len() {
        return false;
    }
    if len >= 8 {
        let mut i = 0;
        while i + 8 <= len {
            let wa = u64::from_le_bytes(a[i..i + 8].try_into().expect("8-byte chunk"));
            let wb = u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte chunk"));
            if wa != wb {
                return false;
            }
            i += 8;
        }
        // Overlapping tail load: re-comparing up to seven already-equal
        // bytes is cheaper than a byte loop.
        let ta = u64::from_le_bytes(a[len - 8..].try_into().expect("8-byte tail"));
        let tb = u64::from_le_bytes(b[len - 8..].try_into().expect("8-byte tail"));
        ta == tb
    } else if len >= 4 {
        let ha = u32::from_le_bytes(a[..4].try_into().expect("4-byte head"));
        let hb = u32::from_le_bytes(b[..4].try_into().expect("4-byte head"));
        let ta = u32::from_le_bytes(a[len - 4..].try_into().expect("4-byte tail"));
        let tb = u32::from_le_bytes(b[len - 4..].try_into().expect("4-byte tail"));
        ((ha ^ hb) | (ta ^ tb)) == 0
    } else {
        a.iter().zip(b).all(|(x, y)| x == y)
    }
}

/// Position of the first occurrence of `seq` in `haystack` (used for the
/// rare `-->`, `]]>`, `?>` terminators; seeded by a [`memchr`] on the
/// first byte so the common skip stays word-at-a-time).
#[inline]
pub(crate) fn find_seq(seq: &[u8], haystack: &[u8]) -> Option<usize> {
    debug_assert!(!seq.is_empty());
    let mut from = 0;
    while from + seq.len() <= haystack.len() {
        let hit = memchr(seq[0], &haystack[from..])?;
        let at = from + hit;
        if at + seq.len() > haystack.len() {
            return None;
        }
        if &haystack[at..at + seq.len()] == seq {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_classifies_ascii() {
        assert_ne!(CLASS[b' ' as usize] & WS, 0);
        assert_ne!(CLASS[b'\n' as usize] & WS, 0);
        assert_ne!(CLASS[b'a' as usize] & NAME_START, 0);
        assert_ne!(CLASS[b'Z' as usize] & NAME_START, 0);
        assert_ne!(CLASS[b'_' as usize] & NAME_START, 0);
        assert_eq!(CLASS[b'7' as usize] & NAME_START, 0);
        assert_ne!(CLASS[b'7' as usize] & NAME, 0);
        assert_ne!(CLASS[b'-' as usize] & NAME, 0);
        assert_ne!(CLASS[b'.' as usize] & NAME, 0);
        assert_eq!(CLASS[b'<' as usize], 0);
        assert_eq!(CLASS[b':' as usize], 0);
        assert_eq!(CLASS[0x80], 0);
    }

    #[test]
    fn memchr_agrees_with_position() {
        let hay = b"abcdefghijklmnop<qrstuvwx&yz";
        for target in [b'<', b'&', b'a', b'p', b'z', b'?'] {
            assert_eq!(
                memchr(target, hay),
                hay.iter().position(|&b| b == target),
                "needle {:?}",
                target as char
            );
        }
        // Every offset, to cross the chunk boundary both ways.
        for start in 0..hay.len() {
            assert_eq!(
                memchr(b'&', &hay[start..]),
                hay[start..].iter().position(|&b| b == b'&')
            );
        }
    }

    #[test]
    fn memchr2_and_3_find_the_earliest() {
        let hay = b"0123456789<abc&def\"ghi";
        assert_eq!(memchr2(b'&', b'<', hay), Some(10));
        assert_eq!(memchr2(b'&', b'"', hay), Some(14));
        assert_eq!(memchr3(b'"', b'<', b'&', hay), Some(10));
        assert_eq!(memchr3(b'"', b'x', b'y', hay), Some(18));
        assert_eq!(memchr3(b'!', b'#', b'%', hay), None);
    }

    #[test]
    fn find_seq_handles_overlap_and_tail() {
        assert_eq!(find_seq(b"-->", b"a--->"), Some(2));
        assert_eq!(find_seq(b"]]>", b"body]]>rest"), Some(4));
        assert_eq!(find_seq(b"?>", b"no terminator"), None);
        assert_eq!(find_seq(b"-->", b"--"), None);
    }
}

//! Interned XML name symbols.
//!
//! Element and attribute names in SOAP traffic are drawn from a tiny
//! vocabulary (`soapenv:Envelope`, `item`, `xsi:type`, …) yet the naive
//! pipeline allocated a fresh `String` for every occurrence of every
//! name in every event. A [`Symbol`] is an `Arc<str>` plus its hash,
//! computed exactly once at intern time; a [`SymbolTable`] deduplicates
//! symbols so a recorded event sequence charges each distinct name once
//! no matter how many events mention it.
//!
//! The table deliberately has **no interior mutability** — interning
//! requires `&mut self` — so tables embedded in cached values stay
//! deeply immutable (analyzer rule R1).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// FNV-1a 64-bit offset basis, exposed crate-internally so the reader's
/// name scanner can fold the hash into the same byte pass that
/// validates the name (hash-once, scan-once).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime; see [`FNV_OFFSET`].
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit: tiny, dependency-free, and good enough for name-sized
/// keys. Computed once per interned string (hash-once): both the table
/// probe and every later `HashMap` use of the [`Symbol`] reuse it.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = FNV_OFFSET;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// An interned string: shared text plus its precomputed hash.
///
/// Cloning is a pointer bump. Equality first compares the cached hashes
/// and the `Arc` pointers, so comparing two symbols drawn from the same
/// table never touches the text.
#[derive(Clone)]
pub struct Symbol {
    text: Arc<str>,
    hash: u64,
}

impl Symbol {
    /// Interns `text` outside any table (computes the hash, allocates).
    /// Prefer [`SymbolTable::intern`] when many names repeat.
    pub fn new(text: &str) -> Self {
        Symbol {
            text: Arc::from(text),
            hash: fnv1a(text),
        }
    }

    /// The interned text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The cached 64-bit hash of the text.
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// Length of the text in bytes.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the text is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The shared text buffer.
    pub fn shared_str(&self) -> &Arc<str> {
        &self.text
    }

    /// Whether two symbols share one allocation (same table entry).
    pub fn ptr_eq(&self, other: &Symbol) -> bool {
        Arc::ptr_eq(&self.text, &other.text)
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && (Arc::ptr_eq(&self.text, &other.text) || self.text == other.text)
    }
}

impl Eq for Symbol {}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        &*self.text == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        &*self.text == *other
    }
}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.text.cmp(&other.text)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", &*self.text)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.text
    }
}

/// Bucket marker for an empty slot in the open-addressed index.
const EMPTY: u32 = u32::MAX;

/// A deduplicating symbol table.
///
/// Open-addressed (linear probing) over the symbols' cached hashes; no
/// `std::collections::HashMap` so probing reuses the hash computed at
/// intern time instead of re-running SipHash per lookup. All mutation is
/// `&mut self` — a table frozen inside an `Arc`'d cached value is plain
/// immutable data (rule R1).
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    symbols: Vec<Symbol>,
    /// Power-of-two bucket array of indices into `symbols`.
    buckets: Vec<u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns `text`, returning the shared symbol (a pointer bump when
    /// the name was seen before).
    pub fn intern(&mut self, text: &str) -> Symbol {
        let hash = fnv1a(text);
        if let Some(found) = self.find(hash, text) {
            return found;
        }
        self.insert_new(Symbol {
            text: Arc::from(text),
            hash,
        })
    }

    /// Interns `text` under a hash the caller already computed — the
    /// reader folds FNV-1a into the byte scan that validates a name, so
    /// interning never re-reads the bytes. `hash` must equal
    /// `fnv1a(text)`.
    pub(crate) fn intern_prehashed(&mut self, hash: u64, text: &str) -> Symbol {
        debug_assert_eq!(hash, fnv1a(text), "caller-supplied hash mismatch");
        if let Some(found) = self.find(hash, text) {
            return found;
        }
        self.insert_new(Symbol {
            text: Arc::from(text),
            hash,
        })
    }

    /// Interns an existing symbol, reusing its cached hash (the
    /// hash-once path between tables: no byte of the name is re-hashed).
    pub fn intern_symbol(&mut self, symbol: &Symbol) -> Symbol {
        if let Some(found) = self.find(symbol.hash, &symbol.text) {
            return found;
        }
        self.insert_new(symbol.clone())
    }

    /// Interns a lexical QName (`ns:elem` or `elem`) with both parts
    /// deduplicated through this table.
    pub fn intern_qname(&mut self, raw: &str) -> crate::name::QName {
        match raw.split_once(':') {
            Some((prefix, local)) => {
                let prefix = self.intern(prefix);
                let local = self.intern(local);
                crate::name::QName::from_symbols(Some(prefix), local)
            }
            None => crate::name::QName::from_symbols(None, self.intern(raw)),
        }
    }

    /// Re-interns a QName produced elsewhere so equal names share one
    /// allocation in this table (cached hashes are reused).
    pub fn unify_qname(&mut self, name: &crate::name::QName) -> crate::name::QName {
        let prefix = name.prefix_symbol().map(|p| self.intern_symbol(p));
        let local = self.intern_symbol(name.local_symbol());
        crate::name::QName::from_symbols(prefix, local)
    }

    /// Looks up a previously interned name without inserting.
    pub fn get(&self, text: &str) -> Option<Symbol> {
        self.find(fnv1a(text), text)
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether no names are interned.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over the distinct interned symbols.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }

    /// Heap bytes retained by the distinct names — each name charged
    /// **once**, however many events or attributes reference it.
    pub fn names_bytes(&self) -> usize {
        self.symbols.iter().map(|s| s.len()).sum()
    }

    /// Approximate retained size: unique name bytes plus table overhead.
    pub fn approximate_size(&self) -> usize {
        self.names_bytes()
            + self.symbols.capacity() * std::mem::size_of::<Symbol>()
            + self.buckets.capacity() * std::mem::size_of::<u32>()
    }

    fn find(&self, hash: u64, text: &str) -> Option<Symbol> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.buckets[slot] {
                EMPTY => return None,
                index => {
                    let candidate = &self.symbols[index as usize];
                    if candidate.hash == hash && &*candidate.text == text {
                        return Some(candidate.clone());
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    fn insert_new(&mut self, symbol: Symbol) -> Symbol {
        // Grow at 75% load so probes stay short.
        if self.buckets.is_empty() || (self.symbols.len() + 1) * 4 > self.buckets.len() * 3 {
            self.grow();
        }
        let mask = self.buckets.len() - 1;
        let mut slot = (symbol.hash as usize) & mask;
        while self.buckets[slot] != EMPTY {
            slot = (slot + 1) & mask;
        }
        self.buckets[slot] = self.symbols.len() as u32;
        self.symbols.push(symbol.clone());
        symbol
    }

    fn grow(&mut self) {
        let new_len = (self.buckets.len() * 2).max(16);
        self.buckets.clear();
        self.buckets.resize(new_len, EMPTY);
        let mask = new_len - 1;
        for (index, symbol) in self.symbols.iter().enumerate() {
            let mut slot = (symbol.hash as usize) & mask;
            while self.buckets[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.buckets[slot] = index as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut table = SymbolTable::new();
        let a = table.intern("Envelope");
        let b = table.intern("Envelope");
        assert!(a.ptr_eq(&b));
        assert_eq!(table.len(), 1);
        let c = table.intern("Body");
        assert!(!a.ptr_eq(&c));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn symbols_compare_and_hash_by_text() {
        let a = Symbol::new("item");
        let mut table = SymbolTable::new();
        let b = table.intern("item");
        assert_eq!(a, b);
        assert_eq!(a.hash64(), b.hash64());
        assert!(!a.ptr_eq(&b), "different allocations, equal values");
        // A HashSet keyed by symbols finds equal symbols from any table
        // (hashing writes the cached value, never the text bytes).
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&Symbol::new("other")));
    }

    #[test]
    fn intern_symbol_reuses_existing_allocation() {
        let mut table = SymbolTable::new();
        let first = table.intern("return");
        let outside = Symbol::new("return");
        let unified = table.intern_symbol(&outside);
        assert!(unified.ptr_eq(&first));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn qname_interning_splits_prefixes() {
        let mut table = SymbolTable::new();
        let q = table.intern_qname("soapenv:Body");
        assert_eq!(q.prefix(), "soapenv");
        assert_eq!(q.local_part(), "Body");
        let plain = table.intern_qname("item");
        assert_eq!(plain.prefix(), "");
        assert_eq!(plain.local_part(), "item");
        // soapenv, Body, item
        assert_eq!(table.len(), 3);
        let again = table.intern_qname("soapenv:Body");
        assert!(again.local_symbol().ptr_eq(q.local_symbol()));
    }

    #[test]
    fn names_are_charged_once() {
        let mut table = SymbolTable::new();
        for _ in 0..1000 {
            table.intern("Envelope");
            table.intern("Body");
        }
        assert_eq!(table.len(), 2);
        assert_eq!(table.names_bytes(), "Envelope".len() + "Body".len());
    }

    #[test]
    fn table_survives_growth() {
        let mut table = SymbolTable::new();
        let names: Vec<String> = (0..500).map(|i| format!("name-{i}")).collect();
        let first: Vec<Symbol> = names.iter().map(|n| table.intern(n)).collect();
        for (name, symbol) in names.iter().zip(&first) {
            let again = table.intern(name);
            assert!(again.ptr_eq(symbol), "{name} lost after growth");
        }
        assert_eq!(table.len(), 500);
        assert_eq!(table.get("name-250").as_ref(), Some(&first[250]));
        assert_eq!(table.get("absent"), None);
    }

    #[test]
    fn ordering_is_textual() {
        let mut v = [Symbol::new("b"), Symbol::new("a"), Symbol::new("c")];
        v.sort();
        let texts: Vec<&str> = v.iter().map(Symbol::as_str).collect();
        assert_eq!(texts, ["a", "b", "c"]);
    }
}

//! A streaming XML writer with automatic escaping.

use crate::error::XmlError;
use crate::escape::{escape_attribute, escape_text};
use crate::event::{SaxEvent, SaxEventRef};
use crate::name::QName;

/// Builds an XML document into an in-memory `String`.
///
/// Elements are opened with [`start`](XmlWriter::start) (attributes may be
/// added until content is written) and closed with [`end`](XmlWriter::end).
/// The writer tracks the open-element stack and refuses misuse.
///
/// ```
/// use wsrc_xml::XmlWriter;
/// # fn main() -> Result<(), wsrc_xml::XmlError> {
/// let mut w = XmlWriter::new();
/// w.start("doc")?;
/// w.start("para")?;
/// w.text("Hello, world!")?;
/// w.end()?; // para
/// w.end()?; // doc
/// assert_eq!(w.finish()?, "<doc><para>Hello, world!</para></doc>");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct XmlWriter {
    out: String,
    open: Vec<String>,
    tag_open: bool,
    root_closed: bool,
    declaration: bool,
    indent: Option<usize>,
    // true when the current open element has child elements (pretty mode)
    had_children: Vec<bool>,
    had_text: Vec<bool>,
}

impl XmlWriter {
    /// Creates a writer producing compact output (no declaration).
    pub fn new() -> Self {
        XmlWriter::default()
    }

    /// Creates a writer that first emits `<?xml version="1.0" encoding="UTF-8"?>`.
    pub fn with_declaration() -> Self {
        XmlWriter {
            declaration: true,
            ..XmlWriter::default()
        }
    }

    /// Enables pretty-printing with the given indent width.
    pub fn indented(mut self, spaces: usize) -> Self {
        self.indent = Some(spaces);
        self
    }

    fn write_declaration_if_needed(&mut self) {
        if self.declaration && self.out.is_empty() {
            self.out
                .push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
            if self.indent.is_some() {
                self.out.push('\n');
            }
        }
    }

    fn close_pending_tag(&mut self) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
    }

    fn newline_and_indent(&mut self, depth: usize) {
        if let Some(width) = self.indent {
            if !self.out.is_empty() && !self.out.ends_with('\n') {
                self.out.push('\n');
            }
            for _ in 0..depth * width {
                self.out.push(' ');
            }
        }
    }

    /// Opens an element. `name` may be prefixed (`soap:Envelope`).
    ///
    /// # Errors
    ///
    /// Fails if the document's root element was already closed.
    pub fn start(&mut self, name: impl AsRef<str>) -> Result<&mut Self, XmlError> {
        if self.root_closed {
            return Err(XmlError::new(
                "cannot start an element after the root was closed",
            ));
        }
        self.write_declaration_if_needed();
        self.close_pending_tag();
        if let Some(last) = self.had_children.last_mut() {
            *last = true;
        }
        let depth = self.open.len();
        let suppress_indent = self.had_text.last().copied().unwrap_or(false);
        if !suppress_indent {
            self.newline_and_indent(depth);
        }
        self.out.push('<');
        self.out.push_str(name.as_ref());
        self.open.push(name.as_ref().to_string());
        self.had_children.push(false);
        self.had_text.push(false);
        self.tag_open = true;
        Ok(self)
    }

    /// Adds an attribute to the element opened by the latest `start`.
    ///
    /// # Errors
    ///
    /// Fails if content was already written to the element (attributes must
    /// come first).
    pub fn attr(
        &mut self,
        name: impl AsRef<str>,
        value: impl AsRef<str>,
    ) -> Result<&mut Self, XmlError> {
        if !self.tag_open {
            return Err(XmlError::new(format!(
                "attribute '{}' written after element content",
                name.as_ref()
            )));
        }
        self.out.push(' ');
        self.out.push_str(name.as_ref());
        self.out.push_str("=\"");
        self.out.push_str(&escape_attribute(value.as_ref()));
        self.out.push('"');
        Ok(self)
    }

    /// Declares a namespace on the open element: `xmlns:prefix="uri"`, or
    /// `xmlns="uri"` when `prefix` is empty.
    ///
    /// # Errors
    ///
    /// Same conditions as [`attr`](XmlWriter::attr).
    pub fn namespace(&mut self, prefix: &str, uri: &str) -> Result<&mut Self, XmlError> {
        if prefix.is_empty() {
            self.attr("xmlns", uri)
        } else {
            self.attr(format!("xmlns:{prefix}"), uri)
        }
    }

    /// Writes escaped character data inside the current element.
    ///
    /// # Errors
    ///
    /// Fails when no element is open.
    pub fn text(&mut self, text: impl AsRef<str>) -> Result<&mut Self, XmlError> {
        if self.open.is_empty() {
            return Err(XmlError::new("text outside the root element"));
        }
        self.close_pending_tag();
        if let Some(t) = self.had_text.last_mut() {
            *t = true;
        }
        self.out.push_str(&escape_text(text.as_ref()));
        Ok(self)
    }

    /// Writes pre-escaped raw markup verbatim. The caller is responsible
    /// for its well-formedness.
    ///
    /// # Errors
    ///
    /// Fails when no element is open.
    pub fn raw(&mut self, markup: impl AsRef<str>) -> Result<&mut Self, XmlError> {
        if self.open.is_empty() {
            return Err(XmlError::new("raw markup outside the root element"));
        }
        self.close_pending_tag();
        if let Some(t) = self.had_text.last_mut() {
            *t = true;
        }
        self.out.push_str(markup.as_ref());
        Ok(self)
    }

    /// Writes a comment.
    ///
    /// # Errors
    ///
    /// Fails if `text` contains `--`, which is illegal in comments.
    pub fn comment(&mut self, text: impl AsRef<str>) -> Result<&mut Self, XmlError> {
        if text.as_ref().contains("--") {
            return Err(XmlError::new("'--' is not allowed inside comments"));
        }
        self.write_declaration_if_needed();
        self.close_pending_tag();
        self.out.push_str("<!--");
        self.out.push_str(text.as_ref());
        self.out.push_str("-->");
        Ok(self)
    }

    /// Closes the most recently opened element.
    ///
    /// # Errors
    ///
    /// Fails when no element is open.
    pub fn end(&mut self) -> Result<&mut Self, XmlError> {
        let name = self
            .open
            .pop()
            .ok_or_else(|| XmlError::new("end() with no open element"))?;
        let had_children = self.had_children.pop().unwrap_or(false);
        let had_text = self.had_text.pop().unwrap_or(false);
        if self.tag_open {
            self.out.push_str("/>");
            self.tag_open = false;
        } else {
            if had_children && !had_text {
                self.newline_and_indent(self.open.len());
            }
            self.out.push_str("</");
            self.out.push_str(&name);
            self.out.push('>');
        }
        if self.open.is_empty() {
            self.root_closed = true;
        }
        Ok(self)
    }

    /// Writes `<name>text</name>` in one call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`start`](XmlWriter::start).
    pub fn element_with_text(
        &mut self,
        name: impl AsRef<str>,
        text: impl AsRef<str>,
    ) -> Result<&mut Self, XmlError> {
        self.start(name)?;
        self.text(text)?;
        self.end()
    }

    /// Finishes the document and returns the XML string.
    ///
    /// # Errors
    ///
    /// Fails if elements remain open or nothing was written.
    pub fn finish(self) -> Result<String, XmlError> {
        if let Some(open) = self.open.last() {
            return Err(XmlError::new(format!(
                "finish() while <{open}> is still open"
            )));
        }
        if !self.root_closed {
            return Err(XmlError::new(
                "finish() before any root element was written",
            ));
        }
        Ok(self.out)
    }

    /// Current nesting depth (0 at the top level).
    pub fn depth(&self) -> usize {
        self.open.len()
    }
}

/// Serializes a SAX event stream back into XML text.
///
/// Replaying a recorded sequence through this function reconstructs a
/// document equivalent to the original (modulo empty-element form and
/// attribute quoting).
///
/// # Errors
///
/// Fails when the event stream itself is ill-formed (e.g. unbalanced
/// elements).
pub fn events_to_string<'e, I, E>(events: I) -> Result<String, XmlError>
where
    I: IntoIterator<Item = E>,
    E: Into<SaxEventRef<'e>>,
{
    let mut w = XmlWriter::new();
    for event in events {
        match event.into() {
            SaxEventRef::StartDocument | SaxEventRef::EndDocument => {}
            SaxEventRef::StartElement { name, attributes } => {
                w.start(name.to_string())?;
                for a in attributes {
                    w.attr(a.name.to_string(), a.value)?;
                }
            }
            SaxEventRef::EndElement { .. } => {
                w.end()?;
            }
            SaxEventRef::Characters(text) => {
                w.text(text)?;
            }
            SaxEventRef::Comment(text) => {
                w.comment(text)?;
            }
            SaxEventRef::ProcessingInstruction { target, data } => {
                let pi = if data.is_empty() {
                    format!("<?{target}?>")
                } else {
                    format!("<?{target} {data}?>")
                };
                if w.depth() == 0 {
                    // PI outside the root: append verbatim.
                    w.out.push_str(&pi);
                } else {
                    w.raw(pi)?;
                }
            }
        }
    }
    w.finish()
}

/// Convenience: the end-element name matching a start event, for consumers
/// hand-rolling event streams.
pub fn end_of(name: &QName) -> SaxEvent {
    SaxEvent::EndElement { name: name.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::XmlReader;

    #[test]
    fn basic_document() {
        let mut w = XmlWriter::new();
        w.start("a").unwrap();
        w.attr("x", "1").unwrap();
        w.start("b").unwrap();
        w.text("hi").unwrap();
        w.end().unwrap();
        w.start("c").unwrap();
        w.end().unwrap();
        w.end().unwrap();
        assert_eq!(w.finish().unwrap(), r#"<a x="1"><b>hi</b><c/></a>"#);
    }

    #[test]
    fn declaration_and_namespace() {
        let mut w = XmlWriter::with_declaration();
        w.start("s:e").unwrap();
        w.namespace("s", "uri:s").unwrap();
        w.namespace("", "uri:default").unwrap();
        w.end().unwrap();
        assert_eq!(
            w.finish().unwrap(),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><s:e xmlns:s=\"uri:s\" xmlns=\"uri:default\"/>"
        );
    }

    #[test]
    fn escaping_is_automatic() {
        let mut w = XmlWriter::new();
        w.start("e").unwrap();
        w.attr("a", "x\"<y").unwrap();
        w.text("1 < 2 & 3 > 2").unwrap();
        w.end().unwrap();
        let xml = w.finish().unwrap();
        assert_eq!(xml, r#"<e a="x&quot;&lt;y">1 &lt; 2 &amp; 3 &gt; 2</e>"#);
        // And it parses back to the original data.
        let evs = XmlReader::new(&xml).read_all().unwrap();
        assert!(matches!(&evs[2], SaxEvent::Characters(t) if t == "1 < 2 & 3 > 2"));
    }

    #[test]
    fn misuse_is_rejected() {
        let mut w = XmlWriter::new();
        assert!(w.end().is_err());
        assert!(w.text("x").is_err());
        w.start("a").unwrap();
        w.text("t").unwrap();
        assert!(w.attr("late", "v").is_err());
        w.end().unwrap();
        assert!(w.start("second-root").is_err());
    }

    #[test]
    fn finish_requires_closed_root() {
        let mut w = XmlWriter::new();
        w.start("a").unwrap();
        assert!(w.finish().is_err());
        let empty = XmlWriter::new();
        assert!(empty.finish().is_err());
    }

    #[test]
    fn element_with_text_shorthand() {
        let mut w = XmlWriter::new();
        w.start("r").unwrap();
        w.element_with_text("k", "v").unwrap();
        w.end().unwrap();
        assert_eq!(w.finish().unwrap(), "<r><k>v</k></r>");
    }

    #[test]
    fn comment_rules() {
        let mut w = XmlWriter::new();
        w.start("a").unwrap();
        assert!(w.comment("bad -- comment").is_err());
        w.comment(" ok ").unwrap();
        w.end().unwrap();
        assert_eq!(w.finish().unwrap(), "<a><!-- ok --></a>");
    }

    #[test]
    fn pretty_printing_indents_nested_elements() {
        let mut w = XmlWriter::new().indented(2);
        w.start("a").unwrap();
        w.start("b").unwrap();
        w.text("t").unwrap();
        w.end().unwrap();
        w.end().unwrap();
        assert_eq!(w.finish().unwrap(), "<a>\n  <b>t</b>\n</a>");
    }

    #[test]
    fn events_roundtrip_through_writer() {
        let xml = r#"<a x="1"><b>hello &amp; goodbye</b><c/><!-- note --></a>"#;
        let events = XmlReader::new(xml).read_all().unwrap();
        let rewritten = events_to_string(&events).unwrap();
        let reparsed = XmlReader::new(&rewritten).read_all().unwrap();
        assert_eq!(events, reparsed);
    }

    #[test]
    fn writer_parser_roundtrip_preserves_unicode() {
        let mut w = XmlWriter::new();
        w.start("e").unwrap();
        w.text("日本語 & <stuff>").unwrap();
        w.end().unwrap();
        let xml = w.finish().unwrap();
        let evs = XmlReader::new(&xml).read_all().unwrap();
        assert!(matches!(&evs[2], SaxEvent::Characters(t) if t == "日本語 & <stuff>"));
    }
}

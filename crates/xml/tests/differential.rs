//! Differential harness for the zero-alloc reader.
//!
//! Two halves:
//!
//! 1. **Fixpoint** — writer-built documents survive parse → rewrite,
//!    and the rewritten form is a *fixpoint*: rewriting it again yields
//!    byte-identical output. This pins the reader/writer pair as a
//!    canonicalizer, not just an approximate round-trip.
//! 2. **Malformed corpus** — a hand-curated set of broken inputs
//!    (unbalanced tags, bad entities, truncated CDATA, non-UTF-8
//!    bytes, DOCTYPE) must produce clean `XmlError`s — never panics —
//!    and every parsing front end (`read_sequence`, `parse_into`,
//!    `next_event`) must agree on success, events, and error message,
//!    since they share one scanner behind different event sinks.

use wsrc_xml::event::SaxEvent;
use wsrc_xml::reader::XmlReader;
use wsrc_xml::sax::Recorder;
use wsrc_xml::writer::{events_to_string, XmlWriter};

/// Deterministic xorshift64* generator (same scheme as proptests.rs:
/// the environment has no proptest crate, so failures reproduce by
/// seed).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn name(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_.-";
    let mut s = String::new();
    s.push(FIRST[rng.below(FIRST.len())] as char);
    for _ in 0..rng.below(12) {
        s.push(REST[rng.below(REST.len())] as char);
    }
    s
}

fn text(rng: &mut Rng) -> String {
    let specials = ['&', '<', '>', '"', '\'', '\u{a0}', '日'];
    (0..rng.below(30))
        .map(|_| {
            if rng.below(4) == 0 {
                specials[rng.below(specials.len())]
            } else {
                (b' ' + rng.below(95) as u8) as char
            }
        })
        .collect()
}

/// Builds a random document through the writer: nested elements,
/// attributes, text, comments, the occasional PI.
fn writer_doc(rng: &mut Rng) -> String {
    let mut w = XmlWriter::new();
    let mut depth = 0usize;
    w.start(name(rng)).unwrap();
    depth += 1;
    for _ in 0..rng.below(40) {
        match rng.below(6) {
            0 if depth < 6 => {
                w.start(name(rng)).unwrap();
                let mut seen = Vec::new();
                for _ in 0..rng.below(3) {
                    let n = name(rng);
                    if !seen.contains(&n) {
                        w.attr(&n, text(rng)).unwrap();
                        seen.push(n);
                    }
                }
                depth += 1;
            }
            1 if depth > 1 => {
                w.end().unwrap();
                depth -= 1;
            }
            2 => {
                w.text(text(rng)).unwrap();
            }
            3 => {
                // Comments must not contain `--`.
                w.comment(text(rng).replace('-', "_")).unwrap();
            }
            _ => {
                w.element_with_text(name(rng), text(rng)).unwrap();
            }
        }
    }
    while depth > 0 {
        w.end().unwrap();
        depth -= 1;
    }
    w.finish().unwrap()
}

/// Writer output parses, and rewrite reaches a fixpoint in one step:
/// rewrite(parse(rewrite(parse(doc)))) == rewrite(parse(doc)).
#[test]
fn writer_parse_rewrite_reaches_fixpoint() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(seed);
        let doc = writer_doc(&mut rng);
        let seq1 = XmlReader::new(&doc)
            .read_sequence()
            .unwrap_or_else(|e| panic!("seed {seed}: writer output must parse: {e}\n{doc}"));
        let rewritten = events_to_string(seq1.iter()).unwrap();
        let seq2 = XmlReader::new(&rewritten)
            .read_sequence()
            .unwrap_or_else(|e| panic!("seed {seed}: rewritten output must parse: {e}"));
        assert_eq!(seq1, seq2, "seed {seed}: rewrite changed the event stream");
        let rewritten2 = events_to_string(seq2.iter()).unwrap();
        assert_eq!(
            rewritten, rewritten2,
            "seed {seed}: rewrite is not a fixpoint"
        );
    }
}

/// Every front end over the same input: `read_sequence` (arena),
/// `parse_into` a [`Recorder`] (push), and the `next_event` pull loop
/// (owned). Returns the owned event stream or the error message.
fn all_frontends(input: &str) -> Result<Vec<SaxEvent>, String> {
    let arena = XmlReader::new(input).read_sequence();
    let mut rec = Recorder::new();
    let push = XmlReader::new(input).parse_into(&mut rec);
    let mut pull_events = Vec::new();
    let mut reader = XmlReader::new(input);
    let pull = loop {
        match reader.next_event() {
            Ok(Some(e)) => pull_events.push(e),
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        }
    };
    match (arena, push, pull) {
        (Ok(seq), Ok(()), Ok(())) => {
            let owned = seq.to_owned_events();
            assert_eq!(owned, rec.sequence().to_owned_events(), "push != arena");
            assert_eq!(owned, pull_events, "pull != arena");
            Ok(owned)
        }
        (Err(a), Err(p), Err(q)) => {
            let (a, p, q) = (a.to_string(), p.to_string(), q.to_string());
            assert_eq!(a, p, "push error != arena error");
            assert_eq!(a, q, "pull error != arena error");
            Err(a)
        }
        (arena, push, pull) => panic!(
            "front ends disagree on success for {input:?}: \
             arena={:?} push={:?} pull={:?}",
            arena.map(|_| ()),
            push.is_ok(),
            pull.is_ok()
        ),
    }
}

/// Hand-curated malformed corpus: every entry must yield a clean error
/// (never a panic), identical across all three front ends.
#[test]
fn malformed_corpus_fails_cleanly_and_identically() {
    let corpus: &[&str] = &[
        // Unbalanced / mismatched tags.
        "<a>",
        "</a>",
        "<a><b></a>",
        "<a></b>",
        "<a><b><c></b></c></a>",
        "<a/><a/>",
        "<a></a",
        "<a",
        "<a foo=\"1\"",
        // Bad entities.
        "<a>&unknown;</a>",
        "<a>&;</a>",
        "<a>&</a>",
        "<a>&amp</a>",
        "<a>&#xzz;</a>",
        "<a>&#;</a>",
        "<a>&#x110000;</a>",
        "<a>&#xD800;</a>",
        "<a b=\"&nope;\"/>",
        // Truncated CDATA / comments / PIs.
        "<a><![CDATA[unterminated",
        "<a><![CDATA[almost]]",
        "<a><![CDA",
        "<a><!-- no end",
        "<a><?pi no end",
        // DOCTYPE is rejected outright (SOAP forbids DTDs).
        "<!DOCTYPE html><a/>",
        "<!doctype html><a/>",
        "<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>",
        // Junk before/after the root.
        "text<a/>",
        "<a/>trailing",
        "<a/><!-- ok --><b/>",
        // Malformed names and attributes.
        "<1a/>",
        "<a:b:c/>",
        "<a foo>",
        "<a foo=bar/>",
        "<a foo=\"unterminated>",
        "<a foo=\"x\" foo=\"y\"/>",
        "<a <b/>/>",
    ];
    for input in corpus {
        match all_frontends(input) {
            Err(msg) => assert!(!msg.is_empty(), "error for {input:?} must carry a message"),
            Ok(events) => panic!("{input:?} must fail; parsed {} events", events.len()),
        }
    }
}

/// Non-UTF-8 byte sequences through `from_bytes`: validation errors,
/// never panics, and the error points at UTF-8 rather than tag soup.
#[test]
fn non_utf8_bytes_fail_cleanly() {
    let corpus: &[&[u8]] = &[
        b"<a>\xff</a>",
        b"<a>\xc3</a>",          // truncated 2-byte sequence
        b"<a>\xe2\x82</a>",      // truncated 3-byte sequence
        b"<a>\xf0\x9f\x92</a>",  // truncated 4-byte sequence
        b"<a>\xc0\xaf</a>",      // overlong encoding
        b"<a>\xed\xa0\x80</a>",  // UTF-8-encoded surrogate
        b"<a \xffb=\"1\"/>",     // in markup, not text
        b"\xef\xbb\xbf\xff<a/>", // garbage after a BOM
    ];
    for input in corpus {
        let err = match XmlReader::from_bytes(input) {
            Err(e) => e,
            Ok(r) => match r.read_all() {
                Err(e) => e,
                Ok(evs) => panic!("{input:?} must fail; parsed {} events", evs.len()),
            },
        };
        assert!(
            !err.to_string().is_empty(),
            "error for {input:?} must carry a message"
        );
    }
}

/// The same differential harness over *valid* documents: all three
/// front ends must produce identical event streams (exercises the
/// borrowed → owned bridge against the arena path).
#[test]
fn frontends_agree_on_valid_documents() {
    let corpus: &[&str] = &[
        "<a/>",
        "<a>text</a>",
        "<a b=\"1\" c=\"2\">x<d/>y</a>",
        "<s:Envelope xmlns:s=\"http://schemas.xmlsoap.org/soap/envelope/\">\
         <s:Body><r xsi:type=\"xsd:string\">ok &amp; well</r></s:Body></s:Envelope>",
        "<a><!-- comment --><?pi data?><![CDATA[<raw>&stuff;]]></a>",
        "<a>&#x65;&#101;&lt;&gt;&quot;&apos;&amp;</a>",
        "<\u{e9}l\u{e9}ment attr=\"\u{2603}\">\u{1f4a9}</\u{e9}l\u{e9}ment>",
    ];
    for input in corpus {
        let events =
            all_frontends(input).unwrap_or_else(|e| panic!("{input:?} must parse, got error: {e}"));
        assert!(
            events.len() >= 3,
            "{input:?} must produce at least start/element/end"
        );
    }
    let mut rng = Rng::new(42);
    for seed in 0..64u64 {
        let mut doc_rng = Rng::new(seed + rng.next());
        let doc = writer_doc(&mut doc_rng);
        if let Err(e) = all_frontends(&doc) {
            panic!("seed {seed}: writer doc must parse, got error: {e}");
        }
    }
}

//! Property-based tests for the XML substrate: arbitrary documents survive
//! write→parse and parse→rewrite round-trips, and SAX recording is
//! equivalent to direct parsing.

use proptest::prelude::*;
use wsrc_xml::dom::{Document, Element, Node};
use wsrc_xml::escape::{escape_attribute, escape_text, unescape};
use wsrc_xml::reader::XmlReader;
use wsrc_xml::sax::Recorder;

/// Text without NUL or other control chars XML 1.0 forbids.
fn xml_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            // Mostly printable ASCII including the characters that need escaping.
            proptest::char::range(' ', '~'),
            Just('&'),
            Just('<'),
            Just('>'),
            Just('"'),
            Just('\''),
            proptest::char::range('\u{a0}', '\u{2ff}'),
            Just('日'),
        ],
        0..40,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn xml_name() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,8}"
}

fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let leaf = (
        xml_name(),
        proptest::collection::vec((xml_name(), xml_text()), 0..3),
        xml_text(),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(&name);
            for (an, av) in attrs {
                if e.attribute(&an).is_none() {
                    e = e.with_attr(an, av);
                }
            }
            if !text.is_empty() {
                e = e.with_text(text);
            }
            e
        });
    if depth == 0 {
        leaf.boxed()
    } else {
        (
            xml_name(),
            proptest::collection::vec((xml_name(), xml_text()), 0..3),
            proptest::collection::vec(arb_element(depth - 1), 0..4),
            xml_text(),
        )
            .prop_map(|(name, attrs, children, text)| {
                let mut e = Element::new(&name);
                for (an, av) in attrs {
                    if e.attribute(&an).is_none() {
                        e = e.with_attr(an, av);
                    }
                }
                if !text.is_empty() {
                    e = e.with_text(text);
                }
                for c in children {
                    e = e.with_child(c);
                }
                e
            })
            .boxed()
    }
}

/// Normalizes a tree the way parsing normalizes it: adjacent text children
/// merged (our builders never create adjacent text, so this is identity,
/// but keep it for robustness) and nothing else.
fn assert_tree_equivalent(a: &Element, b: &Element) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.attributes, b.attributes);
    assert_eq!(
        a.children.len(),
        b.children.len(),
        "children differ for <{}>",
        a.name
    );
    for (ca, cb) in a.children.iter().zip(&b.children) {
        match (ca, cb) {
            (Node::Element(ea), Node::Element(eb)) => assert_tree_equivalent(ea, eb),
            (other_a, other_b) => assert_eq!(other_a, other_b),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn escape_text_roundtrips(s in xml_text()) {
        let escaped = escape_text(&s).into_owned();
        let unescaped = unescape(&escaped).unwrap().into_owned();
        prop_assert_eq!(unescaped, s);
    }

    #[test]
    fn escape_attribute_roundtrips(s in xml_text()) {
        let escaped = escape_attribute(&s).into_owned();
        let unescaped = unescape(&escaped).unwrap().into_owned();
        prop_assert_eq!(unescaped, s);
    }

    #[test]
    fn dom_write_parse_roundtrip(root in arb_element(3)) {
        let xml = root.to_xml();
        let doc = Document::parse(&xml).unwrap();
        assert_tree_equivalent(&doc.root, &root);
    }

    #[test]
    fn sax_record_equals_direct_parse(root in arb_element(3)) {
        let xml = root.to_xml();
        let direct = XmlReader::new(&xml).read_sequence().unwrap();
        let mut rec = Recorder::new();
        XmlReader::new(&xml).parse_into(&mut rec).unwrap();
        prop_assert_eq!(rec.into_sequence(), direct);
    }

    #[test]
    fn replayed_events_rebuild_same_document(root in arb_element(3)) {
        let xml = root.to_xml();
        let seq = XmlReader::new(&xml).read_sequence().unwrap();
        let from_events = Document::from_events(&seq).unwrap();
        let from_text = Document::parse(&xml).unwrap();
        prop_assert_eq!(from_events, from_text);
    }

    #[test]
    fn rewritten_xml_reparses_identically(root in arb_element(3)) {
        let xml = root.to_xml();
        let seq = XmlReader::new(&xml).read_sequence().unwrap();
        let rewritten = wsrc_xml::writer::events_to_string(seq.iter()).unwrap();
        let seq2 = XmlReader::new(&rewritten).read_sequence().unwrap();
        prop_assert_eq!(seq, seq2);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,200}") {
        // Errors are fine; panics or hangs are not.
        let _ = XmlReader::new(&s).read_all();
    }

    #[test]
    fn parser_never_panics_on_tag_soup(s in "[<>&;'\"= a-z!?/\\[\\]-]{0,120}") {
        let _ = XmlReader::new(&s).read_all();
    }
}

//! Randomized round-trip tests for the XML substrate: generated documents
//! survive write→parse and parse→rewrite round-trips, and SAX recording is
//! equivalent to direct parsing.
//!
//! The build environment is offline (no `proptest`), so these use a
//! hand-rolled deterministic xorshift generator with fixed seeds —
//! failures reproduce exactly by seed.

use wsrc_xml::dom::{Document, Element, Node};
use wsrc_xml::escape::{escape_attribute, escape_text, unescape};
use wsrc_xml::reader::XmlReader;
use wsrc_xml::sax::Recorder;
use wsrc_xml::SaxEventRef;

const CASES: u64 = 256;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<T: Copy>(&mut self, choices: &[T]) -> T {
        choices[self.below(choices.len())]
    }
}

/// Text without NUL or other control chars XML 1.0 forbids; biased
/// toward the characters that need escaping.
fn xml_text(rng: &mut Rng) -> String {
    let specials = ['&', '<', '>', '"', '\'', '\u{a0}', '\u{2ff}', '日'];
    let n = rng.below(40);
    (0..n)
        .map(|_| {
            if rng.below(4) == 0 {
                rng.pick(&specials)
            } else {
                (b' ' + rng.below(95) as u8) as char
            }
        })
        .collect()
}

fn xml_name(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_.-";
    let mut s = String::new();
    s.push(FIRST[rng.below(FIRST.len())] as char);
    for _ in 0..rng.below(9) {
        s.push(REST[rng.below(REST.len())] as char);
    }
    s
}

fn arb_element(rng: &mut Rng, depth: u32) -> Element {
    let mut e = Element::new(&xml_name(rng));
    for _ in 0..rng.below(3) {
        let an = xml_name(rng);
        if e.attribute(&an).is_none() {
            e = e.with_attr(an, xml_text(rng));
        }
    }
    let text = xml_text(rng);
    if !text.is_empty() {
        e = e.with_text(text);
    }
    if depth > 0 {
        for _ in 0..rng.below(4) {
            e = e.with_child(arb_element(rng, depth - 1));
        }
    }
    e
}

fn assert_tree_equivalent(a: &Element, b: &Element) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.attributes, b.attributes);
    assert_eq!(
        a.children.len(),
        b.children.len(),
        "children differ for <{}>",
        a.name
    );
    for (ca, cb) in a.children.iter().zip(&b.children) {
        match (ca, cb) {
            (Node::Element(ea), Node::Element(eb)) => assert_tree_equivalent(ea, eb),
            (other_a, other_b) => assert_eq!(other_a, other_b),
        }
    }
}

#[test]
fn escape_text_roundtrips() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let s = xml_text(&mut rng);
        let escaped = escape_text(&s).into_owned();
        let unescaped = unescape(&escaped).unwrap().into_owned();
        assert_eq!(unescaped, s, "seed {seed}");
    }
}

#[test]
fn escape_attribute_roundtrips() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 1000);
        let s = xml_text(&mut rng);
        let escaped = escape_attribute(&s).into_owned();
        let unescaped = unescape(&escaped).unwrap().into_owned();
        assert_eq!(unescaped, s, "seed {seed}");
    }
}

#[test]
fn dom_write_parse_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 2000);
        let root = arb_element(&mut rng, 3);
        let xml = root.to_xml();
        let doc = Document::parse(&xml).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_tree_equivalent(&doc.root, &root);
    }
}

#[test]
fn sax_record_equals_direct_parse() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 3000);
        let root = arb_element(&mut rng, 3);
        let xml = root.to_xml();
        let direct = XmlReader::new(&xml).read_sequence().unwrap();
        let mut rec = Recorder::new();
        XmlReader::new(&xml).parse_into(&mut rec).unwrap();
        assert_eq!(rec.into_sequence(), direct, "seed {seed}");
    }
}

#[test]
fn replayed_events_rebuild_same_document() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 4000);
        let root = arb_element(&mut rng, 3);
        let xml = root.to_xml();
        let seq = XmlReader::new(&xml).read_sequence().unwrap();
        let from_events = Document::from_events(&seq).unwrap();
        let from_text = Document::parse(&xml).unwrap();
        assert_eq!(from_events, from_text, "seed {seed}");
    }
}

#[test]
fn rewritten_xml_reparses_identically() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 5000);
        let root = arb_element(&mut rng, 3);
        let xml = root.to_xml();
        let seq = XmlReader::new(&xml).read_sequence().unwrap();
        let rewritten = wsrc_xml::writer::events_to_string(seq.iter()).unwrap();
        let seq2 = XmlReader::new(&rewritten).read_sequence().unwrap();
        assert_eq!(seq, seq2, "seed {seed}");
    }
}

/// `SaxEventSequence::approximate_size` must track real heap use within a
/// fixed factor: never below the payload bytes actually retained, never
/// above payload plus a bounded per-event/per-attribute overhead.
///
/// The payload ground truth is computed independently of the accounting
/// under test: distinct name strings charged once (the interning
/// contract), text/comment/PI content and attribute values at byte
/// length.
#[test]
fn arena_size_within_fixed_factor_of_heap_use() {
    use std::collections::HashSet;

    // Generous fixed bounds on the arena's per-record bookkeeping; the
    // test fails if accounting drifts past them, i.e. stops being
    // "payload plus a constant per record".
    const PER_RECORD: usize = 192;
    const BASE: usize = 1024;

    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 8000);
        let root = arb_element(&mut rng, 3);
        let xml = root.to_xml();
        let seq = XmlReader::new(&xml).read_sequence().unwrap();

        let mut names: HashSet<String> = HashSet::new();
        let mut payload = 0usize;
        let mut attr_count = 0usize;
        for event in seq.iter() {
            match event {
                SaxEventRef::StartElement { name, attributes } => {
                    names.insert(name.prefix().to_string());
                    names.insert(name.local_part().to_string());
                    for a in attributes {
                        names.insert(a.name.prefix().to_string());
                        names.insert(a.name.local_part().to_string());
                        payload += a.value.len();
                        attr_count += 1;
                    }
                }
                SaxEventRef::EndElement { name } => {
                    names.insert(name.prefix().to_string());
                    names.insert(name.local_part().to_string());
                }
                SaxEventRef::Characters(s) | SaxEventRef::Comment(s) => payload += s.len(),
                SaxEventRef::ProcessingInstruction { target, data } => {
                    payload += target.len() + data.len()
                }
                _ => {}
            }
        }
        payload += names.iter().map(String::len).sum::<usize>();

        let approx = seq.approximate_size();
        assert!(
            approx >= payload,
            "seed {seed}: approximate_size {approx} undercounts payload {payload}"
        );
        let budget = payload + PER_RECORD * (seq.len() + attr_count) + BASE;
        assert!(
            approx <= budget,
            "seed {seed}: approximate_size {approx} exceeds budget {budget} \
             ({} events, {attr_count} attributes, payload {payload})",
            seq.len()
        );
    }
}

/// Interned names are charged once per symbol table, not once per event:
/// adding more elements with an already seen (long) name grows the
/// sequence by the fixed per-event width only, and the arena accounting
/// stays strictly below the owned-event accounting that charges the
/// name on every event.
#[test]
fn interned_names_charged_once_per_table() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed + 9000);
        // A name long enough that per-event charging would dominate.
        let name: String = std::iter::repeat_n("LongName", 24 + rng.below(16)).collect();
        let few = 8;
        let many = few + 16 + rng.below(48);
        let doc = |k: usize| {
            let mut s = String::from("<root>");
            for _ in 0..k {
                s.push('<');
                s.push_str(&name);
                s.push_str("/>");
            }
            s.push_str("</root>");
            s
        };

        let seq_few = XmlReader::new(&doc(few)).read_sequence().unwrap();
        let seq_many = XmlReader::new(&doc(many)).read_sequence().unwrap();

        // Each extra element adds two events (start + end) but zero new
        // name bytes; per-element growth must stay under one name copy.
        let growth = seq_many.approximate_size() - seq_few.approximate_size();
        let per_element = growth / (many - few);
        assert!(
            per_element < name.len(),
            "seed {seed}: {per_element} bytes per repeated <{}…> element \
             suggests the name is charged per event, not per table",
            &name[..8]
        );

        // Owned events charge the name on every start/end; the arena
        // must come in strictly below that once the name repeats.
        let owned: usize = seq_many
            .to_owned_events()
            .iter()
            .map(|e| e.approximate_size())
            .sum();
        assert!(
            seq_many.approximate_size() < owned,
            "seed {seed}: arena {} not below owned {owned}",
            seq_many.approximate_size()
        );
    }
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 6000);
        let n = rng.below(200);
        let s: String = (0..n)
            .map(|_| char::from_u32(rng.next() as u32 % 0x400).unwrap_or('?'))
            .collect();
        // Errors are fine; panics or hangs are not.
        let _ = XmlReader::new(&s).read_all();
    }
}

#[test]
fn parser_never_panics_on_tag_soup() {
    const SOUP: &[u8] = b"<>&;'\"= abcdefghijklmnopqrstuvwxyz!?/[]-";
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 7000);
        let n = rng.below(120);
        let s: String = (0..n)
            .map(|_| SOUP[rng.below(SOUP.len())] as char)
            .collect();
        let _ = XmlReader::new(&s).read_all();
    }
}

//! Cache policy in action (paper §3.2, Table 1): the Amazon service's 20
//! search operations are cacheable, its 6 shopping-cart operations are
//! not — and caching a cart *would* return stale carts, which this
//! example demonstrates by comparing a correct and a misconfigured
//! policy.
//!
//! ```text
//! cargo run --example amazon_policy
//! ```

use std::sync::Arc;
use std::time::Duration;
use wsrcache::cache::{CachePolicy, OperationPolicy, ResponseCache};
use wsrcache::client::ServiceClient;
use wsrcache::http::{InProcTransport, Url};
use wsrcache::model::Value;
use wsrcache::services::amazon::{self, AmazonService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

fn cart_items(v: &Value) -> usize {
    v.as_struct()
        .and_then(|s| s.get("items"))
        .and_then(Value::as_array)
        .map(<[Value]>::len)
        .unwrap_or(0)
}

fn client_with(policy: CachePolicy) -> ServiceClient {
    let dispatcher = SoapDispatcher::new().mount(amazon::PATH, Arc::new(AmazonService::new()));
    let cache = Arc::new(
        ResponseCache::builder(amazon::registry())
            .policy(policy)
            .build(),
    );
    ServiceClient::builder(
        Url::new("amazon.test", 80, amazon::PATH),
        Arc::new(InProcTransport::new(Arc::new(dispatcher))),
    )
    .registry(amazon::registry())
    .operations(amazon::operations())
    .cache(cache)
    .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The policy can also be written as a deployment descriptor:
    let descriptor = "
        # search operations are cacheable for an hour
        KeywordSearch       cacheable ttl=1h
        AuthorSearch        cacheable ttl=1h
        # cart operations are uncacheable
        GetShoppingCart     uncacheable
        AddShoppingCartItems uncacheable
    ";
    let parsed = CachePolicy::parse(descriptor).expect("valid descriptor");
    println!("parsed policy covers {} operations\n", parsed.len());

    // --- correct configuration: the preset from paper Table 1 ---
    let good = client_with(amazon::default_policy());
    let get_cart = RpcRequest::new(amazon::NAMESPACE, "GetShoppingCart").with_param("cartId", "c1");
    let add_book = RpcRequest::new(amazon::NAMESPACE, "AddShoppingCartItems")
        .with_param("cartId", "c1")
        .with_param("item", "a book");

    println!("correct policy (cart uncacheable):");
    println!(
        "  cart items before add: {}",
        cart_items(good.invoke(&get_cart)?.0.as_value())
    );
    good.invoke(&add_book)?;
    println!(
        "  cart items after add:  {}",
        cart_items(good.invoke(&get_cart)?.0.as_value())
    );

    // Searches, in contrast, are cacheable and repeat cheaply.
    let search = RpcRequest::new(amazon::NAMESPACE, "KeywordSearch")
        .with_param("keyword", "distributed systems")
        .with_param("page", 1);
    good.invoke(&search)?;
    good.invoke(&search)?;
    let stats = good.cache().unwrap().stats();
    println!(
        "  search calls: {} hit / {} miss; cart calls counted uncacheable: {}\n",
        stats.hits, stats.misses, stats.uncacheable
    );

    // --- misconfigured: caching the cart returns stale state ---
    let bad = client_with(
        CachePolicy::new().with_default(OperationPolicy::cacheable(Duration::from_secs(3600))),
    );
    println!("misconfigured policy (everything cacheable):");
    println!(
        "  cart items before add: {}",
        cart_items(bad.invoke(&get_cart)?.0.as_value())
    );
    bad.invoke(&add_book)?;
    let stale = cart_items(bad.invoke(&get_cart)?.0.as_value());
    println!("  cart items after add:  {stale}   <-- stale! the cached empty cart was returned");
    assert_eq!(
        stale, 0,
        "demonstrates why cart operations must be uncacheable"
    );
    Ok(())
}

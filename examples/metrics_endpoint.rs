//! One portal server serving both SOAP traffic and `GET /metrics`.
//!
//! The dispatcher for the dummy Google service is wrapped in
//! [`MetricsRoute`], so the same TCP listener that answers SOAP calls
//! exposes everything the instrumented pipeline records — in Prometheus
//! text format, or as JSON with `?format=json`. A cached client drives
//! some traffic, then the example scrapes its own endpoint.
//!
//! ```console
//! $ cargo run --example metrics_endpoint            # run + self-scrape
//! $ cargo run --example metrics_endpoint -- --hold 60   # keep serving
//! ```

use std::sync::Arc;
use std::time::Duration;
use wsrcache::cache::{KeyStrategy, ResponseCache};
use wsrcache::client::ServiceClient;
use wsrcache::http::{HttpClient, MetricsRoute, Server, TcpTransport, Url};
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(MetricsRoute::new(Arc::new(dispatcher))),
    )?;
    let port = server.port();
    println!("portal with /metrics listening on 127.0.0.1:{port}");

    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .cache_everything(Duration::from_secs(3600))
            .key_strategy(KeyStrategy::ToString)
            .metrics_label("portal")
            .build(),
    );
    let client = ServiceClient::builder(
        Url::new("127.0.0.1", port, google::PATH),
        Arc::new(TcpTransport::new()),
    )
    .registry(google::registry())
    .operations(google::operations())
    .cache(cache)
    .build();

    // Two distinct queries, three rounds: 2 misses, 4 hits.
    for _ in 0..3 {
        for phrase in ["optimal representation", "response caching"] {
            let request = RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
                .with_param("key", "demo")
                .with_param("phrase", phrase);
            client.invoke(&request)?;
        }
    }

    let metrics = HttpClient::new()
        .get(&Url::new("127.0.0.1", port, "/metrics"))?
        .body_text()?
        .to_string();
    println!(
        "\nself-scrape of GET /metrics ({} bytes), cache series:",
        metrics.len()
    );
    for line in metrics.lines() {
        if line.starts_with("wsrc_cache_") && !line.contains("_bucket") {
            println!("  {line}");
        }
    }

    if let Some(pos) = std::env::args().position(|a| a == "--hold") {
        let secs: u64 = std::env::args()
            .nth(pos + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(60);
        println!("\nholding the server for {secs}s — try:");
        println!("  curl http://127.0.0.1:{port}/metrics");
        println!("  curl http://127.0.0.1:{port}/metrics?format=json");
        std::thread::sleep(Duration::from_secs(secs));
    }
    Ok(())
}

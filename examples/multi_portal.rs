//! The paper's motivating scenario (introduction): a portal page built
//! from three back-end Web services — search, stock quotes and news —
//! each behind its own caching client with its own TTL policy, served
//! over real TCP.
//!
//! ```text
//! cargo run --example multi_portal
//! ```

use std::sync::Arc;
use wsrcache::cache::{KeyStrategy, ResponseCache};
use wsrcache::client::ServiceClient;
use wsrcache::http::{HttpClient, Server, TcpTransport, Url};
use wsrcache::portal::MultiPortal;
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::news::{self, NewsService};
use wsrcache::services::stock::{self, StockQuoteService};
use wsrcache::services::SoapDispatcher;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One back-end server hosting all three services.
    let dispatcher = SoapDispatcher::new()
        .mount(google::PATH, Arc::new(GoogleService::new()))
        .mount(stock::PATH, Arc::new(StockQuoteService::new()))
        .mount(news::PATH, Arc::new(NewsService::new()));
    let backend = Server::bind("127.0.0.1:0", Arc::new(dispatcher))?;
    println!("back-end services on 127.0.0.1:{}", backend.port());

    let make_client = |path: &str,
                       registry: wsrcache::model::TypeRegistry,
                       ops: Vec<wsrcache::soap::OperationDescriptor>,
                       policy: wsrcache::cache::CachePolicy| {
        let cache = Arc::new(
            ResponseCache::builder(registry.clone())
                .policy(policy)
                .key_strategy(KeyStrategy::ToString)
                .build(),
        );
        Arc::new(
            ServiceClient::builder(
                Url::new("127.0.0.1", backend.port(), path),
                Arc::new(TcpTransport::new()),
            )
            .registry(registry)
            .operations(ops)
            .cache(cache)
            .build(),
        )
    };
    let portal = MultiPortal::new(
        make_client(
            google::PATH,
            google::registry(),
            google::operations(),
            google::default_policy(),
        ),
        make_client(
            stock::PATH,
            stock::registry(),
            stock::operations(),
            stock::default_policy(),
        ),
        make_client(
            news::PATH,
            news::registry(),
            news::operations(),
            news::default_policy(),
        ),
    );
    let portal_server = Server::bind("127.0.0.1:0", Arc::new(portal))?;
    println!("portal on http://127.0.0.1:{}/home\n", portal_server.port());

    // Fetch the same page twice: the second render is served entirely
    // from the three response caches.
    let browser = HttpClient::new();
    let page_url = Url::new(
        "127.0.0.1",
        portal_server.port(),
        "/home?q=response+caching&symbols=ibm,sun,hp&topic=middleware",
    );
    for visit in 1..=2 {
        let t = std::time::Instant::now();
        let page = browser.get(&page_url)?;
        println!(
            "visit {visit}: {} ({} bytes, {:?}) — backend has served {} requests",
            page.status,
            page.body.len(),
            t.elapsed(),
            backend.requests_served(),
        );
    }
    println!("\nthe second visit added no backend requests: all three sections were cache hits");
    Ok(())
}

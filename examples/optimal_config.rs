//! The §6 "optimal configuration", static and adaptive, side by side.
//!
//! Act one is the paper's run-time classifier: each response object is
//! classified once and a fixed representation chosen from its type.
//! Act two is the online [`AdaptivePolicy`]: the same operations replayed
//! through a live cache that observes real build/retrieve costs, picks a
//! representation per insert, and converts hot entries on hit — no
//! administrator configuration in either act, but the adaptive cache
//! keeps re-deciding as the workload reveals itself.
//!
//! ```text
//! cargo run --release --example optimal_config
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};
use wsrcache::cache::policy::{AdaptivePolicy, CachePolicy, OperationPolicy};
use wsrcache::cache::repr::StoredResponse;
use wsrcache::cache::{
    FastestSelector, PaperSelector, RepresentationSelector, ResponseCache, ResponseData,
    ValueRepresentation,
};
use wsrcache::services::dispatch::SoapService;
use wsrcache::services::google::{self, GoogleService};
use wsrcache::soap::deserializer::read_response_xml_recording;
use wsrcache::soap::serializer::serialize_response;
use wsrcache::soap::RpcRequest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = GoogleService::new();
    let registry = google::registry();
    let requests = vec![
        (
            "doSpellingSuggestion",
            RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
                .with_param("key", "k")
                .with_param("phrase", "optmal confguration"),
        ),
        (
            "doGetCachedPage",
            RpcRequest::new(google::NAMESPACE, "doGetCachedPage")
                .with_param("key", "k")
                .with_param("url", "http://example.test/"),
        ),
        (
            "doGoogleSearch",
            RpcRequest::new(google::NAMESPACE, "doGoogleSearch")
                .with_param("key", "k")
                .with_param("q", "selector demo")
                .with_param("start", 0)
                .with_param("maxResults", 10)
                .with_param("filter", true)
                .with_param("restrict", "")
                .with_param("safeSearch", false)
                .with_param("lr", "")
                .with_param("ie", "utf-8")
                .with_param("oe", "utf-8"),
        ),
    ];

    println!("static classification (one decision per response type):\n");
    println!(
        "{:<22} {:<22} {:<22} {:<20}",
        "operation", "paper selector (§6)", "fastest selector", "retrieval time"
    );
    for (op, request) in &requests {
        let op = *op;
        let value = service.call(request)?;
        let paper_choice = PaperSelector.select(&value, &registry, false);
        let fastest_choice = FastestSelector.select(&value, &registry, false);

        // Materialize the fastest choice and time one retrieval.
        let descriptor = google::operations()
            .into_iter()
            .find(|o| o.name == op)
            .expect("known operation");
        let xml = serialize_response(google::NAMESPACE, op, "return", &value, &registry)?;
        let (_, events) = read_response_xml_recording(&xml, &descriptor.return_type, &registry)?;
        let xml: std::sync::Arc<[u8]> = std::sync::Arc::from(xml.into_bytes());
        let events = std::sync::Arc::new(events);
        let stored = StoredResponse::build(
            fastest_choice,
            wsrcache::cache::repr::MissArtifacts {
                xml: &xml,
                events: &events,
                value: &value,
            },
            &registry,
        )?;
        let t = Instant::now();
        let iterations = 1000;
        for _ in 0..iterations {
            std::hint::black_box(stored.retrieve(&descriptor.return_type, &registry)?);
        }
        let per_op = t.elapsed() / iterations;
        println!(
            "{:<22} {:<22} {:<22} {:<20}",
            op,
            paper_choice.label(),
            fastest_choice.label(),
            format!("{per_op:?}")
        );
    }

    println!("\nrules applied (paper §6):");
    println!(
        "  a) immutable types            -> {}",
        ValueRepresentation::PassByReference.label()
    );
    println!(
        "  b) bean/array types           -> {}",
        ValueRepresentation::ReflectionCopy.label()
    );
    println!(
        "  c) serializable types         -> {}",
        ValueRepresentation::Serialization.label()
    );
    println!(
        "  d) everything else            -> {}",
        ValueRepresentation::SaxEvents.label()
    );
    println!("(the FastestSelector additionally prefers the generated clone when present)");

    // ── Act two: the adaptive policy on a live cache ─────────────────
    //
    // One cache per operation so the counters below are per-operation.
    // A warm-up sweep over distinct keys lets the policy's explore
    // phase observe real build and retrieve costs; then a single hot
    // key is hammered, and the policy converts the entry on hit when a
    // cheaper-to-retrieve form pays for its one-time build.
    println!("\nadaptive selection (live cache, costs observed online):\n");
    println!(
        "{:<22} {:<18} {:<18} {:<18} {:<20}",
        "operation", "first insert", "serves hot key", "converted to", "hot lookup time"
    );
    const URL: &str = "http://optimal-config.demo/soap";
    for (op, request) in &requests {
        let value = service.call(request)?;
        let descriptor = google::operations()
            .into_iter()
            .find(|o| o.name == *op)
            .expect("known operation");
        let xml = serialize_response(google::NAMESPACE, op, "return", &value, &google::registry())?;
        let (_, events) =
            read_response_xml_recording(&xml, &descriptor.return_type, &google::registry())?;
        let xml: Arc<[u8]> = Arc::from(xml.into_bytes());
        let events = Arc::new(events);
        let data = ResponseData {
            xml: &xml,
            events: &events,
            value: &value,
        };

        let cache = ResponseCache::builder(google::registry())
            .policy(
                CachePolicy::new()
                    .with_default(OperationPolicy::cacheable(Duration::from_secs(600))),
            )
            .adaptive(Arc::new(AdaptivePolicy::new()))
            .build();

        // Warm-up sweep: distinct keys drive insert-time exploration.
        for k in 0..24 {
            let warm = request.clone().with_param("warm", k);
            cache.insert(URL, &warm, data);
            for _ in 0..8 {
                std::hint::black_box(cache.lookup(URL, &warm, &descriptor.return_type));
            }
        }

        // The hot key: first insert records the exploited selection,
        // then hits trigger convert-on-hit if a cheaper form exists.
        let first = cache
            .insert(URL, request, data)
            .expect("hot insert succeeds");
        let before = cache.stats();
        for _ in 0..500 {
            std::hint::black_box(cache.lookup(URL, request, &descriptor.return_type));
        }
        let t = Instant::now();
        let iterations = 500;
        for _ in 0..iterations {
            std::hint::black_box(cache.lookup(URL, request, &descriptor.return_type));
        }
        let per_op = t.elapsed() / iterations;
        let after = cache.stats();

        // The form actually answering the hot key = the biggest mover
        // of the per-representation hit counters over the hot phase.
        let serving = ValueRepresentation::ALL_EXTENDED
            .into_iter()
            .max_by_key(|r| after.hits_for(*r).saturating_sub(before.hits_for(*r)))
            .expect("some form served");
        let converted: Vec<&str> = ValueRepresentation::ALL_EXTENDED
            .into_iter()
            .filter(|r| after.conversions_for(*r) > before.conversions_for(*r))
            .map(|r| r.label())
            .collect();
        println!(
            "{:<22} {:<18} {:<18} {:<18} {:<20}",
            op,
            first.label(),
            serving.label(),
            if converted.is_empty() {
                "-".to_string()
            } else {
                converted.join(",")
            },
            format!("{per_op:?}")
        );
    }
    println!("\n(the adaptive cache needs no per-type rules: it explores each");
    println!(" applicable form, scores build/retrieve cost against the observed");
    println!(" hit rate, and converts hot entries to the cheapest form on hit)");
    Ok(())
}

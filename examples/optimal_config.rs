//! The §6 "optimal configuration": the middleware classifies each
//! response object at run time and picks the best applicable cache-value
//! representation, without any administrator configuration.
//!
//! ```text
//! cargo run --release --example optimal_config
//! ```

use std::time::Instant;
use wsrcache::cache::repr::StoredResponse;
use wsrcache::cache::{
    FastestSelector, PaperSelector, RepresentationSelector, ValueRepresentation,
};
use wsrcache::services::dispatch::SoapService;
use wsrcache::services::google::{self, GoogleService};
use wsrcache::soap::deserializer::read_response_xml_recording;
use wsrcache::soap::serializer::serialize_response;
use wsrcache::soap::RpcRequest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = GoogleService::new();
    let registry = google::registry();
    let requests = vec![
        (
            "doSpellingSuggestion",
            RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
                .with_param("key", "k")
                .with_param("phrase", "optmal confguration"),
        ),
        (
            "doGetCachedPage",
            RpcRequest::new(google::NAMESPACE, "doGetCachedPage")
                .with_param("key", "k")
                .with_param("url", "http://example.test/"),
        ),
        (
            "doGoogleSearch",
            RpcRequest::new(google::NAMESPACE, "doGoogleSearch")
                .with_param("key", "k")
                .with_param("q", "selector demo")
                .with_param("start", 0)
                .with_param("maxResults", 10)
                .with_param("filter", true)
                .with_param("restrict", "")
                .with_param("safeSearch", false)
                .with_param("lr", "")
                .with_param("ie", "utf-8")
                .with_param("oe", "utf-8"),
        ),
    ];

    println!(
        "{:<22} {:<22} {:<22} {:<20}",
        "operation", "paper selector (§6)", "fastest selector", "retrieval time"
    );
    for (op, request) in requests {
        let value = service.call(&request)?;
        let paper_choice = PaperSelector.select(&value, &registry, false);
        let fastest_choice = FastestSelector.select(&value, &registry, false);

        // Materialize the fastest choice and time one retrieval.
        let descriptor = google::operations()
            .into_iter()
            .find(|o| o.name == op)
            .expect("known operation");
        let xml = serialize_response(google::NAMESPACE, op, "return", &value, &registry)?;
        let (_, events) = read_response_xml_recording(&xml, &descriptor.return_type, &registry)?;
        let xml: std::sync::Arc<[u8]> = std::sync::Arc::from(xml.into_bytes());
        let events = std::sync::Arc::new(events);
        let stored = StoredResponse::build(
            fastest_choice,
            wsrcache::cache::repr::MissArtifacts {
                xml: &xml,
                events: &events,
                value: &value,
            },
            &registry,
        )?;
        let t = Instant::now();
        let iterations = 1000;
        for _ in 0..iterations {
            std::hint::black_box(stored.retrieve(&descriptor.return_type, &registry)?);
        }
        let per_op = t.elapsed() / iterations;
        println!(
            "{:<22} {:<22} {:<22} {:<20}",
            op,
            paper_choice.label(),
            fastest_choice.label(),
            format!("{per_op:?}")
        );
    }

    println!("\nrules applied (paper §6):");
    println!(
        "  a) immutable types            -> {}",
        ValueRepresentation::PassByReference.label()
    );
    println!(
        "  b) bean/array types           -> {}",
        ValueRepresentation::ReflectionCopy.label()
    );
    println!(
        "  c) serializable types         -> {}",
        ValueRepresentation::Serialization.label()
    );
    println!(
        "  d) everything else            -> {}",
        ValueRepresentation::SaxEvents.label()
    );
    println!("(the FastestSelector additionally prefers the generated clone when present)");
    Ok(())
}

//! The paper's §5.2 portal scenario in miniature: a portal site backed by
//! the dummy Google service through the caching middleware, stressed by
//! the closed-loop load simulator at several cache-hit ratios.
//!
//! ```text
//! cargo run --release --example portal_site
//! ```

use wsrcache::cache::ValueRepresentation;
use wsrcache::portal::scenario::{run_portal_scenario, ScenarioConfig, TransportMode};

fn main() {
    let representations = [
        ValueRepresentation::XmlMessage,
        ValueRepresentation::SaxEvents,
        ValueRepresentation::CloneCopy,
    ];
    let ratios = [0.0, 0.5, 1.0];

    println!("portal scenario: 2 workers, 600 requests per point (in-process)\n");
    println!(
        "{:<22} {:>10} {:>14} {:>16} {:>10}",
        "representation", "hit ratio", "throughput", "mean response", "backend"
    );
    for repr in representations {
        for ratio in ratios {
            let result = run_portal_scenario(&ScenarioConfig {
                representation: repr,
                hit_ratio: ratio,
                concurrency: 2,
                requests: 600,
                transport: TransportMode::InProcess,
                backend_latency: std::time::Duration::ZERO,
            });
            println!(
                "{:<22} {:>9.0}% {:>11.0}/s {:>13.3} ms {:>10}",
                repr.label(),
                ratio * 100.0,
                result.load.throughput_rps,
                result.load.mean_response.as_secs_f64() * 1e3,
                result.backend_requests,
            );
        }
        println!();
    }
    println!("At 100% hit ratio the back-end sees only the priming requests;");
    println!("application-object caching shows the largest gain, as in Figure 3/4.");
}

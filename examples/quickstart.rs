//! Quickstart: stand up the dummy Google Web service over real TCP,
//! attach the caching client middleware, and watch the second identical
//! call skip the network entirely.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};
use wsrcache::cache::{KeyStrategy, ResponseCache};
use wsrcache::client::ServiceClient;
use wsrcache::http::{Server, TcpTransport, Url};
use wsrcache::model::Value;
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The back-end: a SOAP server hosting the dummy Google service.
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let server = Server::bind("127.0.0.1:0", Arc::new(dispatcher))?;
    println!(
        "dummy Google service listening on 127.0.0.1:{}",
        server.port()
    );

    // 2. The client middleware with a transparent response cache.
    //    The §6 "optimal configuration" selector is the default: it picks
    //    the best representation per response object at run time.
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(google::default_policy())
            .key_strategy(KeyStrategy::ToString)
            .build(),
    );
    let client = ServiceClient::builder(
        Url::new("127.0.0.1", server.port(), google::PATH),
        Arc::new(TcpTransport::new()),
    )
    .registry(google::registry())
    .operations(google::operations())
    .cache(cache.clone())
    .build();

    // 3. Call the service. The application code is identical with or
    //    without the cache (paper §3.2: no changes to the application).
    let request = RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
        .with_param("key", "demo-key")
        .with_param("phrase", "distrubted web servces cahing");

    let t0 = Instant::now();
    let (first, d1) = client.invoke(&request)?;
    let miss_time = t0.elapsed();
    println!("\nfirst call  ({d1:?}, {miss_time:?}):");
    println!(
        "  suggestion: {:?}",
        first.as_value().as_str().unwrap_or("?")
    );

    let t1 = Instant::now();
    let (second, d2) = client.invoke(&request)?;
    let hit_time = t1.elapsed();
    println!("second call ({d2:?}, {hit_time:?}):");
    println!(
        "  suggestion: {:?}",
        second.as_value().as_str().unwrap_or("?")
    );

    assert_eq!(first.as_value(), second.as_value());
    assert_eq!(
        server.requests_served(),
        1,
        "the hit never reached the server"
    );

    // 4. A heavier operation: the large-and-complex GoogleSearch result.
    let search = RpcRequest::new(google::NAMESPACE, "doGoogleSearch")
        .with_param("key", "demo-key")
        .with_param("q", "response caching")
        .with_param("start", 0)
        .with_param("maxResults", 10)
        .with_param("filter", true)
        .with_param("restrict", "")
        .with_param("safeSearch", false)
        .with_param("lr", "")
        .with_param("ie", "utf-8")
        .with_param("oe", "utf-8");
    let (result, _) = client.invoke(&search)?;
    let elements = result
        .as_value()
        .as_struct()
        .and_then(|s| s.get("resultElements"))
        .and_then(Value::as_array)
        .map(<[Value]>::len)
        .unwrap_or(0);
    println!("\ndoGoogleSearch returned {elements} results");
    client.invoke(&search)?;

    let stats = cache.stats();
    println!(
        "\ncache stats: {} hits, {} misses ({}% hit ratio), {} bytes held",
        stats.hits,
        stats.misses,
        (stats.hit_ratio() * 100.0) as u32,
        cache.bytes(),
    );
    println!(
        "total requests that reached the server: {}",
        server.requests_served()
    );
    println!("stats as JSON: {}", stats.to_json());

    // Cached entries expire after the per-operation TTL (1h by default
    // for Google operations per §3.2) — long enough for this demo.
    let _ = Duration::from_secs(3600);
    Ok(())
}

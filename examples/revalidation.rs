//! The §3.2 HTTP consistency mechanism applied to the response cache:
//! entries past their TTL are *revalidated* with `If-Modified-Since`
//! instead of being re-fetched; the server's `304 Not Modified` renews
//! them without re-transferring or re-deserializing anything.
//!
//! ```text
//! cargo run --example revalidation
//! ```

use std::sync::Arc;
use std::time::{Duration, SystemTime};
use wsrcache::cache::clock::ManualClock;
use wsrcache::cache::{CachePolicy, OperationPolicy, ResponseCache};
use wsrcache::client::ServiceClient;
use wsrcache::http::{Server, TcpTransport, Url};
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ttl = Duration::from_secs(60);
    let epoch = SystemTime::now();
    // The dispatcher stamps Last-Modified / Cache-Control and answers
    // conditional requests with 304 while its data is unchanged.
    let dispatcher = Arc::new(
        SoapDispatcher::new()
            .mount(google::PATH, Arc::new(GoogleService::new()))
            .with_validation(epoch, ttl),
    );
    let server = Server::bind("127.0.0.1:0", dispatcher.clone())?;

    // A manual clock lets the demo "wait" an hour instantly.
    let clock = ManualClock::new();
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(CachePolicy::new().with_default(OperationPolicy::cacheable(ttl)))
            .clock(clock.handle())
            .build(),
    );
    let client = ServiceClient::builder(
        Url::new("127.0.0.1", server.port(), google::PATH),
        Arc::new(TcpTransport::new()),
    )
    .registry(google::registry())
    .operations(google::operations())
    .cache(cache.clone())
    .build();

    let request = RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
        .with_param("key", "k")
        .with_param("phrase", "revalidaton demo");

    let (_, d) = client.invoke(&request)?;
    println!(
        "t=0s      first call            -> {d:?} (full exchange, entry stored with validator)"
    );

    let (_, d) = client.invoke(&request)?;
    println!("t=0s      repeat                -> {d:?} (no network)");

    clock.advance_millis(ttl.as_millis() as u64 + 1);
    let (_, d) = client.invoke(&request)?;
    println!("t=61s     TTL expired, repeat   -> {d:?} (conditional request, server said 304)");

    clock.advance_millis(ttl.as_millis() as u64 + 1);
    dispatcher.touch(SystemTime::now() + Duration::from_secs(1));
    let (_, d) = client.invoke(&request)?;
    println!(
        "t=122s    backend data changed  -> {d:?} (304 refused, full response replaced entry)"
    );

    let stats = cache.stats();
    println!(
        "\ncache stats: {} hits, {} revalidations, {} inserts; server handled {} requests total",
        stats.hits,
        stats.revalidated,
        stats.inserts,
        server.requests_served()
    );
    println!("stats as JSON: {}", stats.to_json());
    Ok(())
}

//! The WSDL pipeline: author the GoogleSearch WSDL in the document model,
//! emit it as XML, parse it back, compile it into runtime artifacts, and
//! generate Rust stub source — then use the compiled artifacts to make a
//! real call.
//!
//! ```text
//! cargo run --example wsdl_compiler
//! ```

use std::sync::Arc;
use wsrcache::client::ServiceClient;
use wsrcache::http::{InProcTransport, Url};
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;
use wsrcache::wsdl::{codegen, compile, parser, writer, CompileOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author + emit.
    let defs = google::wsdl("http://google.test/soap/google");
    let xml = writer::write_wsdl(&defs)?;
    println!("emitted GoogleSearch.wsdl: {} bytes", xml.len());
    println!("--- first lines ---");
    for line in xml.lines().take(8) {
        println!("{line}");
    }

    // 2. Parse it back (identity) and compile.
    let parsed = parser::parse_wsdl(&xml)?;
    assert_eq!(parsed, defs, "emit/parse round-trip is the identity");
    let compiled = compile(&parsed, CompileOptions::default())?;
    println!(
        "\ncompiled: namespace {}, {} operations, {} types",
        compiled.namespace,
        compiled.operations.len(),
        compiled.registry.len()
    );
    for op in &compiled.operations {
        println!(
            "  {}({}) -> {}",
            op.name,
            op.params
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            op.return_type
        );
    }

    // 3. Generate Rust stub source (what a build script would write).
    let stub = codegen::generate_rust_stub(&parsed);
    println!(
        "\ngenerated {} lines of Rust stub source; excerpt:",
        stub.lines().count()
    );
    for line in stub
        .lines()
        .filter(|l| l.starts_with("pub struct") || l.contains("pub fn"))
    {
        println!("  {line}");
    }

    // 4. Use the *compiled* artifacts (not the hand-written ones) to call
    //    the dummy service.
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let client = ServiceClient::builder(
        Url::new("google.test", 80, google::PATH),
        Arc::new(InProcTransport::new(Arc::new(dispatcher))),
    )
    .registry(compiled.registry.clone())
    .operations(compiled.operations.clone())
    .build();
    let (result, _) = client.invoke(
        &RpcRequest::new(&compiled.namespace, "doSpellingSuggestion")
            .with_param("key", "k")
            .with_param("phrase", "wsdl compilr"),
    )?;
    println!(
        "\ncall through compiled artifacts: {:?}",
        result.as_value().as_str().unwrap_or("?")
    );
    Ok(())
}

#!/usr/bin/env bash
# Full offline verification: release build, workspace tests, formatting.
# The workspace has no external dependencies, so this runs without
# network access; CARGO_NET_OFFLINE makes that explicit.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q --workspace
cargo fmt --check

echo "verify: build, tests, and formatting all clean"

#!/usr/bin/env bash
# Full offline verification: release build, workspace tests, formatting.
# The workspace has no external dependencies, so this runs without
# network access; CARGO_NET_OFFLINE makes that explicit.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q --workspace
# Deterministic store/hit-path benchmark smoke: fixed op counts under a
# manual clock; validates the BENCH_store JSON schema, never timings.
cargo run -q --release -p wsrc-bench --bin bench_store -- --smoke \
  --out target/bench_store_smoke.json
# Zero-copy pipeline benchmark smoke: few iterations, validates the
# BENCH_pipeline JSON schema (wsrc-bench-pipeline/v1), never timings.
cargo run -q --release -p wsrc-bench --bin bench_pipeline -- --smoke \
  --out target/bench_pipeline_smoke.json
# End-to-end network benchmark smoke: real TCP round trips with fake-
# clock timing; validates the BENCH_e2e JSON schema (wsrc-bench-e2e/v1),
# never timings.
cargo run -q --release -p wsrc-bench --bin bench_e2e -- --smoke \
  --out target/bench_e2e_smoke.json
# Adaptive-vs-fixed representation benchmark smoke: fixed op counts
# under a manual clock; validates the BENCH_adaptive JSON schema
# (wsrc-bench-adaptive/v1), never timings or the win verdict.
cargo run -q --release -p wsrc-bench --bin bench_adaptive -- --smoke \
  --out target/bench_adaptive_smoke.json
# End-to-end tracing smoke: a traced miss+hit over real TCP under a
# fake clock; asserts every pipeline stage appears in the /trace span
# tree and the root's direct children cover >=90% of its wall time.
cargo run -q --release -p wsrc-bench --bin trace_smoke
cargo fmt --check
# Workspace invariants (R1-R8): representation safety, atomics audit,
# clock discipline, panic freedom, lock ordering, zero-copy pipeline,
# bounded spawning, trace-root discipline. See crates/analyze.
cargo run -q --release -p wsrc-analyze -- --deny crates src

echo "verify: build, tests, formatting, and analysis all clean"

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Facade crate re-exporting the whole wsrcache workspace.
//!
//! See the [README](https://example.org/wsrcache) for the project overview.

pub use wsrc_cache as cache;
pub use wsrc_client as client;
pub use wsrc_http as http;
pub use wsrc_model as model;
pub use wsrc_obs as obs;
pub use wsrc_portal as portal;
pub use wsrc_services as services;
pub use wsrc_soap as soap;
pub use wsrc_wsdl as wsdl;
pub use wsrc_xml as xml;

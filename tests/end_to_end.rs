//! Full-stack integration tests: SOAP client ↔ server over real TCP,
//! with and without the response cache.

use std::sync::Arc;
use std::time::Duration;
use wsrcache::cache::clock::ManualClock;
use wsrcache::cache::{KeyStrategy, ResponseCache};
use wsrcache::client::{Disposition, ServiceClient};
use wsrcache::http::{Server, TcpTransport, Url};
use wsrcache::model::Value;
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

struct Stack {
    server: Server,
    client: ServiceClient,
    clock: ManualClock,
}

fn stack() -> Stack {
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let server = Server::bind("127.0.0.1:0", Arc::new(dispatcher)).expect("bind");
    let clock = ManualClock::new();
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(google::default_policy())
            .key_strategy(KeyStrategy::Auto)
            .clock(clock.handle())
            .build(),
    );
    let client = ServiceClient::builder(
        Url::new("127.0.0.1", server.port(), google::PATH),
        Arc::new(TcpTransport::new()),
    )
    .registry(google::registry())
    .operations(google::operations())
    .cache(cache)
    .build();
    Stack {
        server,
        client,
        clock,
    }
}

fn spelling(phrase: &str) -> RpcRequest {
    RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
        .with_param("key", "k")
        .with_param("phrase", phrase)
}

fn search(q: &str) -> RpcRequest {
    RpcRequest::new(google::NAMESPACE, "doGoogleSearch")
        .with_param("key", "k")
        .with_param("q", q)
        .with_param("start", 0)
        .with_param("maxResults", 10)
        .with_param("filter", true)
        .with_param("restrict", "")
        .with_param("safeSearch", false)
        .with_param("lr", "")
        .with_param("ie", "utf-8")
        .with_param("oe", "utf-8")
}

#[test]
fn roundtrip_over_tcp_and_cache_hit_avoids_network() {
    let s = stack();
    let (v1, d1) = s.client.invoke(&spelling("helo")).expect("first call");
    assert_eq!(d1, Disposition::CacheMiss);
    assert!(v1.as_value().as_str().is_some());
    assert_eq!(s.server.requests_served(), 1);

    let (v2, d2) = s.client.invoke(&spelling("helo")).expect("second call");
    assert_eq!(d2, Disposition::CacheHit);
    assert_eq!(v1.as_value(), v2.as_value());
    assert_eq!(
        s.server.requests_served(),
        1,
        "hit must not reach the server"
    );
}

#[test]
fn all_three_google_operations_roundtrip_over_tcp() {
    let s = stack();
    let page = RpcRequest::new(google::NAMESPACE, "doGetCachedPage")
        .with_param("key", "k")
        .with_param("url", "http://x.test/");
    let (v, _) = s.client.invoke(&page).expect("cached page");
    assert!(v.as_value().as_bytes().expect("byte array").len() > 3000);

    let (v, _) = s.client.invoke(&search("integration")).expect("search");
    let result = v.as_value().as_struct().expect("struct");
    assert_eq!(result.type_name(), "GoogleSearchResult");
    assert_eq!(
        result
            .get("resultElements")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(10)
    );

    let (v, _) = s.client.invoke(&spelling("abc")).expect("spelling");
    assert!(v.as_value().as_str().is_some());
}

#[test]
fn ttl_expiry_refetches_from_the_server() {
    let s = stack();
    s.client.invoke(&search("ttl-test")).expect("miss");
    s.client.invoke(&search("ttl-test")).expect("hit");
    assert_eq!(s.server.requests_served(), 1);
    // The Google policy TTL is one hour.
    s.clock.advance_millis(3_600_001);
    let (_, d) = s.client.invoke(&search("ttl-test")).expect("refetch");
    assert_eq!(d, Disposition::CacheMiss);
    assert_eq!(s.server.requests_served(), 2);
}

#[test]
fn unknown_operation_faults_cleanly() {
    let s = stack();
    let bad = RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion").with_param("key", "k");
    // missing 'phrase' parameter → client-side validation error
    assert!(s.client.invoke(&bad).is_err());
    let unknown = RpcRequest::new(google::NAMESPACE, "doTeleport");
    assert!(s.client.invoke(&unknown).is_err());
}

#[test]
fn concurrent_clients_share_one_cache_correctly() {
    let s = Arc::new(stack());
    let mut handles = Vec::new();
    for t in 0..8 {
        let s = s.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                let q = format!("query-{}", (t * 25 + i) % 10);
                let (v, _) = s.client.invoke(&search(&q)).expect("search");
                // Every thread sees a complete, consistent result.
                assert_eq!(
                    v.as_value()
                        .as_struct()
                        .unwrap()
                        .get("searchQuery")
                        .and_then(Value::as_str),
                    Some(q.as_str())
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    // Only 10 distinct queries existed; the server saw at most a few
    // duplicates from racing misses, far fewer than the 200 calls.
    assert!(
        s.server.requests_served() < 60,
        "server saw {} requests for 10 distinct queries",
        s.server.requests_served()
    );
    let stats = s.client.cache().unwrap().stats();
    assert!(stats.hits >= 140, "expected mostly hits, got {stats:?}");
}

#[test]
fn cache_is_transparent_to_response_content() {
    // Byte-identical application data from hit and miss paths.
    let s = stack();
    let (miss, _) = s.client.invoke(&search("transparency")).expect("miss");
    let (hit, _) = s.client.invoke(&search("transparency")).expect("hit");
    assert_eq!(miss.as_value(), hit.as_value());
}

#[test]
fn server_shutdown_surfaces_as_client_error() {
    let mut s = stack();
    s.client.invoke(&spelling("x")).expect("server up");
    let port_dead = {
        s.server.shutdown();
        true
    };
    assert!(port_dead);
    // Cached entry still answers…
    let (_, d) = s
        .client
        .invoke(&spelling("x"))
        .expect("cache still answers");
    assert_eq!(d, Disposition::CacheHit);
    // …but a new request must fail.
    assert!(s.client.invoke(&spelling("brand new")).is_err());
    let _ = Duration::ZERO;
}

//! Failure injection across the stack: garbled responses, connections
//! dying mid-exchange, SOAP faults, capacity pressure, and repeated-
//! request floods (the paper's DoS absorption remark in §3.2).

use std::io::Write;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wsrcache::cache::store::Capacity;
use wsrcache::cache::{KeyStrategy, ResponseCache};
use wsrcache::client::{ClientError, ServiceClient};
use wsrcache::http::{Handler, InProcTransport, Request, Response, Server, TcpTransport, Url};
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

fn spelling(phrase: &str) -> RpcRequest {
    RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
        .with_param("key", "k")
        .with_param("phrase", phrase)
}

fn caching_client(transport: Arc<dyn wsrcache::http::Transport>, url: Url) -> ServiceClient {
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(google::default_policy())
            .build(),
    );
    ServiceClient::builder(url, transport)
        .registry(google::registry())
        .operations(google::operations())
        .cache(cache)
        .build()
}

#[test]
fn garbage_response_bodies_error_and_are_never_cached() {
    let calls = Arc::new(AtomicU64::new(0));
    let c2 = calls.clone();
    let garbage: Arc<dyn Handler> = Arc::new(move |_req: &Request| {
        c2.fetch_add(1, Ordering::SeqCst);
        Response::ok("text/xml", b"this is not xml <<<".to_vec())
    });
    let client = caching_client(
        Arc::new(InProcTransport::new(garbage)),
        Url::new("g.test", 80, google::PATH),
    );
    for _ in 0..3 {
        assert!(matches!(
            client.invoke(&spelling("x")),
            Err(ClientError::Soap(_))
        ));
    }
    // Every attempt reached the server: the error was never cached.
    assert_eq!(calls.load(Ordering::SeqCst), 3);
    assert_eq!(client.cache().unwrap().len(), 0);
}

#[test]
fn truncated_envelope_is_rejected() {
    let truncated: Arc<dyn Handler> = Arc::new(|_req: &Request| {
        // Valid XML but not a complete SOAP response.
        Response::ok(
            "text/xml",
            b"<soapenv:Envelope xmlns:soapenv=\"x\"/>".to_vec(),
        )
    });
    let client = caching_client(
        Arc::new(InProcTransport::new(truncated)),
        Url::new("g.test", 80, google::PATH),
    );
    assert!(client.invoke(&spelling("x")).is_err());
}

#[test]
fn connection_reset_mid_response_is_an_io_error() {
    // A raw TCP server that reads the request and slams the connection
    // after half a response line.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        for stream in listener.incoming().take(2) {
            let Ok(mut stream) = stream else { continue };
            let mut buf = [0u8; 4096];
            use std::io::Read;
            let _ = stream.read(&mut buf);
            let _ = stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 999");
            // dropped here → RST/FIN mid-headers
        }
    });
    let client = caching_client(
        Arc::new(TcpTransport::with_timeout(Some(Duration::from_secs(2)))),
        Url::new("127.0.0.1", port, google::PATH),
    );
    let err = client.invoke(&spelling("x")).expect_err("must fail");
    assert!(matches!(err, ClientError::Http(_)), "got {err}");
}

#[test]
fn capacity_pressure_evicts_but_never_corrupts() {
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(google::default_policy())
            .key_strategy(KeyStrategy::ToString)
            .capacity(Capacity {
                max_entries: 4,
                max_bytes: usize::MAX,
            })
            .build(),
    );
    let client = ServiceClient::builder(
        Url::new("g.test", 80, google::PATH),
        Arc::new(InProcTransport::new(Arc::new(dispatcher))),
    )
    .registry(google::registry())
    .operations(google::operations())
    .cache(cache.clone())
    .build();
    // 20 distinct requests through a 4-entry cache.
    for round in 0..3 {
        for i in 0..20 {
            let v = client
                .invoke_owned(&spelling(&format!("q{i}")))
                .expect("call");
            let expected = client
                .invoke_owned(&spelling(&format!("q{i}")))
                .expect("repeat");
            assert_eq!(v, expected, "round {round}, i {i}");
        }
    }
    assert!(cache.len() <= 4, "cache holds {} entries", cache.len());
    assert!(cache.stats().evictions > 0);
}

#[test]
fn repeated_identical_requests_are_absorbed_by_the_cache() {
    // Paper §3.2: "response caching … is effective against denial of
    // service (DoS) attacks that send the same requests repeatedly."
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let server = Server::bind("127.0.0.1:0", Arc::new(dispatcher)).expect("bind");
    let client = Arc::new(caching_client(
        Arc::new(TcpTransport::new()),
        Url::new("127.0.0.1", server.port(), google::PATH),
    ));
    let mut workers = Vec::new();
    for _ in 0..8 {
        let client = client.clone();
        workers.push(std::thread::spawn(move || {
            for _ in 0..50 {
                client
                    .invoke(&spelling("the same request"))
                    .expect("absorbed");
            }
        }));
    }
    for w in workers {
        w.join().expect("worker");
    }
    // 400 identical requests; the backend saw only the racing misses.
    assert!(
        server.requests_served() <= 8,
        "backend absorbed only {} of 400 requests",
        server.requests_served()
    );
}

#[test]
fn coalescing_absorbs_the_flood_completely() {
    // With single-flight enabled even the racing first burst collapses
    // to one back-end exchange.
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let server = Server::bind("127.0.0.1:0", Arc::new(dispatcher)).expect("bind");
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(google::default_policy())
            .build(),
    );
    let client = Arc::new(
        ServiceClient::builder(
            Url::new("127.0.0.1", server.port(), google::PATH),
            Arc::new(TcpTransport::new()),
        )
        .registry(google::registry())
        .operations(google::operations())
        .cache(cache)
        .coalesce_misses(true)
        .build(),
    );
    let mut workers = Vec::new();
    for _ in 0..8 {
        let client = client.clone();
        workers.push(std::thread::spawn(move || {
            for _ in 0..50 {
                client
                    .as_ref()
                    .invoke(&spelling("the same request"))
                    .expect("absorbed");
            }
        }));
    }
    for w in workers {
        w.join().expect("worker");
    }
    assert_eq!(
        server.requests_served(),
        1,
        "single-flight should collapse the flood to one exchange"
    );
}

#[test]
fn soap_fault_from_service_reaches_the_application() {
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let client = caching_client(
        Arc::new(InProcTransport::new(Arc::new(dispatcher))),
        Url::new("g.test", 80, google::PATH),
    );
    // Missing parameter → service-side client fault.
    let bad = RpcRequest::new(google::NAMESPACE, "doGetCachedPage").with_param("key", "k");
    let err = client.invoke(&bad).expect_err("must fault");
    // Either local validation or remote fault is acceptable, but it must
    // be an error, and nothing may be cached.
    let _ = err;
    assert_eq!(client.cache().unwrap().len(), 0);
}

#[test]
fn http_404_from_wrong_path_is_a_status_error() {
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let server = Server::bind("127.0.0.1:0", Arc::new(dispatcher)).expect("bind");
    let client = caching_client(
        Arc::new(TcpTransport::new()),
        Url::new("127.0.0.1", server.port(), "/soap/wrong-path"),
    );
    let err = client.invoke(&spelling("x")).expect_err("404 expected");
    match err {
        ClientError::Http(wsrcache::http::HttpError::Status { code, .. }) => assert_eq!(code, 404),
        other => panic!("expected 404 status error, got {other}"),
    }
}

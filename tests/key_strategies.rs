//! The three key-generation strategies (Table 2) through the full
//! middleware: each must hit on equivalent requests and miss on distinct
//! ones, and the `Auto` strategy must pick a working representation for
//! every operation.

use std::sync::Arc;
use wsrcache::cache::{KeyStrategy, ResponseCache};
use wsrcache::client::{Disposition, ServiceClient};
use wsrcache::http::{InProcTransport, Url};
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

fn client_with(strategy: KeyStrategy) -> (ServiceClient, Arc<InProcTransport>) {
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let transport = Arc::new(InProcTransport::new(Arc::new(dispatcher)));
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(google::default_policy())
            .key_strategy(strategy)
            .build(),
    );
    let client = ServiceClient::builder(Url::new("g.test", 80, google::PATH), transport.clone())
        .registry(google::registry())
        .operations(google::operations())
        .cache(cache)
        .build();
    (client, transport)
}

fn search(q: &str, max: i32, safe: bool) -> RpcRequest {
    RpcRequest::new(google::NAMESPACE, "doGoogleSearch")
        .with_param("key", "k")
        .with_param("q", q)
        .with_param("start", 0)
        .with_param("maxResults", max)
        .with_param("filter", true)
        .with_param("restrict", "")
        .with_param("safeSearch", safe)
        .with_param("lr", "")
        .with_param("ie", "utf-8")
        .with_param("oe", "utf-8")
}

#[test]
fn every_strategy_hits_on_equivalent_requests() {
    for strategy in [
        KeyStrategy::XmlMessage,
        KeyStrategy::Serialization,
        KeyStrategy::ToString,
        KeyStrategy::Auto,
    ] {
        let (client, transport) = client_with(strategy);
        let req = search("equivalent", 10, false);
        let (a, d1) = client.invoke(&req).expect("miss");
        assert_eq!(d1, Disposition::CacheMiss, "{strategy:?}");
        let (b, d2) = client.invoke(&req).expect("hit");
        assert_eq!(d2, Disposition::CacheHit, "{strategy:?}");
        assert_eq!(a.as_value(), b.as_value(), "{strategy:?}");
        assert_eq!(transport.requests_served(), 1, "{strategy:?}");
    }
}

#[test]
fn every_strategy_distinguishes_any_changed_parameter() {
    for strategy in [
        KeyStrategy::XmlMessage,
        KeyStrategy::Serialization,
        KeyStrategy::ToString,
    ] {
        let (client, transport) = client_with(strategy);
        client.invoke(&search("base", 10, false)).expect("warm");
        // Changing any single parameter — string, int or boolean — must miss.
        for variant in [
            search("other", 10, false),
            search("base", 5, false),
            search("base", 10, true),
        ] {
            let (_, d) = client.invoke(&variant).expect("call");
            assert_eq!(
                d,
                Disposition::CacheMiss,
                "{strategy:?} variant {variant:?}"
            );
        }
        assert_eq!(transport.requests_served(), 4, "{strategy:?}");
    }
}

#[test]
fn strategies_do_not_share_entries_across_operations() {
    // Same parameter values under two operations must never collide.
    let (client, transport) = client_with(KeyStrategy::ToString);
    let spell = RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
        .with_param("key", "k")
        .with_param("phrase", "identical");
    let page = RpcRequest::new(google::NAMESPACE, "doGetCachedPage")
        .with_param("key", "k")
        .with_param("url", "identical");
    client.invoke(&spell).expect("spell miss");
    let (_, d) = client.invoke(&page).expect("page call");
    assert_eq!(
        d,
        Disposition::CacheMiss,
        "different operations must not collide"
    );
    assert_eq!(transport.requests_served(), 2);
}

#[test]
fn hit_ratio_accumulates_identically_across_strategies() {
    // 4 distinct queries, each asked 3 times: 4 misses, 8 hits under any
    // strategy — keys must be stable and injective at the middleware
    // level, not just in unit tests.
    for strategy in [
        KeyStrategy::XmlMessage,
        KeyStrategy::Serialization,
        KeyStrategy::ToString,
    ] {
        let (client, _t) = client_with(strategy);
        for round in 0..3 {
            for q in ["a", "b", "c", "d"] {
                let (_, d) = client.invoke(&search(q, 10, false)).expect("call");
                let expected = if round == 0 {
                    Disposition::CacheMiss
                } else {
                    Disposition::CacheHit
                };
                assert_eq!(d, expected, "{strategy:?} round {round} q {q}");
            }
        }
        let stats = client.cache().unwrap().stats();
        assert_eq!((stats.misses, stats.hits), (4, 8), "{strategy:?}");
    }
}

//! End-to-end observability: the portal stack (dummy Google backend →
//! SOAP dispatch → caching client middleware) recorded into a metrics
//! registry, exposed over `GET /metrics`.

use std::sync::Arc;
use std::time::Duration;
use wsrcache::cache::{FixedSelector, KeyStrategy, ResponseCache, ValueRepresentation};
use wsrcache::client::{Disposition, ServiceClient};
use wsrcache::http::{
    Handler, HttpClient, InProcTransport, MetricsRoute, Request, Response, Server, Url,
};
use wsrcache::obs::{ManualClock, MetricsRegistry};
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

fn portal_client(
    registry: &Arc<MetricsRegistry>,
    label: &str,
    repr: ValueRepresentation,
    clock: &ManualClock,
) -> ServiceClient {
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let transport = Arc::new(InProcTransport::new(Arc::new(dispatcher)));
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .cache_everything(Duration::from_secs(60))
            .key_strategy(KeyStrategy::ToString)
            .selector(FixedSelector(repr))
            .clock(clock.handle())
            .metrics(registry.clone())
            .metrics_label(label)
            .build(),
    );
    ServiceClient::builder(Url::new("g.test", 80, google::PATH), transport)
        .registry(google::registry())
        .operations(google::operations())
        .cache(cache)
        .build()
}

fn spelling(phrase: &str) -> RpcRequest {
    RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
        .with_param("key", "k")
        .with_param("phrase", phrase)
}

#[test]
fn per_representation_hit_counters_accumulate_end_to_end() {
    let registry = Arc::new(MetricsRegistry::new());
    let clock = ManualClock::new();
    let client = portal_client(&registry, "e2e", ValueRepresentation::DomTree, &clock);

    // 3 distinct queries, each asked 3 times: 3 misses, 6 hits.
    for _round in 0..3 {
        for phrase in ["alpha", "beta", "gamma"] {
            client.invoke(&spelling(phrase)).expect("call");
        }
    }

    let snap = registry.snapshot();
    let e2e = ("cache", "e2e");
    assert_eq!(
        snap.counter_value("wsrc_cache_hits_total", &[e2e, ("repr", "dom-tree")]),
        Some(6)
    );
    // Hits under any other representation stay zero.
    for repr in ValueRepresentation::ALL_EXTENDED {
        if repr != ValueRepresentation::DomTree {
            assert_eq!(
                snap.counter_value(
                    "wsrc_cache_hits_total",
                    &[e2e, ("repr", repr.metric_label())]
                ),
                Some(0),
                "{repr}"
            );
        }
    }
    assert_eq!(
        snap.counter_value("wsrc_cache_misses_total", &[e2e]),
        Some(3)
    );
    assert_eq!(
        snap.counter_value("wsrc_cache_inserts_total", &[e2e, ("repr", "dom-tree")]),
        Some(3)
    );
    // Every hit retrieved through the DOM-tree path, and each of the 9
    // lookups recorded a latency sample.
    let retrieve = snap
        .histogram("wsrc_cache_retrieve_seconds", &[e2e, ("repr", "dom-tree")])
        .expect("retrieve histogram");
    assert_eq!(retrieve.count, 6);
    let lookup = snap
        .histogram("wsrc_cache_stage_seconds", &[e2e, ("stage", "lookup")])
        .expect("lookup histogram");
    assert_eq!(lookup.count, 9);
}

#[test]
fn expired_lookups_count_as_expired_and_missed() {
    let registry = Arc::new(MetricsRegistry::new());
    let clock = ManualClock::new();
    let client = portal_client(&registry, "ttl", ValueRepresentation::SaxEvents, &clock);

    let (_, d1) = client.invoke(&spelling("stale")).expect("prime");
    assert_eq!(d1, Disposition::CacheMiss);
    clock.advance_millis(61_000);
    let (_, d2) = client.invoke(&spelling("stale")).expect("refetch");
    assert_eq!(d2, Disposition::CacheMiss);

    let snap = registry.snapshot();
    let ttl = ("cache", "ttl");
    // The expired lookup shows up in BOTH counters: `expired` records
    // why the entry was unusable, `misses` records that the caller had
    // to perform the exchange.
    assert_eq!(
        snap.counter_value("wsrc_cache_expired_total", &[ttl]),
        Some(1)
    );
    assert_eq!(
        snap.counter_value("wsrc_cache_misses_total", &[ttl]),
        Some(2)
    );
    assert_eq!(
        snap.counter_value("wsrc_cache_hits_total", &[ttl, ("repr", "sax-events")]),
        Some(0)
    );
}

#[test]
fn metrics_endpoint_exposes_the_full_pipeline() {
    // The cache records into the process-wide registry here (the
    // default), because the XML/model/client stage histograms live
    // there; a unique label keeps this test's counters identifiable.
    let clock = ManualClock::new();
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let transport = Arc::new(InProcTransport::new(Arc::new(dispatcher)));
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .cache_everything(Duration::from_secs(60))
            .key_strategy(KeyStrategy::ToString)
            .selector(FixedSelector(ValueRepresentation::Serialization))
            .clock(clock.handle())
            .metrics_label("exposed")
            .build(),
    );
    let client = ServiceClient::builder(Url::new("g.test", 80, google::PATH), transport)
        .registry(google::registry())
        .operations(google::operations())
        .cache(cache.clone())
        .build();
    for _ in 0..2 {
        client.invoke(&spelling("prometheus")).expect("call");
    }

    let app: Arc<dyn Handler> =
        Arc::new(|_req: &Request| Response::ok("text/plain", b"portal".to_vec()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(MetricsRoute::with_registry(cache.metrics().clone(), app)),
    )
    .expect("bind");
    let body = HttpClient::new()
        .get(&Url::new("127.0.0.1", server.port(), "/metrics"))
        .expect("GET /metrics")
        .body_text()
        .expect("metrics body is utf-8")
        .to_string();

    // Per-representation hit/miss counters…
    assert!(
        body.contains("wsrc_cache_hits_total{cache=\"exposed\",repr=\"serialization\"} 1"),
        "{body}"
    );
    assert!(
        body.contains("wsrc_cache_misses_total{cache=\"exposed\"} 1"),
        "{body}"
    );
    // …and the parse/deserialize/copy stage histograms from the layers
    // below the cache (global registry; other tests may add samples, so
    // presence is asserted rather than exact counts).
    for metric in [
        "# TYPE wsrc_xml_parse_seconds histogram",
        "# TYPE wsrc_model_serialize_seconds histogram",
        "# TYPE wsrc_model_deserialize_seconds histogram",
        "wsrc_client_stage_seconds_bucket{stage=\"transport\"",
        "wsrc_cache_retrieve_seconds_bucket{cache=\"exposed\",repr=\"serialization\"",
    ] {
        assert!(body.contains(metric), "missing {metric} in:\n{body}");
    }
}

//! The §6 "optimal configuration" through the full middleware: the
//! default dynamic selector must pick the paper's representation for each
//! of the three Google responses, with no administrator configuration.

use std::sync::Arc;
use std::time::Duration;
use wsrcache::cache::{
    CachePolicy, OperationPolicy, PaperSelector, RepresentationSelector, ResponseCache,
    ValueRepresentation,
};
use wsrcache::client::ServiceClient;
use wsrcache::http::{InProcTransport, Url};
use wsrcache::services::dispatch::SoapService;
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

fn requests() -> Vec<(&'static str, RpcRequest, ValueRepresentation)> {
    vec![
        (
            "doSpellingSuggestion",
            RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
                .with_param("key", "k")
                .with_param("phrase", "optimal"),
            // a) immutable → pass by reference
            ValueRepresentation::PassByReference,
        ),
        (
            "doGetCachedPage",
            RpcRequest::new(google::NAMESPACE, "doGetCachedPage")
                .with_param("key", "k")
                .with_param("url", "http://opt.test/"),
            // b) array type (byte[]) → copy by reflection
            ValueRepresentation::ReflectionCopy,
        ),
        (
            "doGoogleSearch",
            RpcRequest::new(google::NAMESPACE, "doGoogleSearch")
                .with_param("key", "k")
                .with_param("q", "optimal configuration")
                .with_param("start", 0)
                .with_param("maxResults", 10)
                .with_param("filter", true)
                .with_param("restrict", "")
                .with_param("safeSearch", false)
                .with_param("lr", "")
                .with_param("ie", "utf-8")
                .with_param("oe", "utf-8"),
            // b) bean type → copy by reflection
            ValueRepresentation::ReflectionCopy,
        ),
    ]
}

#[test]
fn selector_classifies_live_responses_like_the_paper() {
    let service = GoogleService::new();
    let registry = google::registry();
    let selector = PaperSelector;
    for (op, request, expected) in requests() {
        let value = service.call(&request).expect("service answers");
        let chosen = selector.select(&value, &registry, false);
        assert_eq!(chosen, expected, "operation {op}");
    }
}

#[test]
fn default_middleware_applies_the_classification_end_to_end() {
    // Build a client with NO selector or representation configuration —
    // the default is the §6 dynamic classifier.
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(
                CachePolicy::new()
                    .with_default(OperationPolicy::cacheable(Duration::from_secs(60))),
            )
            .build(),
    );
    let client = ServiceClient::builder(
        Url::new("g.test", 80, google::PATH),
        Arc::new(InProcTransport::new(Arc::new(dispatcher))),
    )
    .registry(google::registry())
    .operations(google::operations())
    .cache(cache)
    .build();

    for (op, request, expected) in requests() {
        client.invoke(&request).expect("miss path");
        let (handle, _) = client.invoke(&request).expect("hit path");
        // Pass-by-reference manifests as a shared handle; the copies as
        // owned handles. That is the observable §6 behaviour.
        assert_eq!(
            handle.is_shared(),
            expected == ValueRepresentation::PassByReference,
            "operation {op}"
        );
    }
}

#[test]
fn read_only_assertion_upgrades_search_to_sharing() {
    // §4.2.4: the administrator may assert responses are read-only,
    // upgrading even mutable types to pass-by-reference.
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let policy = CachePolicy::new()
        .with_default(OperationPolicy::cacheable(Duration::from_secs(60)).with_read_only());
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(policy)
            .build(),
    );
    let client = ServiceClient::builder(
        Url::new("g.test", 80, google::PATH),
        Arc::new(InProcTransport::new(Arc::new(dispatcher))),
    )
    .registry(google::registry())
    .operations(google::operations())
    .cache(cache)
    .build();
    let (_, search, _) = requests().remove(2);
    client.invoke(&search).expect("miss");
    let (handle, _) = client.invoke(&search).expect("hit");
    assert!(
        handle.is_shared(),
        "read-only assertion should share the search result"
    );
}

//! Portal scenario integration: the Figure 3/4 machinery produces
//! sensible, paper-shaped results end-to-end.

use wsrcache::cache::ValueRepresentation;
use wsrcache::portal::scenario::{run_portal_scenario, ScenarioConfig, TransportMode};

fn config(repr: ValueRepresentation, ratio: f64, concurrency: usize) -> ScenarioConfig {
    ScenarioConfig {
        representation: repr,
        hit_ratio: ratio,
        concurrency,
        requests: 400,
        transport: TransportMode::InProcess,
        backend_latency: std::time::Duration::ZERO,
    }
}

#[test]
fn all_representations_serve_all_ratios_without_errors() {
    for repr in ValueRepresentation::ALL {
        for ratio in [0.0, 0.6, 1.0] {
            let result = run_portal_scenario(&config(repr, ratio, 3));
            assert_eq!(result.load.errors, 0, "{repr} at {ratio}");
            assert_eq!(result.load.completed, 400, "{repr} at {ratio}");
            assert!(
                (result.observed_hit_ratio - ratio).abs() < 0.05,
                "{repr}: target {ratio}, observed {}",
                result.observed_hit_ratio
            );
        }
    }
}

#[test]
fn higher_hit_ratio_reduces_backend_traffic_proportionally() {
    let r0 = run_portal_scenario(&config(ValueRepresentation::CloneCopy, 0.0, 1));
    let r50 = run_portal_scenario(&config(ValueRepresentation::CloneCopy, 0.5, 1));
    let r100 = run_portal_scenario(&config(ValueRepresentation::CloneCopy, 1.0, 1));
    assert!(r0.backend_requests >= 400);
    // 50%: about half the measured requests reach the backend (+priming).
    assert!(
        (150..=260).contains(&r50.backend_requests),
        "50% ratio sent {} to backend",
        r50.backend_requests
    );
    // 100%: only priming traffic.
    assert!(
        r100.backend_requests <= 16,
        "100% ratio sent {}",
        r100.backend_requests
    );
}

#[test]
fn object_caching_outperforms_xml_caching_at_full_hit_ratio() {
    // The core Figure 3 claim, asserted loosely enough to be robust on
    // shared CI hardware: at 100% hits, application-object caching must
    // be at least as fast as re-parsing cached XML messages — measured
    // via mean response time over the same request count.
    let xml = run_portal_scenario(&ScenarioConfig {
        requests: 1500,
        ..config(ValueRepresentation::XmlMessage, 1.0, 1)
    });
    let object = run_portal_scenario(&ScenarioConfig {
        requests: 1500,
        ..config(ValueRepresentation::CloneCopy, 1.0, 1)
    });
    assert!(
        object.load.mean_response <= xml.load.mean_response,
        "object caching ({:?}) should not be slower than XML caching ({:?})",
        object.load.mean_response,
        xml.load.mean_response
    );
}

#[test]
fn concurrent_figure4_configuration_is_stable() {
    let result = run_portal_scenario(&config(ValueRepresentation::SaxEvents, 0.8, 25));
    assert_eq!(result.load.errors, 0);
    assert_eq!(result.load.completed, 400);
    assert!(result.load.throughput_rps > 0.0);
}

//! Cross-crate equivalence: every cache-value representation, forced
//! through the full client middleware, yields the same application
//! objects as an uncached client — and the paper's applicability matrix
//! holds end-to-end.

use std::sync::Arc;
use std::time::Duration;
use wsrcache::cache::{
    CachePolicy, FixedSelector, OperationPolicy, ResponseCache, ValueRepresentation,
};
use wsrcache::client::{Disposition, ServiceClient};
use wsrcache::http::{InProcTransport, Url};
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

fn client_with_repr(repr: Option<ValueRepresentation>) -> (ServiceClient, Arc<InProcTransport>) {
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let transport = Arc::new(InProcTransport::new(Arc::new(dispatcher)));
    let mut builder = ServiceClient::builder(
        Url::new("backend.test", 80, google::PATH),
        transport.clone(),
    )
    .registry(google::registry())
    .operations(google::operations());
    if let Some(repr) = repr {
        let cache = Arc::new(
            ResponseCache::builder(google::registry())
                .policy(google::default_policy())
                .selector(FixedSelector(repr))
                .build(),
        );
        builder = builder.cache(cache);
    }
    (builder.build(), transport)
}

fn requests() -> Vec<RpcRequest> {
    vec![
        RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
            .with_param("key", "k")
            .with_param("phrase", "equivalnce"),
        RpcRequest::new(google::NAMESPACE, "doGetCachedPage")
            .with_param("key", "k")
            .with_param("url", "http://equiv.test/"),
        RpcRequest::new(google::NAMESPACE, "doGoogleSearch")
            .with_param("key", "k")
            .with_param("q", "equivalence")
            .with_param("start", 0)
            .with_param("maxResults", 10)
            .with_param("filter", true)
            .with_param("restrict", "")
            .with_param("safeSearch", false)
            .with_param("lr", "")
            .with_param("ie", "utf-8")
            .with_param("oe", "utf-8"),
    ]
}

#[test]
fn every_representation_is_equivalent_to_no_cache() {
    let (reference, _) = client_with_repr(None);
    let expected: Vec<_> = requests()
        .iter()
        .map(|r| reference.invoke_owned(r).expect("uncached call"))
        .collect();
    for repr in ValueRepresentation::ALL {
        let (client, _) = client_with_repr(Some(repr));
        for (request, want) in requests().iter().zip(&expected) {
            // Warm, then read from the cache.
            let miss = client.invoke_owned(request).expect("miss path");
            assert_eq!(&miss, want, "{repr}: miss path diverged");
            let hit = client.invoke_owned(request).expect("hit path");
            assert_eq!(&hit, want, "{repr}: hit path diverged");
        }
    }
}

#[test]
fn inapplicable_representations_fall_back_but_still_hit() {
    // Forcing clone copy on doSpellingSuggestion (a bare string) is n/a;
    // the middleware falls back to an always-applicable representation
    // and the second call is still a hit.
    let (client, transport) = client_with_repr(Some(ValueRepresentation::CloneCopy));
    let spelling = &requests()[0];
    let (_, d1) = client.invoke(spelling).expect("first");
    assert_eq!(d1, Disposition::CacheMiss);
    let (_, d2) = client.invoke(spelling).expect("second");
    assert_eq!(d2, Disposition::CacheHit);
    assert_eq!(transport.requests_served(), 1);
}

#[test]
fn pass_by_reference_shares_the_cached_object() {
    let (client, _) = client_with_repr(Some(ValueRepresentation::PassByReference));
    let search = &requests()[2];
    client.invoke(search).expect("warm");
    let (h1, _) = client.invoke(search).expect("hit 1");
    let (h2, _) = client.invoke(search).expect("hit 2");
    assert!(h1.is_shared() && h2.is_shared());
    // Copy representations hand out independent objects instead.
    let (client, _) = client_with_repr(Some(ValueRepresentation::ReflectionCopy));
    client.invoke(search).expect("warm");
    let (h1, _) = client.invoke(search).expect("hit 1");
    assert!(!h1.is_shared());
}

#[test]
fn mutating_a_retrieved_object_never_poisons_the_cache() {
    for repr in [
        ValueRepresentation::XmlMessage,
        ValueRepresentation::SaxEvents,
        ValueRepresentation::Serialization,
        ValueRepresentation::ReflectionCopy,
        ValueRepresentation::CloneCopy,
    ] {
        let (client, _) = client_with_repr(Some(repr));
        let search = &requests()[2];
        client.invoke(search).expect("warm");
        let mut owned = client.invoke_owned(search).expect("hit");
        // The application scribbles over its copy (§3.1's side-effect
        // hazard)…
        owned
            .as_struct_mut()
            .unwrap()
            .set("searchQuery", "VANDALIZED");
        // …and the next hit still sees pristine data.
        let fresh = client.invoke_owned(search).expect("hit again");
        assert_eq!(
            fresh
                .as_struct()
                .unwrap()
                .get("searchQuery")
                .and_then(wsrcache::model::Value::as_str),
            Some("equivalence"),
            "{repr}: cache was poisoned"
        );
    }
}

#[test]
fn read_only_policy_enables_sharing_for_mutable_types() {
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let transport = Arc::new(InProcTransport::new(Arc::new(dispatcher)));
    let policy = CachePolicy::new().with(
        "doGoogleSearch",
        OperationPolicy::cacheable(Duration::from_secs(60)).with_read_only(),
    );
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(policy)
            .build(),
    );
    let client = ServiceClient::builder(Url::new("b.test", 80, google::PATH), transport)
        .registry(google::registry())
        .operations(google::operations())
        .cache(cache)
        .build();
    let search = &requests()[2];
    client.invoke(search).expect("warm");
    let (hit, _) = client.invoke(search).expect("hit");
    assert!(
        hit.is_shared(),
        "read-only assertion should enable pass-by-reference"
    );
}

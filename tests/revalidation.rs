//! The §3.2 HTTP consistency handshake end-to-end: expired cache entries
//! are revalidated with `If-Modified-Since`; `304 Not Modified` renews
//! them without re-transferring or re-deserializing the response; data
//! changes invalidate them.

use std::sync::Arc;
use std::time::{Duration, SystemTime};
use wsrcache::cache::clock::ManualClock;
use wsrcache::cache::{CachePolicy, OperationPolicy, ResponseCache};
use wsrcache::client::{Disposition, ServiceClient};
use wsrcache::http::{Server, TcpTransport, Url};
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::SoapDispatcher;
use wsrcache::soap::RpcRequest;

const TTL: Duration = Duration::from_secs(60);

struct Stack {
    dispatcher: Arc<SoapDispatcher>,
    server: Server,
    client: ServiceClient,
    clock: ManualClock,
    epoch: SystemTime,
}

fn stack() -> Stack {
    let epoch = SystemTime::UNIX_EPOCH + Duration::from_secs(1_700_000_000);
    let dispatcher = Arc::new(
        SoapDispatcher::new()
            .mount(google::PATH, Arc::new(GoogleService::new()))
            .with_validation(epoch, TTL),
    );
    let server = Server::bind("127.0.0.1:0", dispatcher.clone()).expect("bind");
    let clock = ManualClock::new();
    let policy = CachePolicy::new().with_default(OperationPolicy::cacheable(TTL));
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(policy)
            .clock(clock.handle())
            .build(),
    );
    let client = ServiceClient::builder(
        Url::new("127.0.0.1", server.port(), google::PATH),
        Arc::new(TcpTransport::new()),
    )
    .registry(google::registry())
    .operations(google::operations())
    .cache(cache)
    .build();
    Stack {
        dispatcher,
        server,
        client,
        clock,
        epoch,
    }
}

fn spelling(phrase: &str) -> RpcRequest {
    RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
        .with_param("key", "k")
        .with_param("phrase", phrase)
}

#[test]
fn expired_entry_is_revalidated_with_304() {
    let s = stack();
    let (v1, d1) = s.client.invoke(&spelling("reval")).expect("miss");
    assert_eq!(d1, Disposition::CacheMiss);
    assert_eq!(s.server.requests_served(), 1);

    // Within TTL: plain hit, no traffic.
    let (_, d) = s.client.invoke(&spelling("reval")).expect("hit");
    assert_eq!(d, Disposition::CacheHit);
    assert_eq!(s.server.requests_served(), 1);

    // Past TTL: the entry is stale; a conditional request goes out and
    // the unchanged backend answers 304.
    s.clock.advance_millis(TTL.as_millis() as u64 + 1);
    let (v2, d2) = s.client.invoke(&spelling("reval")).expect("revalidate");
    assert_eq!(d2, Disposition::Revalidated);
    assert_eq!(v1.as_value(), v2.as_value());
    // The conditional exchange did hit the server (one more request)…
    assert_eq!(s.server.requests_served(), 2);

    // …and renewed the entry: the next lookup is a plain hit again.
    let (_, d3) = s
        .client
        .invoke(&spelling("reval"))
        .expect("hit after refresh");
    assert_eq!(d3, Disposition::CacheHit);
    assert_eq!(s.server.requests_served(), 2);
    let stats = s.client.cache().unwrap().stats();
    assert_eq!(stats.revalidated, 1);
}

#[test]
fn modified_backend_data_defeats_revalidation() {
    let s = stack();
    s.client.invoke(&spelling("change-me")).expect("miss");
    s.clock.advance_millis(TTL.as_millis() as u64 + 1);
    // The backend's data changes after the entry went stale.
    s.dispatcher.touch(s.epoch + Duration::from_secs(120));
    let (_, d) = s
        .client
        .invoke(&spelling("change-me"))
        .expect("full refetch");
    assert_eq!(
        d,
        Disposition::CacheMiss,
        "changed data must be re-fetched in full"
    );
    assert_eq!(s.server.requests_served(), 2);
    // The replacement entry is fresh again.
    let (_, d) = s.client.invoke(&spelling("change-me")).expect("hit");
    assert_eq!(d, Disposition::CacheHit);
}

#[test]
fn revalidation_works_repeatedly() {
    let s = stack();
    s.client.invoke(&spelling("loop")).expect("miss");
    for round in 1..=3 {
        s.clock.advance_millis(TTL.as_millis() as u64 + 1);
        let (_, d) = s.client.invoke(&spelling("loop")).expect("revalidate");
        assert_eq!(d, Disposition::Revalidated, "round {round}");
    }
    assert_eq!(s.client.cache().unwrap().stats().revalidated, 3);
    // 1 miss + 3 conditional requests.
    assert_eq!(s.server.requests_served(), 4);
}

#[test]
fn backends_without_validators_expire_normally() {
    // A dispatcher *without* validation: expiry falls back to plain
    // re-fetch, as before the extension.
    let dispatcher =
        Arc::new(SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new())));
    let server = Server::bind("127.0.0.1:0", dispatcher).expect("bind");
    let clock = ManualClock::new();
    let cache = Arc::new(
        ResponseCache::builder(google::registry())
            .policy(CachePolicy::new().with_default(OperationPolicy::cacheable(TTL)))
            .clock(clock.handle())
            .build(),
    );
    let client = ServiceClient::builder(
        Url::new("127.0.0.1", server.port(), google::PATH),
        Arc::new(TcpTransport::new()),
    )
    .registry(google::registry())
    .operations(google::operations())
    .cache(cache)
    .build();
    client.invoke(&spelling("plain")).expect("miss");
    clock.advance_millis(TTL.as_millis() as u64 + 1);
    let (_, d) = client.invoke(&spelling("plain")).expect("refetch");
    assert_eq!(d, Disposition::CacheMiss);
    assert_eq!(server.requests_served(), 2);
}

//! Wire-format pinning: the exact envelope bytes for a reference request
//! and response, so accidental format changes surface as test failures
//! (cache keys generated from XML messages depend on byte stability).

use wsrcache::model::Value;
use wsrcache::services::google;
use wsrcache::soap::deserializer::read_response_xml;
use wsrcache::soap::rpc::RpcOutcome;
use wsrcache::soap::serializer::{serialize_request, serialize_response};
use wsrcache::soap::RpcRequest;

#[test]
fn spelling_request_envelope_is_byte_stable() {
    let req = RpcRequest::new(google::NAMESPACE, "doSpellingSuggestion")
        .with_param("key", "demo-key")
        .with_param("phrase", "hella warld");
    let xml = serialize_request(&req, &google::registry()).unwrap();
    let expected = concat!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>",
        "<soapenv:Envelope",
        " xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\"",
        " xmlns:soapenc=\"http://schemas.xmlsoap.org/soap/encoding/\"",
        " xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\"",
        " xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\">",
        "<soapenv:Body>",
        "<ns1:doSpellingSuggestion",
        " soapenv:encodingStyle=\"http://schemas.xmlsoap.org/soap/encoding/\"",
        " xmlns:ns1=\"urn:GoogleSearch\">",
        "<key xsi:type=\"xsd:string\">demo-key</key>",
        "<phrase xsi:type=\"xsd:string\">hella warld</phrase>",
        "</ns1:doSpellingSuggestion>",
        "</soapenv:Body>",
        "</soapenv:Envelope>",
    );
    assert_eq!(xml, expected);
}

#[test]
fn string_response_envelope_is_byte_stable() {
    let xml = serialize_response(
        google::NAMESPACE,
        "doSpellingSuggestion",
        "return",
        &Value::string("hello world"),
        &google::registry(),
    )
    .unwrap();
    let expected = concat!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>",
        "<soapenv:Envelope",
        " xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\"",
        " xmlns:soapenc=\"http://schemas.xmlsoap.org/soap/encoding/\"",
        " xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\"",
        " xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\">",
        "<soapenv:Body>",
        "<ns1:doSpellingSuggestionResponse",
        " soapenv:encodingStyle=\"http://schemas.xmlsoap.org/soap/encoding/\"",
        " xmlns:ns1=\"urn:GoogleSearch\">",
        "<return xsi:type=\"xsd:string\">hello world</return>",
        "</ns1:doSpellingSuggestionResponse>",
        "</soapenv:Body>",
        "</soapenv:Envelope>",
    );
    assert_eq!(xml, expected);
}

#[test]
fn axis_style_envelopes_from_other_stacks_parse() {
    // A response as a 2004-era Axis server would have written it:
    // different prefixes, SOAP-ENV casing, xsi:type everywhere, an
    // unreferenced Header, multiref-free rpc/encoded body.
    let foreign = concat!(
        "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n",
        "<SOAP-ENV:Envelope ",
        "xmlns:SOAP-ENV=\"http://schemas.xmlsoap.org/soap/envelope/\" ",
        "xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\" ",
        "xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">\n",
        " <SOAP-ENV:Header><trace id=\"42\"/></SOAP-ENV:Header>\n",
        " <SOAP-ENV:Body>\n",
        "  <ns1:doSpellingSuggestionResponse xmlns:ns1=\"urn:GoogleSearch\">\n",
        "   <return xsi:type=\"xsd:string\">interop suggestion</return>\n",
        "  </ns1:doSpellingSuggestionResponse>\n",
        " </SOAP-ENV:Body>\n",
        "</SOAP-ENV:Envelope>",
    );
    let outcome = read_response_xml(
        foreign,
        &wsrcache::model::typeinfo::FieldType::String,
        &google::registry(),
    )
    .expect("foreign envelope parses");
    match outcome {
        RpcOutcome::Return(v) => assert_eq!(v, Value::string("interop suggestion")),
        RpcOutcome::Fault(f) => panic!("unexpected fault {f}"),
    }
}

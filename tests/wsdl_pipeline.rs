//! WSDL pipeline integration: author → emit → parse → compile → call a
//! live service with the compiled artifacts, for both the Google WSDL and
//! a service defined only through WSDL.

use std::sync::Arc;
use wsrcache::client::ServiceClient;
use wsrcache::http::{InProcTransport, Url};
use wsrcache::model::typeinfo::TypeRegistry;
use wsrcache::model::Value;
use wsrcache::services::google::{self, GoogleService};
use wsrcache::services::{SoapDispatcher, SoapService};
use wsrcache::soap::rpc::{OperationDescriptor, RpcRequest};
use wsrcache::soap::SoapFault;
use wsrcache::wsdl::{codegen, compile, parser, writer, CompileOptions};

#[test]
fn google_wsdl_roundtrip_compile_and_call() {
    let defs = google::wsdl("http://google.test/soap/google");
    let xml = writer::write_wsdl(&defs).expect("emit");
    let parsed = parser::parse_wsdl(&xml).expect("parse");
    assert_eq!(parsed, defs);
    let compiled = compile(&parsed, CompileOptions::default()).expect("compile");

    // Call the dummy service using only compiled artifacts.
    let dispatcher = SoapDispatcher::new().mount(google::PATH, Arc::new(GoogleService::new()));
    let client = ServiceClient::builder(
        Url::new("google.test", 80, google::PATH),
        Arc::new(InProcTransport::new(Arc::new(dispatcher))),
    )
    .registry(compiled.registry.clone())
    .operations(compiled.operations.clone())
    .build();

    let search = RpcRequest::new(&compiled.namespace, "doGoogleSearch")
        .with_param("key", "k")
        .with_param("q", "wsdl pipeline")
        .with_param("start", 0)
        .with_param("maxResults", 5)
        .with_param("filter", false)
        .with_param("restrict", "")
        .with_param("safeSearch", false)
        .with_param("lr", "")
        .with_param("ie", "utf-8")
        .with_param("oe", "utf-8");
    let result = client.invoke_owned(&search).expect("typed call");
    let s = result.as_struct().expect("GoogleSearchResult");
    assert_eq!(
        s.get("resultElements")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(5)
    );
}

#[test]
fn generated_stub_source_mentions_every_operation() {
    let defs = google::wsdl("http://google.test/soap/google");
    let src = codegen::generate_rust_stub(&defs);
    for op in [
        "do_spelling_suggestion",
        "do_get_cached_page",
        "do_google_search",
    ] {
        assert!(src.contains(op), "stub lacks {op}");
    }
    for ty in ["GoogleSearchResult", "ResultElement", "DirectoryCategory"] {
        assert!(src.contains(&format!("pub struct {ty}")), "stub lacks {ty}");
    }
}

/// A service implemented directly against compiled WSDL artifacts — no
/// hand-written descriptors anywhere.
struct WsdlOnlyService {
    namespace: String,
    operations: Vec<OperationDescriptor>,
    registry: TypeRegistry,
}

impl SoapService for WsdlOnlyService {
    fn namespace(&self) -> &str {
        &self.namespace
    }
    fn operations(&self) -> Vec<OperationDescriptor> {
        self.operations.clone()
    }
    fn registry(&self) -> TypeRegistry {
        self.registry.clone()
    }
    fn call(&self, request: &RpcRequest) -> Result<Value, SoapFault> {
        match request.operation.as_str() {
            "doSearch" => {
                let q = request.param("q").and_then(Value::as_str).unwrap_or("");
                let max = request.param("max").and_then(Value::as_int).unwrap_or(0);
                let hits: Vec<Value> = (0..max)
                    .map(|i| {
                        Value::Struct(
                            wsrcache::model::StructValue::new("Hit")
                                .with("title", format!("{q} #{i}"))
                                .with("score", 1.0 / (i + 1) as f64),
                        )
                    })
                    .collect();
                Ok(Value::Struct(
                    wsrcache::model::StructValue::new("SearchResult")
                        .with("count", max)
                        .with("hits", hits),
                ))
            }
            other => Err(SoapFault::client(format!("unknown operation '{other}'"))),
        }
    }
}

#[test]
fn a_service_defined_only_by_wsdl_works_end_to_end() {
    use wsrcache::wsdl::{
        ComplexType, Definitions, Message, Part, PortType, Schema, SchemaField, Service, TypeRef,
        WsdlOperation, XsdType,
    };
    let defs = Definitions {
        name: "MiniSearch".into(),
        target_namespace: "urn:MiniSearch".into(),
        schema: Schema {
            target_namespace: "urn:MiniSearch".into(),
            types: vec![
                ComplexType::new(
                    "Hit",
                    vec![
                        SchemaField::new("title", TypeRef::Xsd(XsdType::String)),
                        SchemaField::new("score", TypeRef::Xsd(XsdType::Double)),
                    ],
                ),
                ComplexType::new(
                    "SearchResult",
                    vec![
                        SchemaField::new("count", TypeRef::Xsd(XsdType::Int)),
                        SchemaField::new("hits", TypeRef::Complex("Hit".into()).array()),
                    ],
                ),
            ],
        },
        messages: vec![
            Message {
                name: "doSearchIn".into(),
                parts: vec![
                    Part::new("q", TypeRef::Xsd(XsdType::String)),
                    Part::new("max", TypeRef::Xsd(XsdType::Int)),
                ],
            },
            Message {
                name: "doSearchOut".into(),
                parts: vec![Part::new("return", TypeRef::Complex("SearchResult".into()))],
            },
        ],
        port_type: PortType {
            name: "MiniSearchPort".into(),
            operations: vec![WsdlOperation {
                name: "doSearch".into(),
                input_message: "doSearchIn".into(),
                output_message: "doSearchOut".into(),
            }],
        },
        service: Service {
            name: "MiniSearchService".into(),
            port_name: "MiniSearchPort".into(),
            endpoint_url: "http://mini.test/soap".into(),
        },
    };
    // Emit → parse → compile, then build BOTH sides from the compilation.
    let compiled = compile(
        &parser::parse_wsdl(&writer::write_wsdl(&defs).unwrap()).unwrap(),
        CompileOptions::default(),
    )
    .unwrap();
    let service = WsdlOnlyService {
        namespace: compiled.namespace.clone(),
        operations: compiled.operations.clone(),
        registry: compiled.registry.clone(),
    };
    let dispatcher = SoapDispatcher::new().mount("/soap/mini", Arc::new(service));
    let client = ServiceClient::builder(
        Url::new("mini.test", 80, "/soap/mini"),
        Arc::new(InProcTransport::new(Arc::new(dispatcher))),
    )
    .registry(compiled.registry.clone())
    .operations(compiled.operations.clone())
    .build();

    let result = client
        .invoke_owned(
            &RpcRequest::new(&compiled.namespace, "doSearch")
                .with_param("q", "rust")
                .with_param("max", 3),
        )
        .expect("call through compiled artifacts");
    let s = result.as_struct().expect("SearchResult");
    assert_eq!(s.get("count"), Some(&Value::Int(3)));
    let hits = s.get("hits").and_then(Value::as_array).expect("hits array");
    assert_eq!(hits.len(), 3);
    assert_eq!(
        hits[0]
            .as_struct()
            .unwrap()
            .get("title")
            .and_then(Value::as_str),
        Some("rust #0")
    );
}
